"""Legacy setup shim so ``pip install -e .`` works offline (the build
environment has setuptools but no ``wheel`` package, which the PEP 517
editable path would require)."""

from setuptools import setup

setup()
