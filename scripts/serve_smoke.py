#!/usr/bin/env python
"""End-to-end smoke test of the ``repro serve`` daemon as a real OS
process — what the CI ``serve-smoke`` job runs.

Boots the daemon as a subprocess and walks the service contract:

1. readiness flips once the daemon is up (and back off when draining);
2. a cold submission computes, a warm resubmission is a cache hit,
   and both bodies are byte-identical;
3. a full admission queue yields 429 with both ``Retry-After``
   headers;
4. a SIGKILLed worker is a structured 500 on that request only —
   the daemon keeps serving — and the flight recorder dumps a ring
   file naming the crashing request ID;
5. ``GET /metrics`` under the load above passes the in-repo
   exposition validator with non-zero latency-histogram counts;
6. SIGTERM drains gracefully: in-flight work finishes, exit code 0 —
   and the ``--journal`` file validates, carrying the crash request's
   lifecycle.

Run from the repo root::

    PYTHONPATH=src python scripts/serve_smoke.py

Exits non-zero on the first violated expectation.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.events import read_journal, validate_journal  # noqa: E402
from repro.obs.metrics import parse_exposition, validate_exposition  # noqa: E402
from repro.serve import ReproClient  # noqa: E402


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        raise SystemExit(1)
    print(f"  ok: {message}")


def main() -> int:
    print("booting repro serve (ephemeral port, 1 worker, queue limit 1)")
    cache_dir = tempfile.mkdtemp(prefix="serve_smoke_cache_")
    telemetry_dir = tempfile.mkdtemp(prefix="serve_smoke_obs_")
    journal_path = os.path.join(telemetry_dir, "serve.jsonl")
    flight_dir = os.path.join(telemetry_dir, "flight")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--workers", "1", "--queue-limit", "1",
            "--cache", cache_dir, "--chaos",
            "--journal", journal_path, "--flight-dir", flight_dir,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=REPO_ROOT,
        env={**os.environ,
             "PYTHONPATH": os.pathsep.join(
                 p for p in (str(REPO_ROOT / "src"),
                             os.environ.get("PYTHONPATH")) if p)},
    )
    try:
        banner = proc.stdout.readline().strip()
        match = re.search(r"http://[\d.]+:(\d+)$", banner)
        check(match is not None, f"daemon announced itself: {banner!r}")
        port = int(match.group(1))
        client = ReproClient(port=port, retries=0)

        # 1. readiness flips on
        check(client.wait_ready(10.0), "readiness flipped to 200 after boot")

        # 2. cold compute, warm cache hit, byte-identical bodies
        params = {"seconds": 0.0, "nonce": "smoke"}
        cold = client.submit("chaos-sleep", params, deadline=10)
        check(cold.ok and not cold.cached, "cold submission computed (200, uncached)")
        warm = client.submit("chaos-sleep", params, deadline=10)
        check(warm.ok and warm.cached, "warm resubmission was a cache hit")
        check(
            json.dumps(cold.body, sort_keys=True)
            == json.dumps(warm.body, sort_keys=True),
            "cold and warm bodies are byte-identical",
        )

        # 3. fill the worker, then the queue, then expect 429
        def occupy(nonce: int, seconds: float) -> None:
            ReproClient(port=port, retries=0).submit(
                "chaos-sleep", {"seconds": seconds, "nonce": nonce}, deadline=30
            )

        def poll_until(probe, message: str, timeout: float = 10.0) -> None:
            ends = time.monotonic() + timeout
            while not probe():
                if time.monotonic() >= ends:
                    check(False, message)
                time.sleep(0.02)
            check(True, message)

        first = threading.Thread(target=occupy, args=(1, 2.0))
        first.start()
        poll_until(lambda: client.stats()["server"]["in_flight"] >= 1,
                   "worker became busy")
        second = threading.Thread(target=occupy, args=(2, 0.0))
        second.start()
        poll_until(lambda: client.stats()["server"]["queue_depth"] >= 1,
                   "queue slot filled")
        rejected = client.submit("chaos-sleep", {"seconds": 0.0, "nonce": 3},
                                 deadline=10)
        check(rejected.status == 429, "overflow submission got 429")
        check(rejected.error_kind() == "queue-full",
              "429 carries the queue-full taxonomy")
        check(int(rejected.headers.get("retry-after", 0)) >= 1,
              "429 carries Retry-After")
        check(float(rejected.headers.get("x-repro-retry-after", 0)) > 0,
              "429 carries the fractional X-Repro-Retry-After")
        first.join()
        second.join()

        # 4. a crashed worker is one structured 500, not a dead server,
        #    and the flight recorder names the crashing request
        crashed = client.submit("chaos-crash", {"nonce": 4}, deadline=10,
                                request_id="smoke-crash-1")
        check(crashed.status == 500 and crashed.error_kind() == "crash",
              "SIGKILLed worker surfaced as a structured 500 crash")
        check(crashed.request_id == "smoke-crash-1",
              "crash response echoed the request ID")
        alive = client.submit("chaos-sleep", {"seconds": 0.0, "nonce": 5},
                              deadline=10)
        check(alive.ok, "daemon kept serving after the worker crash")
        dumps = [name for name in os.listdir(flight_dir)
                 if "smoke-crash-1" in name]
        check(bool(dumps),
              "flight dump names the crashing request ID")
        dump = json.load(open(os.path.join(flight_dir, dumps[0])))
        check(dump["reason"] == "crash"
              and dump["request_id"] == "smoke-crash-1"
              and any(e["request_id"] == "smoke-crash-1"
                      for e in dump["events"]),
              "flight dump carries the crash request's journal ring")

        # 5. /metrics under load validates with non-zero histogram counts
        text = client.metrics_text()
        samples = validate_exposition(text)
        check(samples > 0, f"/metrics passed the validator ({samples} samples)")
        parsed = parse_exposition(text)

        def histogram_count(family: str) -> float:
            return [value for name, _, value in parsed[family]["samples"]
                    if name == f"{family}_count"][0]

        check(histogram_count("repro_serve_request_seconds") > 0,
              "request latency histogram has observations")
        check(histogram_count("repro_exec_job_seconds") > 0,
              "engine job latency histogram has observations")
        check(any(
            value >= 1
            for _, labels, value in
            parsed["repro_serve_flight_dumps_total"]["samples"]
            if labels.get("reason") == "crash"),
            "flight-dump counter counted the crash dump")

        # 6. SIGTERM drains: readiness off, in-flight completes, exit 0
        in_flight: dict = {}

        def slow() -> None:
            in_flight["response"] = ReproClient(port=port, retries=0).submit(
                "chaos-sleep", {"seconds": 1.0, "nonce": 6}, deadline=30
            )

        drainee = threading.Thread(target=slow)
        drainee.start()
        poll_until(lambda: client.stats()["server"]["in_flight"] >= 1,
                   "drainee request went in flight")
        proc.send_signal(signal.SIGTERM)
        poll_until(lambda: not client.ready(),
                   "readiness flipped off on SIGTERM")
        drainee.join()
        check(in_flight["response"].ok,
              "in-flight request completed during the drain")
        proc.wait(timeout=30)
        check(proc.returncode == 0, "daemon exited 0 after the drain")

        # the journal file validates and carries the crash lifecycle
        records = read_journal(journal_path)
        check(validate_journal(records) == len(records) and records,
              f"journal validates ({len(records)} records)")
        crash_kinds = {r["kind"] for r in records
                       if r["request_id"] == "smoke-crash-1"}
        check({"request-received", "request-failed"} <= crash_kinds,
              "journal carries the crash request's lifecycle by ID")
        print("serve smoke OK")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        shutil.rmtree(cache_dir, ignore_errors=True)
        shutil.rmtree(telemetry_dir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
