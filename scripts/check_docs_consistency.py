#!/usr/bin/env python
"""Fail if the public API has drifted from the docs.

Two checks:

* every name exported by a ``repro`` package ``__all__`` must be
  mentioned in ``docs/API.md``.  The check is textual on purpose: the
  reference is a curated prose document, not generated stubs, so
  "mentioned anywhere in the file" is the contract — a name can be
  documented in a table row, a sentence, or a grouped entry like
  ``MODEL1..MODEL4``;
* every file under ``docs/`` must be linked (as ``docs/<name>.md``)
  from the README's documentation index, so no guide can silently
  drop out of the front door.

Run from the repo root (CI does)::

    PYTHONPATH=src python scripts/check_docs_consistency.py

Exits non-zero listing the undocumented names / unlinked files, if
any.  Names can be grouped with ``..`` ranges only if every member is
spelled out somewhere; add the literal name to the doc instead of
widening this check.
"""

from __future__ import annotations

import importlib
import pkgutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
API_DOC = REPO_ROOT / "docs" / "API.md"
DOCS_DIR = REPO_ROOT / "docs"
README = REPO_ROOT / "README.md"

#: Exported names that are intentionally undocumented.
ALLOWED_UNDOCUMENTED = {
    "repro": {"__version__"},
}


def public_packages():
    """Yield ``repro`` and each of its immediate subpackages."""
    import repro

    yield "repro", repro
    for info in pkgutil.iter_modules(repro.__path__, prefix="repro."):
        if info.ispkg:
            yield info.name, importlib.import_module(info.name)


def undocumented_names(doc_text: str):
    """Return ``[(package, name), ...]`` for exports missing from the doc."""
    missing = []
    for pkg_name, module in public_packages():
        exported = getattr(module, "__all__", None)
        if exported is None:
            missing.append((pkg_name, "<no __all__ defined>"))
            continue
        allowed = ALLOWED_UNDOCUMENTED.get(pkg_name, set())
        for name in exported:
            if name in allowed:
                continue
            if name not in doc_text:
                missing.append((pkg_name, name))
    return missing


def unlinked_docs(readme_text: str):
    """Return the ``docs/*.md`` files the README never links to."""
    return sorted(
        f"docs/{path.name}"
        for path in DOCS_DIR.glob("*.md")
        if f"docs/{path.name}" not in readme_text
    )


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    doc_text = API_DOC.read_text(encoding="utf-8")
    missing = undocumented_names(doc_text)
    if missing:
        print(f"{API_DOC.relative_to(REPO_ROOT)} is missing {len(missing)} public name(s):")
        for pkg_name, name in missing:
            print(f"  {pkg_name}: {name}")
        print("\nDocument them in docs/API.md (or add to ALLOWED_UNDOCUMENTED")
        print("in scripts/check_docs_consistency.py with a justification).")
        return 1
    orphans = unlinked_docs(README.read_text(encoding="utf-8"))
    if orphans:
        print(f"README.md's documentation index is missing {len(orphans)} file(s):")
        for name in orphans:
            print(f"  {name}")
        print("\nLink them from the README so every guide stays reachable.")
        return 1
    total = sum(len(getattr(m, "__all__", ())) for _, m in public_packages())
    docs = len(list(DOCS_DIR.glob("*.md")))
    print(
        f"docs/API.md covers all {total} exported names; README links "
        f"all {docs} docs/ files. OK"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
