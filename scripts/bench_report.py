#!/usr/bin/env python
"""Machine-readable pipeline benchmark: ``benchmarks/output/BENCH_pipeline.json``.

Runs the three benchmarks future PRs diff against — the Figure 9 sweep,
the Figure 10 sweep (with its per-procedure refinement breakdown from
:attr:`RefinedDesign.procedure_seconds`), and the kernel hot-path
benchmark — plus one fully traced parse → refine → simulate pipeline,
and writes every wall time and span breakdown as one JSON document.

Usage::

    PYTHONPATH=src python scripts/bench_report.py [-o OUT.json] [--reps N]

The JSON layout (``schema`` pins it) is append-only: later PRs may add
keys but must not rename existing ones, so ``diff`` and dashboards stay
meaningful across the perf trajectory.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

DEFAULT_OUTPUT = REPO_ROOT / "benchmarks" / "output" / "BENCH_pipeline.json"

SCHEMA = "repro-bench-pipeline/1"


def bench_figure9() -> dict:
    from repro.experiments import run_figure9

    started = time.perf_counter()
    result = run_figure9()
    wall = time.perf_counter() - started
    return {
        "wall_seconds": wall,
        "designs": sorted(result.cells),
    }


def bench_figure10() -> dict:
    from repro.experiments import run_figure10

    started = time.perf_counter()
    result = run_figure10()
    wall = time.perf_counter() - started
    cells = {}
    for design, row in result.cells.items():
        for model, cell in row.items():
            cells[f"{design}/{model}"] = {
                "refined_lines": cell.refined_lines,
                "refinement_seconds": cell.refinement_seconds,
                "ratio": cell.ratio,
                "procedure_seconds": dict(cell.procedure_seconds),
            }
    return {
        "wall_seconds": wall,
        "original_lines": result.original_lines,
        "cells": cells,
    }


def bench_hotpath(reps: int) -> dict:
    from bench_kernel_hotpath import run_hotpath_benchmark

    started = time.perf_counter()
    report = run_hotpath_benchmark(reps=reps)
    report["wall_seconds"] = time.perf_counter() - started
    return report


def bench_traced_pipeline(design: str = "Design1", model: str = "Model2") -> dict:
    """One parse → refine → simulate run under the span tracer."""
    from repro.apps.medical import MEDICAL_INPUTS, all_designs, medical_specification
    from repro.models import resolve_model
    from repro.obs.trace import SpanTracer, validate_chrome_trace
    from repro.refine import Refiner
    from repro.sim import Simulator

    tracer = SpanTracer()
    with tracer.span("pipeline", design=design, model=model):
        with tracer.span("parse"):
            spec = medical_specification()
        with tracer.span("validate"):
            spec.validate()
        with tracer.span("partition"):
            partition = all_designs(spec)[design]
        with tracer.span("refine"):
            refined = Refiner(
                spec, partition, resolve_model(model), tracer=tracer
            ).run()
        with tracer.span("simulate-refined") as span:
            run = Simulator(refined.spec).run(inputs=dict(MEDICAL_INPUTS))
            span.set("steps", run.steps)
    chrome = json.loads(tracer.to_chrome_json())
    return {
        "design": design,
        "model": model,
        "span_seconds": tracer.aggregate(),
        "refine_procedure_seconds": dict(refined.procedure_seconds),
        "chrome_events": validate_chrome_trace(chrome),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default=str(DEFAULT_OUTPUT))
    parser.add_argument("--reps", type=int, default=3,
                        help="hot-path benchmark repetitions (default 3; "
                             "the bench's own default is 8)")
    args = parser.parse_args(argv)

    report = {"schema": SCHEMA}
    started = time.perf_counter()
    print("running figure9 sweep ...", flush=True)
    report["figure9"] = bench_figure9()
    print("running figure10 sweep ...", flush=True)
    report["figure10"] = bench_figure10()
    print(f"running kernel hot-path ({args.reps} reps) ...", flush=True)
    report["hotpath"] = bench_hotpath(args.reps)
    print("running traced pipeline ...", flush=True)
    report["trace"] = bench_traced_pipeline()
    report["total_wall_seconds"] = time.perf_counter() - started

    out = pathlib.Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    print(
        f"figure9 {report['figure9']['wall_seconds']:.2f}s  "
        f"figure10 {report['figure10']['wall_seconds']:.2f}s  "
        f"hotpath speedup {report['hotpath']['speedup']:.2f}x  "
        f"trace events {report['trace']['chrome_events']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
