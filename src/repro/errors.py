"""Exception hierarchy shared by every repro subsystem.

All library errors derive from :class:`ReproError` so callers can catch a
single type at an API boundary.  Subsystems raise the most specific type
below; nothing in the library raises a bare ``Exception``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SpecError(ReproError):
    """A specification is structurally or semantically malformed."""


class TypeMismatchError(SpecError):
    """An expression or assignment violates the IR type rules."""


class ScopeError(SpecError):
    """A name could not be resolved in the scope it is used from."""


class ParseError(ReproError):
    """The textual SpecCharts front end rejected its input.

    Carries the source position so tooling can point at the offending
    token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class GraphError(ReproError):
    """Access-graph construction or queries failed."""


class PartitionError(ReproError):
    """A partition is inconsistent with the specification or allocation."""


class AllocationError(ReproError):
    """An allocation (component set) is invalid or insufficient."""


class EstimationError(ReproError):
    """Quality-metric estimation could not be computed."""


class RefinementError(ReproError):
    """Model refinement could not transform the specification."""


class SimulationError(ReproError):
    """The discrete-event simulation failed or diverged."""


class SimulationLimitExceeded(SimulationError):
    """The simulation hit its step/time budget without completing.

    Usually indicates a livelock in a refined protocol (e.g. a master
    waiting for a slave that was never generated).
    """


class EquivalenceError(ReproError):
    """Original and refined specifications disagree on observed state."""
