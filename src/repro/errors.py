"""Exception hierarchy shared by every repro subsystem.

All library errors derive from :class:`ReproError` so callers can catch a
single type at an API boundary.  Subsystems raise the most specific type
below; nothing in the library raises a bare ``Exception``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SpecError(ReproError):
    """A specification is structurally or semantically malformed."""


class TypeMismatchError(SpecError):
    """An expression or assignment violates the IR type rules."""


class ScopeError(SpecError):
    """A name could not be resolved in the scope it is used from."""


class ParseError(ReproError):
    """The textual SpecCharts front end rejected its input.

    Carries the source position so tooling can point at the offending
    token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class GraphError(ReproError):
    """Access-graph construction or queries failed."""


class PartitionError(ReproError):
    """A partition is inconsistent with the specification or allocation.

    ``objects`` optionally carries the offending object names as
    structured data — the automatic partitioners set it when the move
    space is ambiguous (a variable shadowing a behavior name) so
    callers can report or repair the exact collisions instead of
    parsing the message.
    """

    def __init__(self, message: str, objects=()):
        self.objects = tuple(objects)
        super().__init__(message)


class AllocationError(ReproError):
    """An allocation (component set) is invalid or insufficient."""


class EstimationError(ReproError):
    """Quality-metric estimation could not be computed."""


class RefinementError(ReproError):
    """Model refinement could not transform the specification."""


class SimulationError(ReproError):
    """The discrete-event simulation failed or diverged."""


class SimulationLimitExceeded(SimulationError):
    """The simulation hit a kernel budget without completing.

    Usually indicates a livelock in a refined protocol (e.g. a master
    waiting for a slave that was never generated).  ``limit`` names the
    budget that tripped (``"max_steps"``, ``"max_delta"`` or
    ``"wall_clock"``) and ``trace`` carries the kernel's most recent
    scheduler events (see :meth:`repro.sim.kernel.Kernel.format_trace`).
    """

    def __init__(self, message: str, limit: str = "", trace=()):
        self.limit = limit
        self.trace = tuple(trace)
        super().__init__(message)


class BlockedProcessInfo:
    """Diagnostic snapshot of one process still suspended at deadlock.

    ``wait`` is the suspension kind (``"condition"``, ``"delay"``,
    ``"join"`` or ``"ready"``), ``sensitivity`` the signals whose change
    re-evaluates the wait, and ``detail`` a human-readable rendering of
    the wait condition (the source expression when the interpreter
    created it).
    """

    __slots__ = ("name", "wait", "sensitivity", "detail")

    def __init__(self, name: str, wait: str, sensitivity=(), detail: str = ""):
        self.name = name
        self.wait = wait
        self.sensitivity = tuple(sorted(sensitivity))
        self.detail = detail

    def __str__(self) -> str:
        text = f"{self.name}: {self.wait}"
        if self.detail:
            text += f" {self.detail}"
        if self.sensitivity:
            text += f" sensitivity={list(self.sensitivity)}"
        return text

    def __repr__(self) -> str:
        return f"<BlockedProcessInfo {self}>"


class DeadlockError(SimulationError):
    """The simulation went quiescent with required processes unfinished.

    A structured deadlock report: ``blocked`` is a tuple of
    :class:`BlockedProcessInfo` (every process still suspended),
    ``required`` the names of the required-but-unfinished processes,
    ``time`` the simulation time of quiescence, and ``trace`` the last
    scheduler events before the deadlock (most recent last).
    """

    def __init__(
        self,
        blocked=(),
        required=(),
        time: float = 0.0,
        trace=(),
    ):
        self.blocked = tuple(blocked)
        self.required = tuple(required)
        self.time = time
        self.trace = tuple(trace)
        lines = [
            f"deadlock at t={time}: required process(es) "
            f"{list(self.required)} never finished"
        ]
        if self.blocked:
            lines.append("blocked processes:")
            lines.extend(f"  {info}" for info in self.blocked)
        if self.trace:
            lines.append("last scheduler events (most recent last):")
            lines.extend(f"  {event}" for event in self.trace)
        super().__init__("\n".join(lines))


class FaultConfigError(SimulationError):
    """A fault-injection scenario is malformed."""


class EquivalenceError(ReproError):
    """Original and refined specifications disagree on observed state."""
