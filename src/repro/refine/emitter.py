"""Protocol-call emission and master bookkeeping.

Data-related refinement, the memory generators and the bus interfaces
all need to *call* protocol subroutines on specific buses; which exact
subprogram that is depends on information only known at the end of
refinement (does the bus need an arbiter?  is the access remote in
Model4?).  The :class:`ProtocolEmitter` hands out stable call names up
front, records who masters which bus, and materialises all subprogram
bodies in :meth:`finalize`:

* per used bus: the four core protocol subroutines
  (``MST_send_b2`` ... ``SLV_receive_b2``);
* per (bus, master leaf): a master wrapper
  (``MST_send_b2_B1``) that either forwards directly to the core
  routine (single master) or brackets it with the ``Req``/``Ack``
  arbitration handshake of Figure 7 (several masters);
* per leaf doing Model4 cross-partition accesses: a remote wrapper
  (``REMOTE_send_B1``) that first acquires the interchange arbiter
  (the system-wide remote-transaction lock that makes the two-hop
  message path deadlock-free) and then runs the arbitrated interface-
  bus transaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.arch.protocols import (
    Protocol,
    bus_error_name,
    master_receive_name,
    master_send_name,
)
from repro.errors import RefinementError
from repro.models.plan import BusPlan, BusRole, ModelPlan
from repro.obs.provenance import stamp
from repro.refine.naming import NamePool
from repro.spec.builder import assign, call, if_, sassign, wait_for, wait_until, while_
from repro.spec.expr import Expr, var
from repro.spec.specification import Specification
from repro.spec.stmt import CallStmt
from repro.spec.subprogram import Direction, Param, Subprogram
from repro.spec.types import BIT, bits, int_type
from repro.spec.variable import Variable, signal, variable

__all__ = ["ProtocolEmitter", "arbiter_signal_names"]


def arbiter_signal_names(
    bus: str, master: str, pool: NamePool = None
) -> Tuple[str, str]:
    """(req, ack) signal names of one master's arbitration lines.

    With a ``pool`` the conventional names are resolved through
    :meth:`NameAllocator.fixed`, so every refinement procedure deriving
    them agrees on the resolution even when a user name collides.
    """
    req, ack = f"{bus}_req_{master}", f"{bus}_ack_{master}"
    if pool is not None:
        return pool.fixed(req), pool.fixed(ack)
    return req, ack


@dataclass
class _MasterUse:
    """Directions a master leaf uses on one bus."""

    send: bool = False
    receive: bool = False


class ProtocolEmitter:
    """Allocates protocol call names; generates bodies at finalize."""

    def __init__(self, plan: ModelPlan, protocol: Protocol, pool: NamePool):
        self.plan = plan
        self.protocol = protocol
        self.pool = pool
        #: bus -> ordered master leaf names (arbitration priority order)
        self.masters: Dict[str, List[str]] = {}
        self._uses: Dict[Tuple[str, str], _MasterUse] = {}
        #: buses whose core subroutines are required
        self._core_used: Set[str] = set()
        #: leaves needing remote wrappers -> directions
        self._remote_uses: Dict[str, _MasterUse] = {}
        #: interchange lock clients in priority order
        self.lock_clients: List[str] = []
        #: components whose leaves actually issued remote accesses
        self.remote_sources: Set[str] = set()
        #: components whose resident variables are remotely accessed
        self.remote_targets: Set[str] = set()

    # -- name handout ------------------------------------------------------

    def _register_master(self, bus: str, leaf: str, send: bool) -> _MasterUse:
        order = self.masters.setdefault(bus, [])
        if leaf not in order:
            order.append(leaf)
        use = self._uses.setdefault((bus, leaf), _MasterUse())
        if send:
            use.send = True
        else:
            use.receive = True
        self._core_used.add(bus)
        return use

    def master_call(
        self,
        leaf: str,
        component: str,
        variable: str,
        addr_expr: Expr,
        payload: Expr,
        send: bool,
    ) -> CallStmt:
        """A protocol call moving one word for ``variable`` from leaf
        ``leaf`` on ``component``; ``payload`` is the value expression
        (send) or the destination lvalue (receive)."""
        route = self.plan.route(component, variable)
        first_bus = route[0]
        if len(route) == 1:
            self._register_master(first_bus, leaf, send)
            name = self._wrapper_name(first_bus, leaf, send)
        else:
            # Model4 cross access: lock + arbitrated iface transaction
            self._register_master(first_bus, leaf, send)
            self._register_remote(leaf, send)
            self.remote_sources.add(component)
            self.remote_targets.add(
                self.plan.classification.home[variable]
            )
            name = self._remote_name(leaf, send)
        return call(name, addr_expr, payload)

    def slave_call(self, bus: str, payload: Expr, send: bool) -> CallStmt:
        """A slave-side protocol call on ``bus`` (memory/interface
        servers)."""
        self._core_used.add(bus)
        from repro.arch.protocols import slave_receive_name, slave_send_name

        name = slave_send_name(bus) if send else slave_receive_name(bus)
        return call(self.pool.fixed(name), payload)

    def core_master_call(
        self, bus: str, addr_expr: Expr, payload: Expr, send: bool
    ) -> CallStmt:
        """An *unarbitrated* master transaction on ``bus`` — used by the
        outbound bus interface on the interchange, which runs under the
        originator's interchange lock."""
        self._core_used.add(bus)
        name = master_send_name(bus) if send else master_receive_name(bus)
        return call(self.pool.fixed(name), addr_expr, payload)

    def arbitrated_master_call(
        self, bus: str, leaf: str, addr_expr: Expr, payload: Expr, send: bool
    ) -> CallStmt:
        """An arbitrated master transaction for a refinement-inserted
        leaf (the inbound bus interface mastering its iface bus)."""
        self._register_master(bus, leaf, send)
        return call(self._wrapper_name(bus, leaf, send), addr_expr, payload)

    def register_lock_client(self, leaf: str) -> None:
        if leaf not in self.lock_clients:
            self.lock_clients.append(leaf)

    def _register_remote(self, leaf: str, send: bool) -> None:
        use = self._remote_uses.setdefault(leaf, _MasterUse())
        if send:
            use.send = True
        else:
            use.receive = True
        self.register_lock_client(leaf)
        interchange = self._interchange_bus()
        self._core_used.add(interchange.name)

    def _interchange_bus(self) -> BusPlan:
        buses = self.plan.buses_with_role(BusRole.INTERCHANGE)
        if not buses:
            raise RefinementError(
                f"{self.plan.model_name}: remote access without an interchange bus"
            )
        return buses[0]

    def _wrapper_name(self, bus: str, leaf: str, send: bool) -> str:
        op = "send" if send else "receive"
        return self.pool.fixed(f"MST_{op}_{bus}_{leaf}")

    def _remote_name(self, leaf: str, send: bool) -> str:
        op = "send" if send else "receive"
        return self.pool.fixed(f"REMOTE_{op}_{leaf}")

    # -- queries ------------------------------------------------------------------

    def arbitrated_buses(self) -> List[str]:
        """Buses that need an arbiter (>= 2 masters, Figure 7)."""
        return [bus for bus, masters in self.masters.items() if len(masters) > 1]

    def arbitration_signals(self) -> List[Variable]:
        """All Req/Ack signal declarations for the arbitrated buses and
        the interchange lock clients."""
        out: List[Variable] = []
        for bus in self.arbitrated_buses():
            for master in self.masters[bus]:
                req, ack = arbiter_signal_names(bus, master, self.pool)
                out.append(signal(req, BIT, init=0, doc=f"{master} requests {bus}"))
                out.append(signal(ack, BIT, init=0, doc=f"{bus} granted to {master}"))
        if self.lock_clients:
            interchange = self._interchange_bus().name
            for client in self.lock_clients:
                req, ack = arbiter_signal_names(interchange, client, self.pool)
                out.append(
                    signal(req, BIT, init=0, doc=f"{client} requests remote lock")
                )
                out.append(
                    signal(ack, BIT, init=0, doc=f"remote lock granted to {client}")
                )
        for decl in out:
            stamp(decl, "emitter", "arbitration-signal")
        return out

    # -- finalisation ---------------------------------------------------------------

    def finalize(self, refined: Specification) -> None:
        """Materialise every required subprogram into ``refined``."""
        from repro.arch.components import BusNet

        for bus_name in sorted(self._core_used, key=_bus_sort_key):
            bus_plan = self.plan.buses[bus_name]
            net = BusNet(
                bus_name,
                data_width=bus_plan.data_width,
                addr_width=bus_plan.addr_width,
                protocol=self.protocol.name,
            )
            for sub in self.protocol.subprograms(net):
                sub.name = self.pool.fixed(sub.name)
                stamp(
                    sub,
                    "emitter",
                    "core-protocol",
                    source=bus_name,
                    detail=f"{self.protocol.name} core routine on {bus_name}",
                )
                refined.ensure_subprogram(sub)

        arbitrated = set(self.arbitrated_buses())
        for (bus, leaf), use in sorted(self._uses.items()):
            for send in (True, False):
                if (use.send if send else use.receive):
                    refined.ensure_subprogram(
                        self._make_wrapper(bus, leaf, send, bus in arbitrated)
                    )
        for leaf, use in sorted(self._remote_uses.items()):
            for send in (True, False):
                if (use.send if send else use.receive):
                    refined.ensure_subprogram(self._make_remote(leaf, send))

    def _params(self, bus: str, send: bool) -> List[Param]:
        bus_plan = self.plan.buses[bus]
        direction = Direction.IN if send else Direction.OUT
        return [
            Param("addr", bits(max(1, bus_plan.addr_width)), Direction.IN),
            Param("data", int_type(max(2, bus_plan.data_width)), direction),
        ]

    def _acquire_release(self, bus: str, req: str, ack: str, inner: CallStmt):
        """The Req/Ack bracket around ``inner``.

        Without a recovery policy this is the unbounded Figure 7
        handshake.  With one (timeout-capable protocols), the grant
        wait is bounded: the master polls ``ack`` for
        ``grant_timeout_ticks``, re-requests up to ``max_retries``
        times, and finally raises the bus error line and skips the
        transaction (graceful degradation).  Returns (stmts, decls).
        """
        policy = getattr(self.protocol, "recovery", None)
        if policy is None:
            return (
                [
                    sassign(req, 1),
                    wait_until(var(ack).eq(1)),
                    inner,
                    sassign(req, 0),
                    wait_until(var(ack).eq(0)),
                ],
                [],
            )
        bound = policy.grant_timeout_ticks
        attempt = [
            assign("arb_try", var("arb_try") + 1),
            sassign(req, 1),
            assign("arb_seen", 0),
            assign("arb_ticks", 0),
            while_(
                var("arb_seen").eq(0).and_(var("arb_ticks") < bound),
                [
                    wait_for(1),
                    if_(
                        var(ack).eq(1),
                        [assign("arb_seen", 1)],
                        [assign("arb_ticks", var("arb_ticks") + 1)],
                    ),
                ],
            ),
            if_(var("arb_seen").eq(1), [inner, assign("arb_ok", 1)]),
            sassign(req, 0),
            assign("arb_ticks", 0),
            while_(
                var(ack).eq(1).and_(var("arb_ticks") < bound),
                [wait_for(1), assign("arb_ticks", var("arb_ticks") + 1)],
            ),
            if_(
                var("arb_ok").eq(0),
                [wait_for(policy.backoff_ticks)],
            ),
        ]
        stmts = [
            assign("arb_ok", 0),
            assign("arb_try", 0),
            while_(
                var("arb_ok").eq(0).and_(var("arb_try") < policy.max_retries),
                attempt,
                expected=1,
            ),
            if_(var("arb_ok").eq(0), [sassign(bus_error_name(bus), 1)]),
        ]
        decls = [
            variable("arb_ok", BIT, init=0, doc="transaction completed"),
            variable("arb_seen", BIT, init=0, doc="grant observed"),
            variable("arb_try", int_type(8), init=0, doc="attempt counter"),
            variable("arb_ticks", int_type(16), init=0, doc="poll counter"),
        ]
        return stmts, decls

    def _make_wrapper(
        self, bus: str, leaf: str, send: bool, arbitrated: bool
    ) -> Subprogram:
        core = master_send_name(bus) if send else master_receive_name(bus)
        inner = call(self.pool.fixed(core), var("addr"), var("data"))
        decls = []
        if not arbitrated:
            stmts = [inner]
            doc = f"{leaf}'s unarbitrated access to {bus}"
        else:
            req, ack = arbiter_signal_names(bus, leaf, self.pool)
            stmts, decls = self._acquire_release(bus, req, ack, inner)
            doc = f"{leaf}'s arbitrated access to {bus} (Req/Ack, Figure 7)"
        sub = Subprogram(
            self._wrapper_name(bus, leaf, send),
            params=self._params(bus, send),
            stmt_body=stmts,
            decls=decls,
            doc=doc,
        )
        return stamp(
            sub,
            "emitter",
            "master-wrapper",
            source=leaf,
            detail=f"{'arbitrated' if arbitrated else 'direct'} access to {bus}",
        )

    def _make_remote(self, leaf: str, send: bool) -> Subprogram:
        """Cross-partition access: interchange lock around the interface
        transaction (deadlock-freedom: lock > iface in the global
        resource order)."""
        interchange = self._interchange_bus().name
        req, ack = arbiter_signal_names(interchange, leaf, self.pool)
        # the iface wrapper this leaf already registered is found by name
        iface_bus = None
        for bus, masters in self.masters.items():
            if leaf in masters and self.plan.buses[bus].role is BusRole.IFACE:
                iface_bus = bus
                break
        if iface_bus is None:
            raise RefinementError(
                f"remote wrapper for {leaf!r}: no interface bus registered"
            )
        inner = call(
            self._wrapper_name(iface_bus, leaf, send), var("addr"), var("data")
        )
        stmts, decls = self._acquire_release(interchange, req, ack, inner)
        sub = Subprogram(
            self._remote_name(leaf, send),
            params=self._params(iface_bus, send),
            stmt_body=stmts,
            decls=decls,
            doc=(
                f"{leaf}'s cross-partition access: global remote lock, then "
                f"the {iface_bus} transaction (message passing, Figure 8)"
            ),
        )
        return stamp(
            sub,
            "emitter",
            "remote-wrapper",
            source=leaf,
            detail=f"interchange lock + {iface_bus} transaction",
        )


def _bus_sort_key(name: str):
    """b2 before b10 (numeric suffix sort)."""
    digits = "".join(ch for ch in name if ch.isdigit())
    return (int(digits) if digits else 0, name)
