"""Control-related refinement (paper §4.1, Figure 4).

When a behavior ``B`` is partitioned away from the component its
enclosing composite runs on, the execution sequence must survive the
split.  Two signals are introduced — ``B_start`` and ``B_done`` — plus:

* ``B_CTRL``: a new leaf inserted where ``B`` used to sit; it raises
  ``B_start``, waits for ``B_done``, and completes the four-phase
  handshake, so the original sequencing (``B`` after ``A``, ``C`` after
  ``B``) is preserved on the home component;
* ``B_NEW``: the original behavior wrapped in an endless server loop on
  the other component, guarding each execution of ``B`` with the
  ``B_start``/``B_done`` handshake.

Two wrapper schemes exist.  The *leaf scheme* (Figure 4b) inlines the
loop around the statement body — only possible when ``B`` is a leaf.
The *wrap scheme* (Figure 4c) builds a sequential composite
``[wait-start, B, set-done]`` looping forever — required for non-leaf
``B`` and optionally usable for leaves (the paper prefers 4b for leaves
because it has one level of hierarchy fewer; we follow that default and
expose the choice for the ablation study).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import RefinementError
from repro.obs.provenance import stamp
from repro.partition.partition import Partition
from repro.refine.naming import NamePool
from repro.spec.behavior import (
    Behavior,
    CompositeBehavior,
    LeafBehavior,
)
from repro.spec.builder import (
    leaf,
    loop_forever,
    sassign,
    seq,
    transition,
    wait_until,
)
from repro.spec.expr import var
from repro.spec.specification import Specification
from repro.spec.types import BIT
from repro.spec.variable import Variable, signal

__all__ = ["ControlScheme", "MovedBehavior", "ControlResult", "control_refine"]


class ControlScheme(enum.Enum):
    """Which Figure 4 wrapper to use for moved *leaf* behaviors
    (composites always use WRAP)."""

    #: Figure 4b for leaves, Figure 4c for composites (paper's choice).
    AUTO = "auto"
    #: Figure 4c for everything (the ablation variant).
    WRAP = "wrap"


@dataclass
class MovedBehavior:
    """Record of one control-refined behavior."""

    original: str
    ctrl: str
    wrapper: str
    component: str
    start_signal: str
    done_signal: str
    scheme: str


@dataclass
class ControlResult:
    """Everything control refinement produced."""

    moved: List[MovedBehavior] = field(default_factory=list)
    #: server wrappers to attach to the system top (daemons)
    daemons: List[Behavior] = field(default_factory=list)
    #: control handshake signals to declare globally
    signals: List[Variable] = field(default_factory=list)
    #: every leaf (by name) -> executing component, for data refinement
    leaf_component: Dict[str, str] = field(default_factory=dict)
    #: every composite (by name) -> home component
    composite_component: Dict[str, str] = field(default_factory=dict)


def control_refine(
    refined: Specification,
    partition: Partition,
    pool: NamePool,
    scheme: ControlScheme = ControlScheme.AUTO,
) -> ControlResult:
    """Apply control-related refinement to ``refined`` in place.

    ``refined`` must be a copy of the partition's specification (same
    behavior names).  Returns the bookkeeping the later refinement
    stages need.
    """
    result = ControlResult()
    home = partition.effective_component_of_behavior(refined.top.name)
    _process(refined.top, home, partition, pool, scheme, result)
    refined.variables.extend(result.signals)
    refined.link()
    return result


def _assigned_component(
    partition: Partition, behavior: Behavior, inherited: str
) -> str:
    """Component of a direct child: its own assignment if present (in
    the original partition, matched by name), else the enclosing home."""
    direct = partition.assignment.get(behavior.name)
    if direct is not None:
        return direct
    if isinstance(behavior, CompositeBehavior):
        # an unassigned composite inherits, but a deeper assignment may
        # still move its descendants — handled by recursion
        return inherited
    return inherited


def _process(
    behavior: Behavior,
    home: str,
    partition: Partition,
    pool: NamePool,
    scheme: ControlScheme,
    result: ControlResult,
) -> None:
    """Recursively split ``behavior``'s subtree at assignment
    boundaries."""
    if isinstance(behavior, LeafBehavior):
        result.leaf_component[behavior.name] = home
        return
    if not isinstance(behavior, CompositeBehavior):
        raise RefinementError(f"unknown behavior type {behavior!r}")
    result.composite_component[behavior.name] = home

    for child in list(behavior.subs):
        child_component = _assigned_component(partition, child, home)
        if child_component == home:
            _process(child, home, partition, pool, scheme, result)
            continue
        moved = _move_child(
            behavior, child, home, child_component, pool, scheme, result
        )
        result.moved.append(moved)
        # continue splitting inside the moved subtree relative to its
        # new component (nested assignments may move parts back)
        wrapper = next(
            d for d in result.daemons if d.name == moved.wrapper
        )
        _process_moved(wrapper, child_component, partition, pool, scheme, result)


def _process_moved(
    wrapper: Behavior,
    component: str,
    partition: Partition,
    pool: NamePool,
    scheme: ControlScheme,
    result: ControlResult,
) -> None:
    """Record components inside a freshly created wrapper and keep
    splitting nested assignment boundaries."""
    if isinstance(wrapper, LeafBehavior):
        result.leaf_component[wrapper.name] = component
        return
    result.composite_component[wrapper.name] = component
    for child in list(wrapper.subs):
        child_component = _assigned_component(partition, child, component)
        if child_component == component:
            _process(child, component, partition, pool, scheme, result)
        else:
            moved = _move_child(
                wrapper, child, component, child_component, pool, scheme, result
            )
            result.moved.append(moved)
            inner = next(d for d in result.daemons if d.name == moved.wrapper)
            _process_moved(inner, child_component, partition, pool, scheme, result)


def _move_child(
    composite: CompositeBehavior,
    child: Behavior,
    home: str,
    target_component: str,
    pool: NamePool,
    scheme: ControlScheme,
    result: ControlResult,
) -> MovedBehavior:
    """Replace ``child`` with a ``B_CTRL`` leaf and wrap it as a
    ``B_NEW`` daemon on ``target_component``."""
    start = pool.fresh(f"{child.name}_start")
    done = pool.fresh(f"{child.name}_done")
    result.signals.append(
        stamp(
            signal(start, BIT, init=0, doc=f"start handshake for moved {child.name}"),
            "control",
            "start-signal",
            source=child.name,
        )
    )
    result.signals.append(
        stamp(
            signal(done, BIT, init=0, doc=f"done handshake for moved {child.name}"),
            "control",
            "done-signal",
            source=child.name,
        )
    )

    ctrl_name = pool.fresh(f"{child.name}_CTRL")
    ctrl = leaf(
        ctrl_name,
        sassign(start, 1),
        wait_until(var(done).eq(1)),
        sassign(start, 0),
        wait_until(var(done).eq(0)),
        doc=f"starts {child.name} on {target_component} and awaits completion",
    )
    stamp(
        ctrl,
        "control",
        "ctrl-leaf",
        source=child.name,
        detail=f"sequencing stub on {home} for moved {child.name} (Figure 4)",
    )
    composite.replace_child(child.name, ctrl)
    result.leaf_component[ctrl_name] = home

    use_leaf_scheme = (
        scheme is ControlScheme.AUTO and isinstance(child, LeafBehavior)
    )
    wrapper_name = pool.fresh(f"{child.name}_NEW")
    if use_leaf_scheme:
        wrapper: Behavior = _leaf_wrapper(wrapper_name, child, start, done)
        scheme_used = "leaf"
    else:
        wrapper = _wrap_wrapper(wrapper_name, child, start, done, pool)
        scheme_used = "wrap"
    wrapper.daemon = True
    stamp(
        wrapper,
        "control",
        f"{scheme_used}-wrapper",
        source=child.name,
        detail=f"server wrapper on {target_component} (Figure 4)",
    )
    result.daemons.append(wrapper)
    return MovedBehavior(
        original=child.name,
        ctrl=ctrl_name,
        wrapper=wrapper_name,
        component=target_component,
        start_signal=start,
        done_signal=done,
        scheme=scheme_used,
    )


def _leaf_wrapper(
    name: str, child: LeafBehavior, start: str, done: str
) -> LeafBehavior:
    """Figure 4b: the original statements inside a guarded server loop."""
    body = (
        [wait_until(var(start).eq(1))]
        + list(child.stmt_body)
        + [
            sassign(done, 1),
            wait_until(var(start).eq(0)),
            sassign(done, 0),
        ]
    )
    return LeafBehavior(
        name,
        [loop_forever(body)],
        decls=[decl.copy() for decl in child.decls],
        doc=f"moved {child.name} (leaf scheme, Figure 4b)",
    )


def _wrap_wrapper(
    name: str,
    child: Behavior,
    start: str,
    done: str,
    pool: NamePool,
) -> CompositeBehavior:
    """Figure 4c: [wait-start, B, set-done] sequenced in an endless
    loop."""
    wait_leaf = stamp(
        leaf(
            pool.fresh(f"{child.name}_wait_start"),
            wait_until(var(start).eq(1)),
        ),
        "control",
        "wait-start-leaf",
        source=child.name,
    )
    done_leaf = stamp(
        leaf(
            pool.fresh(f"{child.name}_set_done"),
            sassign(done, 1),
            wait_until(var(start).eq(0)),
            sassign(done, 0),
        ),
        "control",
        "set-done-leaf",
        source=child.name,
    )
    return seq(
        name,
        [wait_leaf, child, done_leaf],
        transitions=[
            transition(wait_leaf.name, None, child.name),
            transition(child.name, None, done_leaf.name),
            transition(done_leaf.name, None, wait_leaf.name),  # loop forever
        ],
        doc=f"moved {child.name} (wrap scheme, Figure 4c)",
    )
