"""Model refinement: the paper's contribution (control-, data- and
architecture-related refinement procedures plus the orchestrator)."""

from repro.refine.arbiter import build_arbiter
from repro.refine.businterface import build_bus_interfaces
from repro.refine.control import (
    ControlResult,
    ControlScheme,
    MovedBehavior,
    control_refine,
)
from repro.refine.data import DataResult, data_refine
from repro.refine.emitter import ProtocolEmitter, arbiter_signal_names
from repro.refine.memory import build_memory_behavior
from repro.refine.naming import NamePool
from repro.refine.refiner import RefinedDesign, Refiner

__all__ = [
    "build_arbiter",
    "build_bus_interfaces",
    "ControlResult",
    "ControlScheme",
    "MovedBehavior",
    "control_refine",
    "DataResult",
    "data_refine",
    "ProtocolEmitter",
    "arbiter_signal_names",
    "build_memory_behavior",
    "NamePool",
    "RefinedDesign",
    "Refiner",
]
