"""Memory behavior generation.

Data-related refinement inserts "a slave memory behavior [...] to serve
the data transfer upon the request from a master behavior" (paper §4.2,
Figure 5c).  This module builds those servers:

* a **single-port** memory is one daemon leaf: an endless loop waiting
  for a bus transaction, decoding the address against its resident
  variables, and answering with ``SLV_send``/``SLV_receive``;
* a **multi-port** memory (Model3's global memories, Model4's
  dual-ported local memories) is a concurrent composite whose children
  are one port server per bus, sharing the variable storage declared on
  the composite.

Variables keep their original declarations (type *and* initial value),
which is what makes the refined design functionally equivalent at time
zero.  Address decoding uses the plan's system-wide map: scalars match
one address, arrays match a range with the element selected by
``addr - base``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.arch.protocols import bus_signal_names
from repro.errors import RefinementError
from repro.models.plan import MemoryPlan, ModelPlan
from repro.obs.provenance import stamp
from repro.refine.emitter import ProtocolEmitter
from repro.refine.naming import NamePool
from repro.spec.behavior import Behavior, LeafBehavior
from repro.spec.builder import conc, if_, loop_forever, wait_until
from repro.spec.expr import BinOp, Const, Expr, Index, VarRef, var
from repro.spec.stmt import If, Stmt, body as make_body
from repro.spec.types import ArrayType

__all__ = ["build_memory_behavior"]


def build_memory_behavior(
    memory: MemoryPlan,
    plan: ModelPlan,
    emitter: ProtocolEmitter,
    pool: NamePool,
) -> Behavior:
    """The daemon behavior serving ``memory`` on all its ports."""
    decls = [
        plan.spec.global_variable(name).copy() for name in memory.variables
    ]
    if not memory.port_buses:
        raise RefinementError(f"memory {memory.name!r} has no ports")

    if len(memory.port_buses) == 1:
        server = _port_server(
            memory.name, memory, memory.port_buses[0], plan, emitter, pool
        )
        server.decls = decls + server.decls
        server.daemon = True
        server.doc = (
            f"{memory.kind} memory {memory.name} "
            f"({len(memory.variables)} variable(s), 1 port)"
        )
        return stamp(
            server,
            "memory",
            "memory-server",
            source=memory.name,
            detail=f"single-port {memory.kind} memory (Figure 5c)",
        )

    ports = [
        _port_server(
            pool.fresh(f"{memory.name}_port{position + 1}"),
            memory,
            bus,
            plan,
            emitter,
            pool,
        )
        for position, bus in enumerate(memory.port_buses)
    ]
    for port in ports:
        port.daemon = True
    composite = conc(
        memory.name,
        ports,
        decls=decls,
        doc=(
            f"{memory.kind} memory {memory.name} "
            f"({len(memory.variables)} variable(s), {len(ports)} ports)"
        ),
    )
    composite.daemon = True
    return stamp(
        composite,
        "memory",
        "memory-server",
        source=memory.name,
        detail=f"{len(ports)}-port {memory.kind} memory",
    )


def _port_server(
    name: str,
    memory: MemoryPlan,
    bus: str,
    plan: ModelPlan,
    emitter: ProtocolEmitter,
    pool: NamePool,
) -> LeafBehavior:
    """One endless port-server loop on ``bus``."""
    signals = bus_signal_names(bus)
    start = var(signals["start"])
    addr = var(signals["addr"])
    rd = var(signals["rd"])
    lo, hi = plan.memory_address_span(memory.name)

    read_chain = _decode_chain(memory, plan, emitter, bus, addr, send=True)
    write_chain = _decode_chain(memory, plan, emitter, bus, addr, send=False)

    mine: Expr = (addr >= lo).and_(addr <= hi)
    body = [
        wait_until(start.eq(1)),
        if_(
            mine,
            [if_(rd.eq(1), [read_chain], [write_chain])],
            # not addressed to this memory: let the transaction pass
            [wait_until(start.eq(0))],
        ),
    ]
    return stamp(
        LeafBehavior(
            name,
            [loop_forever(body)],
            doc=f"serves addresses {lo}..{hi} on {bus}",
        ),
        "memory",
        "port-server",
        source=memory.name,
        detail=f"addresses {lo}..{hi} on {bus}",
    )


def _decode_chain(
    memory: MemoryPlan,
    plan: ModelPlan,
    emitter: ProtocolEmitter,
    bus: str,
    addr: Expr,
    send: bool,
) -> Stmt:
    """``if addr = a1 then serve x1 elsif ... end if`` over the
    memory's variables (``send`` = serving a read request)."""
    arms: List[Tuple[Expr, Stmt]] = []
    for variable in memory.variables:
        rng = plan.address_of(variable)
        decl = plan.spec.global_variable(variable)
        if isinstance(decl.dtype, ArrayType):
            cond: Expr = (addr >= rng.base).and_(addr <= rng.last)
            element = Index(VarRef(variable), BinOp("-", addr, Const(rng.base)))
            serve = emitter.slave_call(bus, element, send=send)
        else:
            cond = addr.eq(rng.base)
            serve = emitter.slave_call(bus, VarRef(variable), send=send)
        arms.append((cond, serve))

    first_cond, first_serve = arms[0]
    elifs = tuple((cond, make_body([serve])) for cond, serve in arms[1:])
    return If(first_cond, make_body([first_serve]), elifs)
