"""The model-refinement orchestrator (paper §4, §5).

``Refiner.run`` transforms a partitioned specification into the chosen
implementation model by composing the three refinement classes:

1. **control-related** — split the behavior tree at partition
   boundaries with ``B_CTRL``/``B_NEW`` handshakes (§4.1);
2. **data-related** — map every partitionable variable into a memory
   module and substitute all accesses with bus protocol calls (§4.2);
3. **architecture-related** — generate the memory servers, insert bus
   arbiters where buses have several masters, and insert bus
   interfaces for Model4's message passing (§4.3).

The output, :class:`RefinedDesign`, bundles the new *simulatable*
specification (its top is a concurrent composition of the home
partition, the moved-behavior servers, memories, interfaces and
arbiters), the structural netlist, and the bookkeeping needed for
equivalence checking and the Figure 9/10 experiments.  The refined
specification is validated before being returned — refinement never
emits an inconsistent model.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.arch.allocation import Allocation, default_allocation_for
from repro.arch.components import (
    ArbiterInst,
    BusInterfaceInst,
    BusNet,
    MemoryKind,
    MemoryModule,
    MemoryPort,
    Netlist,
)
from repro.arch.protocols import Protocol, bus_signals, resolve_protocol
from repro.errors import RefinementError
from repro.graph.access_graph import AccessGraph
from repro.graph.analysis import classify_variables
from repro.models.impl_models import ImplementationModel
from repro.models.plan import BusRole, ModelPlan
from repro.obs.provenance import stamp
from repro.obs.trace import NULL_TRACER, SpanTracer
from repro.partition.partition import Partition
from repro.refine.arbiter import build_arbiter
from repro.refine.businterface import build_bus_interfaces
from repro.refine.control import ControlResult, ControlScheme, control_refine
from repro.refine.data import DataResult, data_refine
from repro.refine.emitter import ProtocolEmitter
from repro.refine.memory import build_memory_behavior
from repro.refine.naming import NamePool
from repro.spec.behavior import Behavior, CompositeBehavior, CompositionMode
from repro.spec.specification import Specification

__all__ = ["RefinedDesign", "Refiner"]


class RefinedDesign:
    """Everything model refinement produced for one (spec, partition,
    model) triple."""

    def __init__(
        self,
        original: Specification,
        spec: Specification,
        partition: Partition,
        model: ImplementationModel,
        plan: ModelPlan,
        netlist: Netlist,
        control: ControlResult,
        data: DataResult,
        observation_map: Dict[str, str],
        refinement_seconds: float,
        procedure_seconds: Optional[Dict[str, float]] = None,
    ):
        self.original = original
        self.spec = spec
        self.partition = partition
        self.model = model
        self.plan = plan
        self.netlist = netlist
        self.control = control
        self.data = data
        #: original variable name -> refined behavior whose frame holds it
        self.observation_map = observation_map
        #: wall-clock CPU time of the refinement itself (Figure 10)
        self.refinement_seconds = refinement_seconds
        #: per-procedure breakdown of that time (control, data, memory,
        #: businterface, arbiter, emitter, ...), first-run order
        self.procedure_seconds: Dict[str, float] = dict(procedure_seconds or {})

    def line_counts(self) -> Dict[str, int]:
        """Original vs refined size in printed source lines (the
        Figure 10 metric) and their ratio."""
        original = self.original.line_count()
        refined = self.spec.line_count()
        return {
            "original": original,
            "refined": refined,
            "ratio": round(refined / max(original, 1), 1),
        }

    def procedure_table(self) -> str:
        """The Figure 10 CPU time decomposed per refinement procedure."""
        if not self.procedure_seconds:
            return "no per-procedure timings recorded"
        width = max(len(name) for name in self.procedure_seconds)
        total = sum(self.procedure_seconds.values())
        lines = [f"{'procedure':<{width}}  ms      share"]
        for name, seconds in self.procedure_seconds.items():
            share = seconds / total if total else 0.0
            lines.append(f"{name:<{width}}  {seconds * 1e3:7.2f} {share:6.1%}")
        lines.append(f"{'total':<{width}}  {total * 1e3:7.2f} {1:6.1%}")
        return "\n".join(lines)

    def describe(self) -> str:
        sizes = self.line_counts()
        lines = [
            f"refined {self.original.name} with {self.model.name} "
            f"on partition {self.partition.name!r}",
            f"  {sizes['original']} -> {sizes['refined']} lines "
            f"({sizes['ratio']}x) in {self.refinement_seconds * 1e3:.1f} ms",
            f"  moved behaviors: "
            + (", ".join(m.original for m in self.control.moved) or "none"),
            f"  protocol calls inserted: {self.data.calls_inserted}",
        ]
        lines.append(self.netlist.describe())
        return "\n".join(lines)


class Refiner:
    """Runs the full refinement pipeline.

    Parameters
    ----------
    spec:
        The functional specification (validated on entry).
    partition:
        Behavior/variable to component assignment.
    model:
        Which of the four implementation models to refine into.
    allocation:
        Available components; defaults invent a processor/ASIC per
        partition component name.
    protocol:
        Bus protocol (name or instance); default the Figure 5d
        handshake.
    control_scheme:
        Figure 4b vs 4c for moved leaf behaviors.
    tracer:
        Optional :class:`repro.obs.trace.SpanTracer`; each refinement
        procedure runs inside its own span (category ``"refine"``).
    """

    def __init__(
        self,
        spec: Specification,
        partition: Partition,
        model: ImplementationModel,
        allocation: Optional[Allocation] = None,
        protocol="handshake",
        control_scheme: ControlScheme = ControlScheme.AUTO,
        tracer: Optional[SpanTracer] = None,
    ):
        self.spec = spec
        self.partition = partition
        self.model = model
        self.allocation = (
            allocation or default_allocation_for(partition.components())
        ).ensure(partition.components())
        self.protocol: Protocol = resolve_protocol(protocol)
        self.control_scheme = control_scheme
        self.tracer = tracer if tracer is not None else NULL_TRACER

    @contextmanager
    def _procedure(self, seconds: Dict[str, float], name: str, **attrs):
        """One refinement procedure: a tracer span plus a wall-clock
        entry in the Figure 10 per-procedure breakdown."""
        t0 = time.perf_counter()
        with self.tracer.span(name, category="refine", **attrs) as span:
            try:
                yield span
            finally:
                seconds[name] = (
                    seconds.get(name, 0.0) + time.perf_counter() - t0
                )

    def run(self) -> RefinedDesign:
        started = time.perf_counter()
        seconds: Dict[str, float] = {}

        with self._procedure(seconds, "validate"):
            self.spec.validate()
        with self._procedure(
            seconds, "plan", model=self.model.name
        ) as span:
            graph = AccessGraph.from_specification(self.spec)
            classification = classify_variables(graph, self.partition)
            plan = self.model.build_plan(
                self.spec, self.partition,
                classification=classification, graph=graph,
            )
            span.set("buses", len(plan.buses))
            span.set("memories", len(plan.memories))

        if (
            plan.buses_with_role(BusRole.INTERCHANGE)
            and not self.protocol.supports_multi_hop
        ):
            raise RefinementError(
                f"protocol {self.protocol.name!r} has a fixed response "
                "window and cannot serve Model4's bus-interface message "
                "passing (the slave forwards over further buses before "
                "answering); use the handshake protocol"
            )
        self._reject_subprogram_accesses(plan)
        refined = self.spec.copy()
        refined.name = f"{self.spec.name}_{self.model.name}"
        pool = NamePool.for_specification(refined)
        self._reserve_generated_names(plan, pool)

        # 1. control-related refinement (§4.1)
        with self._procedure(seconds, "control") as span:
            control = control_refine(
                refined, self.partition, pool, scheme=self.control_scheme
            )
            span.set("moved", len(control.moved))

        # 2. data-related refinement (§4.2)
        emitter = ProtocolEmitter(plan, self.protocol, pool)
        with self._procedure(seconds, "data") as span:
            data = data_refine(
                refined,
                plan,
                emitter,
                pool,
                control.leaf_component,
                control.composite_component,
                extra_roots=control.daemons,
            )
            span.set("calls_inserted", data.calls_inserted)
            span.set("rewritten_leaves", len(data.rewritten_leaves))

        # 3. architecture-related refinement (§4.3)
        with self._procedure(seconds, "memory") as span:
            memories = [
                build_memory_behavior(memory, plan, emitter, pool)
                for memory in plan.memories.values()
            ]
            span.set("memories", len(memories))
        with self._procedure(seconds, "businterface") as span:
            interfaces = build_bus_interfaces(plan, emitter, pool)
            span.set("interfaces", len(interfaces))
        recovery = getattr(self.protocol, "recovery", None)
        with self._procedure(seconds, "arbiter") as span:
            arbiters = []
            for bus in sorted(emitter.arbitrated_buses()):
                arbiters.append(
                    build_arbiter(
                        bus, emitter.masters[bus], pool, recovery=recovery
                    )
                )
            if emitter.lock_clients:
                interchange = plan.buses_with_role(BusRole.INTERCHANGE)[0]
                arbiters.append(
                    build_arbiter(
                        interchange.name,
                        emitter.lock_clients,
                        pool,
                        recovery=recovery,
                    )
                )
            span.set("arbiters", len(arbiters))

        # materialise protocol subprograms, signals, and storage moves
        with self._procedure(seconds, "emitter") as span:
            emitter.finalize(refined)
            for bus_plan in plan.buses.values():
                net = BusNet(
                    bus_plan.name,
                    data_width=bus_plan.data_width,
                    addr_width=bus_plan.addr_width,
                    protocol=self.protocol.name,
                )
                for decl in bus_signals(net):
                    refined.variables.append(
                        stamp(decl, "emitter", "bus-signal",
                              source=bus_plan.name)
                    )
                for decl in self.protocol.extra_signals(net):
                    refined.variables.append(
                        stamp(decl, "emitter", "protocol-signal",
                              source=bus_plan.name)
                    )
            refined.variables.extend(emitter.arbitration_signals())
            placed = set(plan.placement)
            refined.variables = [
                v for v in refined.variables if v.name not in placed
            ]
            span.set("subprograms", len(refined.subprograms))

        # assemble the simulatable system top
        with self._procedure(seconds, "assemble") as span:
            system_children: List[Behavior] = [refined.top]
            system_children.extend(control.daemons)
            system_children.extend(memories)
            system_children.extend(interfaces)
            system_children.extend(arbiters)
            system = CompositeBehavior(
                pool.fresh(f"{self.spec.name}_system"),
                system_children,
                mode=CompositionMode.CONCURRENT,
                doc=(
                    "refined system: home partition, moved-behavior servers, "
                    "memories, bus interfaces and arbiters"
                ),
            )
            stamp(
                system,
                "refiner",
                "system-top",
                source=self.spec.top.name,
                detail="concurrent composition of the refined system",
            )
            refined.top = system
            refined.link()
            refined.validate()
            netlist = self._build_netlist(
                plan, emitter, memories, interfaces, arbiters
            )
            span.set("behaviors", sum(1 for _ in system.iter_tree()))

        observation_map = {
            variable: memory_name
            for variable, memory_name in plan.placement.items()
        }
        elapsed = time.perf_counter() - started
        return RefinedDesign(
            original=self.spec,
            spec=refined,
            partition=self.partition,
            model=self.model,
            plan=plan,
            netlist=netlist,
            control=control,
            data=data,
            observation_map=observation_map,
            refinement_seconds=elapsed,
            procedure_seconds=seconds,
        )

    # -- helpers -----------------------------------------------------------------

    def _reject_subprogram_accesses(self, plan: ModelPlan) -> None:
        """User subprograms are shared across call sites that may live on
        different components, so an access to a partitioned variable
        inside one has no single bus to route over.  Fail early with a
        clear message (the alternative would be a confusing scope error
        from the refined model's validator)."""
        from repro.spec.expr import free_variables
        from repro.spec.stmt import lvalue_name
        from repro.spec.visitor import walk_statements

        placed = set(plan.placement)
        for sub in self.spec.subprograms.values():
            local_names = {p.name for p in sub.params}
            local_names.update(d.name for d in sub.decls)
            for stmt in walk_statements(sub.stmt_body):
                touched = set()
                for expr in stmt.expressions():
                    touched |= free_variables(expr)
                offending = (touched - local_names) & placed
                if offending:
                    raise RefinementError(
                        f"subprogram {sub.name!r} accesses partitioned "
                        f"variable(s) {sorted(offending)}; inline the "
                        "access into the calling behavior so refinement "
                        "can route it over a bus"
                    )

    def _reserve_generated_names(self, plan: ModelPlan, pool: NamePool) -> None:
        """Bus signal bundles use fixed names; refuse user collisions."""
        from repro.arch.protocols import bus_signal_names

        for bus in plan.buses:
            for name in bus_signal_names(bus).values():
                if pool.is_taken(name):
                    raise RefinementError(
                        f"specification already uses the name {name!r}, "
                        f"which refinement needs for bus {bus!r}"
                    )
                pool.reserve(name)
        for memory in plan.memories:
            if pool.is_taken(memory):
                raise RefinementError(
                    f"specification already uses the name {memory!r}, "
                    "which refinement needs for a memory module"
                )
            pool.reserve(memory)

    def _build_netlist(
        self,
        plan: ModelPlan,
        emitter: ProtocolEmitter,
        memories: List[Behavior],
        interfaces: List[Behavior],
        arbiters: List[Behavior],
    ) -> Netlist:
        netlist = Netlist()
        for component_name in self.partition.components():
            netlist.add_component(self.allocation.get(component_name))
        for memory_plan in plan.memories.values():
            netlist.add_memory(
                MemoryModule(
                    name=memory_plan.name,
                    kind=(
                        MemoryKind.LOCAL
                        if memory_plan.kind == "local"
                        else MemoryKind.GLOBAL
                    ),
                    ports=[
                        MemoryPort(f"{memory_plan.name}_p{i + 1}", bus)
                        for i, bus in enumerate(memory_plan.port_buses)
                    ],
                    variables=list(memory_plan.variables),
                    host=memory_plan.host,
                )
            )
        for bus_plan in plan.buses.values():
            netlist.add_bus(
                BusNet(
                    bus_plan.name,
                    data_width=bus_plan.data_width,
                    addr_width=bus_plan.addr_width,
                    protocol=self.protocol.name,
                    masters=list(emitter.masters.get(bus_plan.name, [])),
                    slaves=[
                        memory.name
                        for memory in plan.memories.values()
                        if bus_plan.name in memory.port_buses
                    ],
                )
            )
        for arbiter in arbiters:
            bus = arbiter.name.rsplit("_arbiter", 1)[0]
            netlist.add_arbiter(
                ArbiterInst(
                    arbiter.name,
                    bus,
                    masters=list(emitter.masters.get(bus, emitter.lock_clients)),
                )
            )
        interchange_buses = plan.buses_with_role(BusRole.INTERCHANGE)
        for interface in interfaces:
            component = next(
                c
                for c in self.partition.components()
                if interface.name.startswith(f"BI_{c}_")
            )
            iface = plan.bus_for(BusRole.IFACE, component=component)
            netlist.add_interface(
                BusInterfaceInst(
                    name=interface.name,
                    component=component,
                    request_bus=iface.name,
                    interchange_bus=(
                        interchange_buses[0].name if interchange_buses else ""
                    ),
                    memory_bus=iface.name,
                )
            )
        return netlist
