"""Bus arbiter insertion (paper §4.3, Figure 7).

"A bus arbiter is required when more than one behavior want to use the
bus at the same time."  The arbiter is a daemon leaf with one
``Req``/``Ack`` line pair per master, granting in fixed priority order
(declaration order = priority, exactly the paper's example where B2 is
granted "only when B1 is not simultaneously requesting").
"""

from __future__ import annotations

from typing import List

from repro.errors import RefinementError
from repro.refine.emitter import arbiter_signal_names
from repro.refine.naming import NamePool
from repro.spec.behavior import LeafBehavior
from repro.spec.builder import loop_forever, sassign, wait_until
from repro.spec.expr import Expr, var
from repro.spec.stmt import If, body as make_body

__all__ = ["build_arbiter"]


def build_arbiter(
    bus: str,
    masters: List[str],
    pool: NamePool,
) -> LeafBehavior:
    """The priority arbiter daemon for ``bus`` over ``masters``
    (earlier = higher priority).  The Req/Ack signals themselves are
    declared by the emitter.

    A single-master arbiter is a plain granter — it exists for the
    Model4 interchange lock, whose Req/Ack handshake is required even
    when only one behavior ever takes the lock."""
    if not masters:
        raise RefinementError(f"bus {bus!r}: an arbiter needs at least one master")

    reqs = [var(arbiter_signal_names(bus, master)[0]) for master in masters]
    acks = [var(arbiter_signal_names(bus, master)[1]) for master in masters]

    any_request: Expr = reqs[0].eq(1)
    for req in reqs[1:]:
        any_request = any_request.or_(req.eq(1))

    def grant(req: Expr, ack: Expr) -> list:
        return [
            sassign(ack, 1),
            wait_until(req.eq(0)),
            sassign(ack, 0),
        ]

    first = (reqs[0].eq(1), make_body(grant(reqs[0], acks[0])))
    elifs = tuple(
        (req.eq(1), make_body(grant(req, ack)))
        for req, ack in zip(reqs[1:], acks[1:])
    )
    decide = If(first[0], first[1], elifs)

    arbiter = LeafBehavior(
        pool.fresh(f"{bus}_arbiter"),
        [loop_forever([wait_until(any_request), decide])],
        doc=(
            f"priority arbiter for {bus}; order: "
            + " > ".join(masters)
        ),
    )
    arbiter.daemon = True
    return arbiter
