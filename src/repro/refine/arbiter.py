"""Bus arbiter insertion (paper §4.3, Figure 7).

"A bus arbiter is required when more than one behavior want to use the
bus at the same time."  The arbiter is a daemon leaf with one
``Req``/``Ack`` line pair per master, granting in fixed priority order
(declaration order = priority, exactly the paper's example where B2 is
granted "only when B1 is not simultaneously requesting").

With a :class:`repro.arch.protocols.RecoveryPolicy` (timeout-capable
protocols), the grant tenure is bounded too: a granted master that
never releases its request — a killed process, a wedged protocol —
only wedges the arbiter for ``grant_timeout_ticks`` before the grant is
revoked and the remaining masters are served again.
"""

from __future__ import annotations

from typing import List, Optional

from repro.arch.protocols import RecoveryPolicy
from repro.errors import RefinementError
from repro.obs.provenance import stamp
from repro.refine.emitter import arbiter_signal_names
from repro.refine.naming import NamePool
from repro.spec.behavior import LeafBehavior
from repro.spec.builder import assign, loop_forever, sassign, wait_for, wait_until, while_
from repro.spec.expr import Expr, var
from repro.spec.stmt import If, body as make_body
from repro.spec.types import int_type
from repro.spec.variable import variable

__all__ = ["build_arbiter"]


def build_arbiter(
    bus: str,
    masters: List[str],
    pool: NamePool,
    recovery: Optional[RecoveryPolicy] = None,
) -> LeafBehavior:
    """The priority arbiter daemon for ``bus`` over ``masters``
    (earlier = higher priority).  The Req/Ack signals themselves are
    declared by the emitter.

    A single-master arbiter is a plain granter — it exists for the
    Model4 interchange lock, whose Req/Ack handshake is required even
    when only one behavior ever takes the lock."""
    if not masters:
        raise RefinementError(f"bus {bus!r}: an arbiter needs at least one master")

    reqs = [var(arbiter_signal_names(bus, master, pool)[0]) for master in masters]
    acks = [var(arbiter_signal_names(bus, master, pool)[1]) for master in masters]

    any_request: Expr = reqs[0].eq(1)
    for req in reqs[1:]:
        any_request = any_request.or_(req.eq(1))

    decls = []
    if recovery is None:

        def grant(req: Expr, ack: Expr) -> list:
            return [
                sassign(ack, 1),
                wait_until(req.eq(0)),
                sassign(ack, 0),
            ]

    else:
        ticks = pool.fresh(f"{bus}_arb_ticks")
        decls.append(
            stamp(
                variable(ticks, int_type(16), init=0, doc="grant tenure counter"),
                "arbiter",
                "tenure-counter",
                source=bus,
            )
        )
        bound = recovery.grant_timeout_ticks

        def grant(req: Expr, ack: Expr) -> list:
            # bounded tenure: revoke the grant if the master never
            # releases its request (e.g. it was killed mid-transaction)
            return [
                sassign(ack, 1),
                assign(ticks, 0),
                while_(
                    req.eq(1).and_(var(ticks) < bound),
                    [wait_for(1), assign(ticks, var(ticks) + 1)],
                ),
                sassign(ack, 0),
            ]

    first = (reqs[0].eq(1), make_body(grant(reqs[0], acks[0])))
    elifs = tuple(
        (req.eq(1), make_body(grant(req, ack)))
        for req, ack in zip(reqs[1:], acks[1:])
    )
    decide = If(first[0], first[1], elifs)

    arbiter = LeafBehavior(
        pool.fresh(f"{bus}_arbiter"),
        [loop_forever([wait_until(any_request), decide])],
        decls=decls,
        doc=(
            f"priority arbiter for {bus}; order: "
            + " > ".join(masters)
            + ("" if recovery is None else
               f" (grant tenure bounded to {recovery.grant_timeout_ticks} ticks)")
        ),
    )
    arbiter.daemon = True
    return stamp(
        arbiter,
        "arbiter",
        "priority-arbiter",
        source=bus,
        detail="priority order: " + " > ".join(masters),
    )
