"""Data-related refinement (paper §4.2, Figures 5 and 6).

Once a variable is mapped to a memory module, its name is no longer
visible to the behaviors that used it; every access must become a
protocol transaction over the bus the implementation model routes it
to.  Concretely:

* a **read** of ``x`` inside a statement becomes
  ``MST_receive(x_addr, tmp)`` prepended to the statement, with the
  occurrence of ``x`` replaced by ``tmp`` (Figure 5c);
* a **write** ``x := e`` becomes ``MST_send(x_addr, e')``;
* an **array access** ``a[i]`` addresses ``a_addr + i'``;
* a **loop condition** reading ``x`` re-fetches at the end of every
  iteration (the condition is re-evaluated each pass);
* a **transition condition** in a composite reading ``x`` is refined by
  declaring a ``tmp`` on the composite and fetching into it *at the end
  of the arc's source sub-behavior* (Figure 6b) — that is where the
  comparison happens ("the comparisons x>1 and x>5 are done after B1
  and B2 finish").

All protocol-call names come from the :class:`ProtocolEmitter`, which
also learns who masters which bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.errors import RefinementError
from repro.models.plan import ModelPlan
from repro.obs.provenance import stamp
from repro.refine.emitter import ProtocolEmitter
from repro.refine.naming import NamePool
from repro.spec.behavior import Behavior, CompositeBehavior, LeafBehavior
from repro.spec.builder import leaf as make_leaf, seq, transition as make_transition
from repro.spec.expr import (
    BinOp,
    Const,
    Expr,
    Index,
    UnaryOp,
    VarRef,
    free_variables,
    var,
)
from repro.spec.specification import Specification
from repro.spec.subprogram import Direction
from repro.spec.stmt import (
    Assign,
    Body,
    CallStmt,
    For,
    If,
    Null,
    SignalAssign,
    Stmt,
    Wait,
    While,
    body as make_body,
)
from repro.spec.types import ArrayType
from repro.spec.variable import variable as make_variable

__all__ = ["DataResult", "data_refine"]


@dataclass
class DataResult:
    """Bookkeeping from data-related refinement."""

    #: leaves whose bodies were rewritten
    rewritten_leaves: List[str] = field(default_factory=list)
    #: composites whose transition conditions were refined
    rewritten_composites: List[str] = field(default_factory=list)
    #: total protocol calls inserted
    calls_inserted: int = 0


class _LeafRewriter:
    """Rewrites one leaf behavior's statements."""

    def __init__(
        self,
        refined: Specification,
        plan: ModelPlan,
        emitter: ProtocolEmitter,
        pool: NamePool,
        leaf: LeafBehavior,
        component: str,
        result: DataResult,
    ):
        self.refined = refined
        self.plan = plan
        self.emitter = emitter
        self.pool = pool
        self.leaf = leaf
        self.component = component
        self.result = result
        self._tmp_names: Dict[str, str] = {}

    # -- temporaries ----------------------------------------------------------

    def _tmp_for(self, variable: str) -> str:
        """The leaf-local temporary holding fetched values of
        ``variable`` (element values for arrays)."""
        name = self._tmp_names.get(variable)
        if name is not None:
            return name
        decl = self.plan.spec.global_variable(variable)
        dtype = decl.dtype
        if isinstance(dtype, ArrayType):
            dtype = dtype.element
        name = self.pool.fresh(f"tmp_{variable}")
        self.leaf.add_decl(
            stamp(
                make_variable(name, dtype, doc=f"fetched copy of {variable}"),
                "data",
                "fetch-tmp",
                source=variable,
            )
        )
        self._tmp_names[variable] = name
        return name

    # -- protocol calls ----------------------------------------------------------

    def _addr_expr(self, variable: str, index: Optional[Expr]) -> Expr:
        base = self.plan.address_of(variable).base
        if index is None:
            return Const(base)
        return BinOp("+", Const(base), index)

    def _receive(self, variable: str, index: Optional[Expr], target: Expr) -> CallStmt:
        self.result.calls_inserted += 1
        fetch = self.emitter.master_call(
            self.leaf.name,
            self.component,
            variable,
            self._addr_expr(variable, index),
            target,
            send=False,
        )
        return stamp(fetch, "data", "fetch-call", source=variable)

    def _send(self, variable: str, index: Optional[Expr], value: Expr) -> CallStmt:
        self.result.calls_inserted += 1
        store = self.emitter.master_call(
            self.leaf.name,
            self.component,
            variable,
            self._addr_expr(variable, index),
            value,
            send=True,
        )
        return stamp(store, "data", "store-call", source=variable)

    # -- expression rewriting --------------------------------------------------------

    def _is_placed(self, name: str) -> bool:
        return name in self.plan.placement

    def rewrite_expr(self, expr: Expr, prelude: List[Stmt]) -> Expr:
        """Replace placed-variable reads with temporaries, appending the
        fetches to ``prelude``.  Scalars fetch once per statement; each
        array-element occurrence fetches individually (indices may
        differ)."""
        if isinstance(expr, Const):
            return expr
        if isinstance(expr, VarRef):
            if not self._is_placed(expr.name):
                return expr
            tmp = self._tmp_for(expr.name)
            fetch = self._receive(expr.name, None, var(tmp))
            if not _contains_same_fetch(prelude, fetch):
                prelude.append(fetch)
            return var(tmp)
        if isinstance(expr, Index):
            if isinstance(expr.base, VarRef) and self._is_placed(expr.base.name):
                index = self.rewrite_expr(expr.index_expr, prelude)
                tmp = self.pool.fresh(f"tmp_{expr.base.name}")
                decl = self.plan.spec.global_variable(expr.base.name)
                element = decl.dtype.element if isinstance(
                    decl.dtype, ArrayType
                ) else decl.dtype
                self.leaf.add_decl(
                    stamp(
                        make_variable(
                            tmp, element, doc=f"element of {expr.base.name}"
                        ),
                        "data",
                        "element-tmp",
                        source=expr.base.name,
                    )
                )
                prelude.append(self._receive(expr.base.name, index, var(tmp)))
                return var(tmp)
            return Index(
                self.rewrite_expr(expr.base, prelude),
                self.rewrite_expr(expr.index_expr, prelude),
            )
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, self.rewrite_expr(expr.operand, prelude))
        if isinstance(expr, BinOp):
            left = self.rewrite_expr(expr.left, prelude)
            right = self.rewrite_expr(expr.right, prelude)
            return BinOp(expr.op, left, right)
        raise RefinementError(f"cannot rewrite expression {expr!r}")

    # -- statement rewriting --------------------------------------------------------------

    def rewrite_body(self, stmts: Body) -> Body:
        out: List[Stmt] = []
        for stmt in stmts:
            out.extend(self.rewrite_stmt(stmt))
        return make_body(out)

    def rewrite_stmt(self, stmt: Stmt) -> List[Stmt]:
        prelude: List[Stmt] = []
        if isinstance(stmt, Assign):
            value = self.rewrite_expr(stmt.value, prelude)
            target = stmt.target
            if isinstance(target, VarRef) and self._is_placed(target.name):
                return prelude + [self._send(target.name, None, value)]
            if (
                isinstance(target, Index)
                and isinstance(target.base, VarRef)
                and self._is_placed(target.base.name)
            ):
                index = self.rewrite_expr(target.index_expr, prelude)
                return prelude + [self._send(target.base.name, index, value)]
            if isinstance(target, Index):
                index = self.rewrite_expr(target.index_expr, prelude)
                return prelude + [Assign(Index(target.base, index), value)]
            return prelude + [Assign(target, value)]
        if isinstance(stmt, SignalAssign):
            value = self.rewrite_expr(stmt.value, prelude)
            return prelude + [SignalAssign(stmt.target, value)]
        if isinstance(stmt, If):
            cond = self.rewrite_expr(stmt.cond, prelude)
            elifs = tuple(
                (self.rewrite_expr(c, prelude), self.rewrite_body(b))
                for c, b in stmt.elifs
            )
            return prelude + [
                If(
                    cond,
                    self.rewrite_body(stmt.then_body),
                    elifs,
                    self.rewrite_body(stmt.else_body),
                )
            ]
        if isinstance(stmt, While):
            cond_prelude: List[Stmt] = []
            cond = self.rewrite_expr(stmt.cond, cond_prelude)
            new_body = list(self.rewrite_body(stmt.loop_body))
            # the condition re-evaluates each pass: refresh its fetches
            new_body.extend(_copy_stmts(cond_prelude))
            return cond_prelude + [
                While(cond, make_body(new_body), stmt.expected_iterations)
            ]
        if isinstance(stmt, For):
            start = self.rewrite_expr(stmt.start, prelude)
            stop = self.rewrite_expr(stmt.stop, prelude)
            return prelude + [
                For(stmt.variable, start, stop, self.rewrite_body(stmt.loop_body))
            ]
        if isinstance(stmt, Wait):
            if stmt.until is not None:
                touched = free_variables(stmt.until) & set(self.plan.placement)
                if touched:
                    raise RefinementError(
                        f"leaf {self.leaf.name!r} waits on memory-mapped "
                        f"variable(s) {sorted(touched)}; wait conditions must "
                        "use signals"
                    )
            return [stmt]
        if isinstance(stmt, CallStmt):
            return self._rewrite_call(stmt, prelude)
        if isinstance(stmt, Null):
            return [stmt]
        raise RefinementError(f"cannot rewrite statement {stmt!r}")

    def _rewrite_call(self, stmt: CallStmt, prelude: List[Stmt]) -> List[Stmt]:
        callee = self.refined.subprograms.get(stmt.callee)
        out_indices = set(callee.out_param_indices()) if callee else set()
        inout_indices = (
            {
                i
                for i, param in enumerate(callee.params)
                if param.direction is Direction.INOUT
            }
            if callee
            else set()
        )
        postlude: List[Stmt] = []
        new_args: List[Expr] = []
        for position, arg in enumerate(stmt.args):
            if position in out_indices:
                # an inout argument is read by the callee, so the
                # temporary must carry the *current* memory value into
                # the call (rewrite_expr emits the fetch); a pure out
                # argument only needs the write-back
                if isinstance(arg, VarRef) and self._is_placed(arg.name):
                    if position in inout_indices:
                        fetched = self.rewrite_expr(arg, prelude)
                        new_args.append(fetched)
                        postlude.append(self._send(arg.name, None, fetched))
                    else:
                        tmp = self._tmp_for(arg.name)
                        new_args.append(var(tmp))
                        postlude.append(self._send(arg.name, None, var(tmp)))
                elif (
                    isinstance(arg, Index)
                    and isinstance(arg.base, VarRef)
                    and self._is_placed(arg.base.name)
                ):
                    index = self.rewrite_expr(arg.index_expr, prelude)
                    if position in inout_indices:
                        fetched = self.rewrite_expr(arg, prelude)
                        new_args.append(fetched)
                        postlude.append(
                            self._send(arg.base.name, index, fetched)
                        )
                    else:
                        tmp = self._tmp_for(arg.base.name)
                        new_args.append(var(tmp))
                        postlude.append(
                            self._send(arg.base.name, index, var(tmp))
                        )
                elif isinstance(arg, Index):
                    # local-array lvalue: its index may still read
                    # placed variables
                    index = self.rewrite_expr(arg.index_expr, prelude)
                    new_args.append(Index(arg.base, index))
                else:
                    new_args.append(arg)
            else:
                new_args.append(self.rewrite_expr(arg, prelude))
        return prelude + [CallStmt(stmt.callee, tuple(new_args))] + postlude


def _copy_stmts(stmts: Sequence[Stmt]) -> List[Stmt]:
    """Statements are immutable, so re-using them is safe."""
    return list(stmts)


def _contains_same_fetch(prelude: Sequence[Stmt], fetch: CallStmt) -> bool:
    return any(
        isinstance(s, CallStmt) and s.callee == fetch.callee and s.args == fetch.args
        for s in prelude
    )


def data_refine(
    refined: Specification,
    plan: ModelPlan,
    emitter: ProtocolEmitter,
    pool: NamePool,
    leaf_component: Dict[str, str],
    composite_component: Dict[str, str],
    extra_roots: Sequence[Behavior] = (),
) -> DataResult:
    """Apply data-related refinement to every behavior of ``refined``'s
    tree and the detached ``extra_roots`` (the ``B_NEW`` daemons not yet
    attached to the system top)."""
    result = DataResult()
    roots = [refined.top] + list(extra_roots)
    for root in roots:
        for behavior in root.iter_tree():
            if isinstance(behavior, LeafBehavior):
                _refine_leaf(
                    refined, plan, emitter, pool, behavior,
                    leaf_component, result,
                )
    # transition conditions second: the fetch statements they append to
    # source children must not be re-processed by the leaf pass
    for root in roots:
        for behavior in list(root.iter_tree()):
            if isinstance(behavior, CompositeBehavior):
                _refine_composite_transitions(
                    refined, plan, emitter, pool, behavior,
                    composite_component, leaf_component, result,
                )
    return result


def _refine_leaf(
    refined: Specification,
    plan: ModelPlan,
    emitter: ProtocolEmitter,
    pool: NamePool,
    behavior: LeafBehavior,
    leaf_component: Dict[str, str],
    result: DataResult,
) -> None:
    component = leaf_component.get(behavior.name)
    if component is None:
        raise RefinementError(
            f"no component recorded for leaf {behavior.name!r}"
        )
    touched = _touches_placed(behavior, plan)
    if not touched:
        return
    rewriter = _LeafRewriter(
        refined, plan, emitter, pool, behavior, component, result
    )
    behavior.stmt_body = rewriter.rewrite_body(behavior.stmt_body)
    result.rewritten_leaves.append(behavior.name)


def _touches_placed(behavior: LeafBehavior, plan: ModelPlan) -> bool:
    from repro.spec.visitor import walk_statements
    from repro.spec.visitor import statement_reads, statement_writes

    placed = set(plan.placement)
    for stmt in walk_statements(behavior.stmt_body):
        if set(statement_reads(stmt)) & placed:
            return True
        if set(statement_writes(stmt)) & placed:
            return True
    return False


def _refine_composite_transitions(
    refined: Specification,
    plan: ModelPlan,
    emitter: ProtocolEmitter,
    pool: NamePool,
    composite: CompositeBehavior,
    composite_component: Dict[str, str],
    leaf_component: Dict[str, str],
    result: DataResult,
) -> None:
    placed = set(plan.placement)
    needy: Dict[str, Set[str]] = {}
    for arc in composite.transitions:
        if arc.condition is None:
            continue
        remote = free_variables(arc.condition) & placed
        if remote:
            needy.setdefault(arc.source, set()).update(remote)
    if not needy:
        return

    home = composite_component.get(composite.name)
    if home is None:
        raise RefinementError(
            f"no component recorded for composite {composite.name!r}"
        )

    # one tmp per variable, declared on the composite so both the
    # fetch statements (inside children) and the conditions can see it
    tmp_of: Dict[str, str] = {}
    for variable in sorted({v for group in needy.values() for v in group}):
        decl = plan.spec.global_variable(variable)
        dtype = decl.dtype
        if isinstance(dtype, ArrayType):
            raise RefinementError(
                f"transition condition on array variable {variable!r} "
                "is not supported"
            )
        tmp = pool.fresh(f"tmp_{variable}")
        composite.add_decl(
            stamp(
                make_variable(tmp, dtype, doc=f"fetched copy of {variable} "
                                              f"for {composite.name}'s transitions"),
                "data",
                "transition-tmp",
                source=variable,
                detail=f"Figure 6b fetch target for {composite.name}",
            )
        )
        tmp_of[variable] = tmp

    for source, variables in sorted(needy.items()):
        fetches = []
        for variable in sorted(variables):
            base = plan.address_of(variable).base
            fetch_target = var(tmp_of[variable])
            # the fetch executes at the end of the source child, on the
            # composite's home component
            fetches.append((variable, Const(base), fetch_target))
        _append_fetches(
            refined, plan, emitter, pool, composite, source, fetches,
            home, leaf_component, result, composite_component,
        )

    # rewrite the conditions to use the temporaries
    from repro.spec.expr import substitute

    mapping = {name: var(tmp) for name, tmp in tmp_of.items()}
    for arc in composite.transitions:
        if arc.condition is not None:
            arc.condition = substitute(arc.condition, mapping)

    result.rewritten_composites.append(composite.name)


def _append_fetches(
    refined: Specification,
    plan: ModelPlan,
    emitter: ProtocolEmitter,
    pool: NamePool,
    composite: CompositeBehavior,
    source: str,
    fetches,
    home: str,
    leaf_component: Dict[str, str],
    result: DataResult,
    composite_component: Dict[str, str] = None,
) -> None:
    """Insert the MST_receive fetches at the end of ``source``.

    Leaf sources get the calls appended to their body (Figure 6b);
    composite sources are wrapped so a trailing fetch leaf runs after
    them."""
    child = composite.child(source)
    if isinstance(child, LeafBehavior):
        calls = [
            stamp(
                emitter.master_call(
                    child.name, home, variable, addr, target, send=False
                ),
                "data",
                "transition-fetch",
                source=variable,
            )
            for variable, addr, target in fetches
        ]
        result.calls_inserted += len(calls)
        child.stmt_body = make_body(list(child.stmt_body) + calls)
        return

    original_name = child.name
    child.name = pool.fresh(f"{original_name}_body")
    stamp(
        child,
        "data",
        "renamed-body",
        source=original_name,
        detail="renamed so the fetch wrapper can take its place",
    )
    if composite_component is not None and original_name in composite_component:
        # the renamed composite keeps its home; the wrapper inherits it
        composite_component[child.name] = composite_component[original_name]
    fetch_leaf_name = pool.fresh(f"{original_name}_fetch")
    calls = [
        stamp(
            emitter.master_call(
                fetch_leaf_name, home, variable, addr, target, send=False
            ),
            "data",
            "transition-fetch",
            source=variable,
        )
        for variable, addr, target in fetches
    ]
    result.calls_inserted += len(calls)
    fetch_leaf = stamp(
        make_leaf(
            fetch_leaf_name,
            *calls,
            doc=f"fetches transition-condition variables after {original_name}",
        ),
        "data",
        "fetch-leaf",
        source=original_name,
        detail="trailing transition-condition fetch (Figure 6b)",
    )
    leaf_component[fetch_leaf_name] = home
    wrapper = stamp(
        seq(
            original_name,
            [child, fetch_leaf],
            transitions=[make_transition(child.name, None, fetch_leaf_name)],
            doc=f"{original_name} plus its trailing condition fetch",
        ),
        "data",
        "body-wrapper",
        source=original_name,
    )
    for position, sub in enumerate(composite.subs):
        if sub is child:
            composite.subs[position] = wrapper
            break
    else:
        # child was re-named; find by identity failed means it was the
        # renamed object still in subs — locate by name
        for position, sub in enumerate(composite.subs):
            if sub.name == child.name:
                composite.subs[position] = wrapper
                break
    refined.link()
