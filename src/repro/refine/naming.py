"""Fresh-name generation for refinement-inserted objects.

Refinement introduces many named objects (``B_CTRL``, ``B_NEW``,
``B_start``/``B_done`` signals, ``tmp`` variables, memory/arbiter/
interface behaviors, protocol wrapper subprograms).  A single
spec-wide :class:`NameAllocator` guarantees they never collide with
user names or each other while keeping the paper's naming conventions
readable.

Two allocation modes exist:

* :meth:`NameAllocator.fresh` — every call yields a new unique name
  (``base``, ``base_2``, ``base_3``, ...);
* :meth:`NameAllocator.fixed` — the first call resolves ``base``
  (uniquifying it against user names if needed) and every later call
  for the same ``base`` returns the *same* resolved name.  This is how
  conventional derived names (``MST_send_b1_B1``, ``b1_req_B1``) are
  routed through the allocator: several refinement procedures can
  independently derive the same conventional name and agree on its
  resolution, yet a user specification that already uses the name can
  never be shadowed.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.spec.specification import Specification

__all__ = ["NameAllocator", "NamePool"]


class NameAllocator:
    """Allocates unique identifiers against a taken-set."""

    def __init__(self, taken: Iterable[str] = ()):
        self._taken: Set[str] = set(taken)
        #: base -> resolved name handed out by :meth:`fixed`
        self._fixed: Dict[str, str] = {}

    @classmethod
    def for_specification(cls, spec: Specification) -> "NameAllocator":
        """Seed with every name visible anywhere in ``spec``."""
        from repro.spec.stmt import For
        from repro.spec.types import EnumType
        from repro.spec.visitor import walk_statements

        taken: Set[str] = set()
        taken.update(b.name for b in spec.behaviors())
        taken.update(v.name for v in spec.variables)
        taken.update(spec.subprograms)
        bodies = []
        for behavior, decl in spec.all_declared_variables():
            taken.add(decl.name)
            if isinstance(decl.dtype, EnumType):
                taken.add(decl.dtype.name)
        for behavior in spec.behaviors():
            if behavior.is_leaf:
                bodies.append(behavior.stmt_body)
        for sub in spec.subprograms.values():
            taken.update(p.name for p in sub.params)
            taken.update(d.name for d in sub.decls)
            bodies.append(sub.stmt_body)
        # loop variables are implicitly declared scope names too
        for body in bodies:
            for stmt in walk_statements(body):
                if isinstance(stmt, For):
                    taken.add(stmt.variable)
        return cls(taken)

    def fresh(self, base: str) -> str:
        """``base`` if free, else ``base_2``, ``base_3``, ..."""
        if base not in self._taken:
            self._taken.add(base)
            return base
        counter = 2
        while f"{base}_{counter}" in self._taken:
            counter += 1
        name = f"{base}_{counter}"
        self._taken.add(name)
        return name

    def fixed(self, base: str) -> str:
        """The stable resolution of a conventional derived name.

        The first caller allocates (uniquifying against the taken-set);
        every subsequent call with the same ``base`` returns the same
        resolved name, so independent refinement procedures deriving
        the same conventional name always agree.
        """
        resolved = self._fixed.get(base)
        if resolved is None:
            resolved = self.fresh(base)
            self._fixed[base] = resolved
        return resolved

    def reserve(self, name: str) -> None:
        """Mark an externally chosen name as taken."""
        self._taken.add(name)

    def is_taken(self, name: str) -> bool:
        return name in self._taken


#: Backward-compatible alias (the pre-allocator name).
NamePool = NameAllocator
