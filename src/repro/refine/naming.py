"""Fresh-name generation for refinement-inserted objects.

Refinement introduces many named objects (``B_CTRL``, ``B_NEW``,
``B_start``/``B_done`` signals, ``tmp`` variables, memory/arbiter/
interface behaviors).  A :class:`NamePool` guarantees they never
collide with user names or each other while keeping the paper's
naming conventions readable.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.spec.specification import Specification

__all__ = ["NamePool"]


class NamePool:
    """Allocates unique identifiers against a taken-set."""

    def __init__(self, taken: Iterable[str] = ()):
        self._taken: Set[str] = set(taken)

    @classmethod
    def for_specification(cls, spec: Specification) -> "NamePool":
        """Seed with every name visible anywhere in ``spec``."""
        taken: Set[str] = set()
        taken.update(b.name for b in spec.behaviors())
        taken.update(v.name for v in spec.variables)
        taken.update(spec.subprograms)
        for _, decl in spec.all_declared_variables():
            taken.add(decl.name)
        for sub in spec.subprograms.values():
            taken.update(p.name for p in sub.params)
            taken.update(d.name for d in sub.decls)
        return cls(taken)

    def fresh(self, base: str) -> str:
        """``base`` if free, else ``base_2``, ``base_3``, ..."""
        if base not in self._taken:
            self._taken.add(base)
            return base
        counter = 2
        while f"{base}_{counter}" in self._taken:
            counter += 1
        name = f"{base}_{counter}"
        self._taken.add(name)
        return name

    def reserve(self, name: str) -> None:
        """Mark an externally chosen name as taken."""
        self._taken.add(name)

    def is_taken(self, name: str) -> bool:
        return name in self._taken
