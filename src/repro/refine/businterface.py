"""Bus interface insertion (paper §4.3, Figure 8) — Model4's message
passing.

Each component with an interface bus gets up to two daemon leaves:

* ``BI_<comp>_out`` — the outbound half: slave on the component's
  interface bus for *non-resident* addresses (a behavior asking for a
  variable stored in another partition's local memory), master on the
  interchange bus.  It runs under the originating behavior's
  interchange lock, so it drives the interchange unarbitrated.
* ``BI_<comp>_in`` — the inbound half: slave on the interchange for the
  component's *resident* address range, arbitrated master on the
  component's interface bus, where the local memory's second port
  answers.

This is the paper's Figure 8 chain — ``B1 -> Bus1 -> Bus_interface_1 ->
Bus2 -> Bus_interface_2 -> Bus3 -> LM2`` — with Bus1 and Bus3 realised
as the two components' interface buses and Bus2 as the interchange.

Write forwarding completes *before* the upstream handshake finishes
(the data is sampled off the still-held bus), so the originator's lock
release strictly follows the last interchange transfer: no two remote
transactions ever overlap on the interchange.

With a recovery-capable protocol (timeout-and-retry), each interface
additionally propagates the downstream bus's error line onto its own
bus after every forwarded transaction, so an unrecoverable fault deep
in the Figure 8 chain surfaces on the bus the originating behavior can
observe.
"""

from __future__ import annotations

from typing import List

from repro.arch.protocols import bus_error_name, bus_signal_names
from repro.errors import RefinementError
from repro.graph.analysis import VariableClassification
from repro.models.plan import BusRole, ModelPlan
from repro.obs.provenance import stamp
from repro.refine.emitter import ProtocolEmitter
from repro.refine.naming import NamePool
from repro.spec.behavior import LeafBehavior
from repro.spec.builder import assign, if_, loop_forever, sassign, wait_until
from repro.spec.expr import Expr, var
from repro.spec.types import int_type
from repro.spec.variable import variable as make_variable

__all__ = ["build_bus_interfaces"]


def build_bus_interfaces(
    plan: ModelPlan,
    emitter: ProtocolEmitter,
    pool: NamePool,
) -> List[LeafBehavior]:
    """All bus-interface daemons the plan's traffic requires."""
    interchanges = plan.buses_with_role(BusRole.INTERCHANGE)
    if not interchanges:
        return []
    interchange = interchanges[0]
    classification = plan.classification
    out: List[LeafBehavior] = []

    for component in plan.partition.components():
        if not plan.has_bus(BusRole.IFACE, component=component):
            continue
        iface = plan.bus_for(BusRole.IFACE, component=component)
        if _needs_outbound(classification, emitter, component):
            out.append(
                _outbound(plan, emitter, pool, component, iface.name,
                          interchange.name)
            )
        if _needs_inbound(classification, emitter, component):
            out.append(
                _inbound(plan, emitter, pool, component, iface.name,
                         interchange.name)
            )
    return out


def _needs_outbound(
    cls: VariableClassification, emitter: ProtocolEmitter, component: str
) -> bool:
    """Some behavior on ``component`` accesses a variable homed
    elsewhere.  The emitter's record of actually-issued remote calls is
    authoritative (it covers fetches refinement itself placed, e.g.
    transition-condition reads on the composite's home side); the
    classification provides the static view."""
    if component in emitter.remote_sources:
        return True
    return any(
        cls.home[variable] != component and component in accessors
        for variable, accessors in cls.accessor_components.items()
    )


def _needs_inbound(
    cls: VariableClassification, emitter: ProtocolEmitter, component: str
) -> bool:
    """Some other component accesses a variable homed here."""
    if component in emitter.remote_targets:
        return True
    return any(
        cls.home[variable] == component and bool(accessors - {component})
        for variable, accessors in cls.accessor_components.items()
    )


def _error_propagation(
    emitter: ProtocolEmitter, downstream: str, own_bus: str
) -> list:
    """After a forwarded transaction: copy the downstream bus's error
    line onto this interface's own bus.  Empty without a
    recovery-capable protocol (no error lines exist then)."""
    if getattr(emitter.protocol, "recovery", None) is None:
        return []
    return [
        if_(
            var(bus_error_name(downstream)).eq(1),
            [sassign(var(bus_error_name(own_bus)), 1)],
        )
    ]


def _resident_span(plan: ModelPlan, component: str):
    lo, hi = plan.component_address_span(component)
    if lo > hi:
        raise RefinementError(
            f"component {component!r} serves remote requests but has no "
            "resident variables"
        )
    return lo, hi


def _outbound(
    plan: ModelPlan,
    emitter: ProtocolEmitter,
    pool: NamePool,
    component: str,
    iface: str,
    interchange: str,
) -> LeafBehavior:
    ifc = bus_signal_names(iface)
    lo, hi = plan.component_address_span(component)
    width = max(2, plan.buses[iface].data_width)
    name = pool.fresh(f"BI_{component}_out")
    tmp = pool.fresh(f"{name}_tmp")
    scratch = pool.fresh(f"{name}_scratch")

    addr = var(ifc["addr"])
    if lo > hi:  # no resident variables: every address is remote
        remote: Expr = var(ifc["start"]).eq(1)
    else:
        remote = var(ifc["start"]).eq(1).and_((addr < lo).or_(addr > hi))

    read_path = [
        emitter.core_master_call(interchange, addr, var(tmp), send=False),
        emitter.slave_call(iface, var(tmp), send=True),
    ]
    write_path = [
        assign(tmp, var(ifc["data"])),  # sample the still-held write data
        emitter.core_master_call(interchange, addr, var(tmp), send=True),
        emitter.slave_call(iface, var(scratch), send=False),
    ]
    loop_body = [
        wait_until(remote),
        if_(var(ifc["rd"]).eq(1), read_path, write_path),
    ]
    loop_body.extend(_error_propagation(emitter, interchange, iface))
    behavior = LeafBehavior(
        name,
        [loop_forever(loop_body)],
        decls=[
            stamp(
                make_variable(tmp, int_type(width), doc="forwarded word"),
                "businterface", "forward-tmp", source=component,
            ),
            stamp(
                make_variable(scratch, int_type(width), doc="handshake discard"),
                "businterface", "handshake-scratch", source=component,
            ),
        ],
        doc=(
            f"outbound bus interface of {component}: forwards non-resident "
            f"accesses from {iface} onto {interchange} (Figure 8)"
        ),
    )
    behavior.daemon = True
    return stamp(
        behavior,
        "businterface",
        "outbound-interface",
        source=component,
        detail=f"{iface} -> {interchange} forwarding (Figure 8)",
    )


def _inbound(
    plan: ModelPlan,
    emitter: ProtocolEmitter,
    pool: NamePool,
    component: str,
    iface: str,
    interchange: str,
) -> LeafBehavior:
    x = bus_signal_names(interchange)
    lo, hi = _resident_span(plan, component)
    width = max(2, plan.buses[iface].data_width)
    name = pool.fresh(f"BI_{component}_in")
    tmp = pool.fresh(f"{name}_tmp")
    scratch = pool.fresh(f"{name}_scratch")

    addr = var(x["addr"])
    mine = var(x["start"]).eq(1).and_((addr >= lo).and_(addr <= hi))

    read_path = [
        emitter.arbitrated_master_call(iface, name, addr, var(tmp), send=False),
        emitter.slave_call(interchange, var(tmp), send=True),
    ]
    write_path = [
        assign(tmp, var(x["data"])),
        emitter.arbitrated_master_call(iface, name, addr, var(tmp), send=True),
        emitter.slave_call(interchange, var(scratch), send=False),
    ]
    loop_body = [
        wait_until(mine),
        if_(var(x["rd"]).eq(1), read_path, write_path),
    ]
    loop_body.extend(_error_propagation(emitter, iface, interchange))
    behavior = LeafBehavior(
        name,
        [loop_forever(loop_body)],
        decls=[
            stamp(
                make_variable(tmp, int_type(width), doc="forwarded word"),
                "businterface", "forward-tmp", source=component,
            ),
            stamp(
                make_variable(scratch, int_type(width), doc="handshake discard"),
                "businterface", "handshake-scratch", source=component,
            ),
        ],
        doc=(
            f"inbound bus interface of {component}: serves resident "
            f"addresses {lo}..{hi} from {interchange} via {iface}"
        ),
    )
    behavior.daemon = True
    return stamp(
        behavior,
        "businterface",
        "inbound-interface",
        source=component,
        detail=f"{interchange} -> {iface} serving (Figure 8)",
    )
