"""VCD (Value Change Dump) waveform export and a minimal parser.

The simulation kernel applies signal updates in delta cycles; with an
observer attached (``Kernel(observer=...)`` /
``Simulator.run(observer=...)``) every applied *change* is reported as
``(time, name, value)``.  :class:`VCDWriter` collects that stream and
renders an IEEE-1364-style VCD file that GTKWave opens directly — the
waveform-level view the SpecC case studies use to debug codesign
results.

Value encoding is chosen per signal from the values actually observed:

* booleans and 0/1 integers — 1-bit ``wire``, scalar dumps;
* non-negative integers — ``wire`` of the minimal observed width,
  ``b<binary>`` dumps;
* integers with negative values — 32-bit ``integer``, two's-complement
  ``b<binary>`` dumps;
* anything else (enum literals, tuples) — ``string`` vars with ``s``
  dumps.

:func:`parse_vcd` is the matching reader used by the round-trip tests
and the CI smoke job; it decodes exactly what the writer emits (plus
the common scalar/vector/string subset of hand-written VCD).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError

__all__ = ["VCDWriter", "VCDSignal", "VCDData", "parse_vcd"]

#: Identifier-code alphabet of the VCD format (printable ASCII).
_ID_FIRST, _ID_LAST = 33, 126  # '!' .. '~'

_TIMESCALES = {
    "1s": 1.0,
    "1ms": 1e-3,
    "1us": 1e-6,
    "1ns": 1e-9,
    "1ps": 1e-12,
    "1fs": 1e-15,
}

_INTEGER_WIDTH = 32


def _id_code(position: int) -> str:
    """The ``position``-th shortest identifier code ('!', '"', ...)."""
    span = _ID_LAST - _ID_FIRST + 1
    out = []
    position += 1
    while position > 0:
        position -= 1
        out.append(chr(_ID_FIRST + position % span))
        position //= span
    return "".join(reversed(out))


class VCDWriter:
    """Collects a signal-change stream and renders it as VCD text.

    Acts as the kernel observer: :meth:`on_register` receives every
    signal declaration (with its time-zero value), :meth:`on_change`
    every applied change.  Call :meth:`dump` / :meth:`write` after the
    run.  Times are converted to integer timestamps in ``timescale``
    units (default ``1ns``, matching the simulator's default time
    unit).
    """

    def __init__(self, timescale: str = "1ns", module: str = "repro"):
        if timescale not in _TIMESCALES:
            raise ReproError(
                f"unsupported timescale {timescale!r}; "
                f"choose from {sorted(_TIMESCALES)}"
            )
        self.timescale = timescale
        self.module = module
        self._unit = _TIMESCALES[timescale]
        #: signal name -> initial value, in registration order
        self._initial: Dict[str, object] = {}
        #: (tick, name, value) in observation order
        self.changes: List[Tuple[int, str, object]] = []

    # -- kernel observer interface ------------------------------------------

    def on_register(self, name: str, initial) -> None:
        self._initial[name] = initial

    def on_change(self, time: float, name: str, value) -> None:
        self.changes.append((int(round(time / self._unit)), name, value))

    # -- rendering ----------------------------------------------------------

    def _kind_of(self, name: str) -> Tuple[str, int]:
        """(var type, width) for one signal, from its observed values."""
        values = [self._initial.get(name)]
        values.extend(v for _, n, v in self.changes if n == name)
        ints: List[int] = []
        for value in values:
            if isinstance(value, bool):
                ints.append(int(value))
            elif isinstance(value, int):
                ints.append(value)
            else:
                return "string", 1
        if any(v < 0 for v in ints):
            return "integer", _INTEGER_WIDTH
        peak = max(ints) if ints else 0
        width = max(1, peak.bit_length())
        return "wire", width

    @staticmethod
    def _encode(value, var_type: str, width: int, code: str) -> str:
        if var_type == "string":
            text = str(value).replace(" ", "_")
            return f"s{text} {code}"
        number = int(value)
        if var_type == "integer" and number < 0:
            number &= (1 << width) - 1
        if width == 1 and var_type == "wire":
            return f"{number}{code}"
        return f"b{number:b} {code}"

    def dump(self) -> str:
        """The complete VCD document as text."""
        codes = {name: _id_code(i) for i, name in enumerate(self._initial)}
        kinds = {name: self._kind_of(name) for name in self._initial}
        lines = [
            "$version repro waveform export $end",
            f"$timescale {self.timescale[1:]} $end",
            f"$scope module {self.module} $end",
        ]
        for name, code in codes.items():
            var_type, width = kinds[name]
            lines.append(f"$var {var_type} {width} {code} {name} $end")
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        lines.append("$dumpvars")
        for name, code in codes.items():
            var_type, width = kinds[name]
            lines.append(self._encode(self._initial[name], var_type, width, code))
        lines.append("$end")
        current_tick: Optional[int] = None
        for tick, name, value in self.changes:
            if name not in codes:
                continue  # registered after the run started; not declared
            if tick != current_tick:
                lines.append(f"#{tick}")
                current_tick = tick
            var_type, width = kinds[name]
            lines.append(self._encode(value, var_type, width, codes[name]))
        return "\n".join(lines) + "\n"

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.dump())


# -- parsing -----------------------------------------------------------------


@dataclass
class VCDSignal:
    """One declared signal and its decoded change history."""

    name: str
    var_type: str
    width: int
    code: str
    #: initial value from the ``$dumpvars`` block
    initial: object = None
    #: (tick, decoded value) in file order
    changes: List[Tuple[int, object]] = field(default_factory=list)

    def edges(self) -> List[Tuple[int, object]]:
        """The change list (without the initial value)."""
        return list(self.changes)


@dataclass
class VCDData:
    """A parsed VCD document."""

    timescale: str
    signals: Dict[str, VCDSignal] = field(default_factory=dict)

    def changes_of(self, name: str) -> List[Tuple[int, object]]:
        if name not in self.signals:
            raise ReproError(f"VCD declares no signal {name!r}")
        return self.signals[name].edges()


def _decode(token: str, signal: VCDSignal):
    if token[0] in "01xzXZ":
        return 0 if token[0] in "xzXZ" else int(token[0])
    if token[0] in "bB":
        bits = token[1:].replace("x", "0").replace("z", "0")
        value = int(bits, 2) if bits else 0
        if (
            signal.var_type == "integer"
            and len(bits) == signal.width
            and bits[0] == "1"
        ):
            value -= 1 << signal.width
        return value
    if token[0] in "sS":
        return token[1:]
    if token[0] in "rR":
        return float(token[1:])
    raise ReproError(f"cannot decode VCD value {token!r}")


def parse_vcd(text: str) -> VCDData:
    """Parse VCD text into signal change histories.

    Covers the subset :class:`VCDWriter` emits — ``$var`` declarations,
    ``$dumpvars``, scalar/vector/string/real value changes — which is
    also the common core of tool-written VCD files.
    """
    data = VCDData(timescale="1ns")
    by_code: Dict[str, VCDSignal] = {}
    tick = 0
    in_header = True
    tokens = text.split("\n")
    for raw in tokens:
        line = raw.strip()
        if not line:
            continue
        if in_header:
            if line.startswith("$timescale"):
                parts = line.replace("$end", "").split()
                unit = "".join(parts[1:3]) if len(parts) > 1 else "1ns"
                data.timescale = unit if unit.startswith("1") else f"1{unit}"
                continue
            if line.startswith("$var"):
                parts = line.split()
                if len(parts) < 5:
                    raise ReproError(f"malformed $var line: {line!r}")
                var_type, width, code, name = (
                    parts[1],
                    int(parts[2]),
                    parts[3],
                    parts[4],
                )
                signal = VCDSignal(name, var_type, width, code)
                data.signals[name] = signal
                by_code[code] = signal
                continue
            if line.startswith("$enddefinitions"):
                in_header = False
            continue
        if line.startswith("#"):
            tick = int(line[1:])
            continue
        if line.startswith("$dumpvars"):
            continue
        if line.startswith("$"):
            continue  # $end, $comment ... blocks the writer emits
        # a value change: scalar "0!" or vector/string "b101 !" / "sX !"
        if line[0] in "bBsSrR":
            value_token, _, code = line.partition(" ")
            code = code.strip()
        else:
            value_token, code = line[0], line[1:].strip()
        signal = by_code.get(code)
        if signal is None:
            raise ReproError(f"value change for undeclared code {code!r}")
        value = _decode(value_token, signal)
        if signal.initial is None and tick == 0 and not signal.changes:
            signal.initial = value
        else:
            signal.changes.append((tick, value))
    return data
