"""``repro explain`` — resolve refined source lines to refinement steps.

Combines the pretty-printer's line map
(:func:`repro.lang.printer.print_specification_with_map`) with the
provenance stamps the refinement passes leave on the IR
(:mod:`repro.obs.provenance`): for any line of the printed refined
specification, :class:`SpecExplainer` answers *which refinement
procedure and rule produced it*, falling back from the line's own node
to its enclosing behavior/subprogram, and finally to a synthesized
``source`` record for constructs inherited unchanged from the original
specification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.lang.printer import LineRecord, print_specification_with_map
from repro.obs.provenance import Provenance, _source_names, provenance_of
from repro.spec.behavior import Behavior, Transition
from repro.spec.specification import Specification
from repro.spec.stmt import Stmt
from repro.spec.subprogram import Subprogram
from repro.spec.types import EnumType
from repro.spec.variable import Variable

__all__ = ["Explanation", "SpecExplainer"]


@dataclass
class Explanation:
    """Provenance resolution of one refined source line."""

    line_no: int
    text: str
    kind: str
    node: str
    owner: str
    provenance: Optional[Provenance]

    def describe(self) -> str:
        lines = [f"line {self.line_no}: {self.text.strip()}"]
        lines.append(f"  node:  {self.node}" + (f" (in {self.owner})" if self.owner else ""))
        if self.provenance is None:
            lines.append("  origin: UNRESOLVED")
        else:
            lines.append(f"  origin: {self.provenance.describe()}")
        return "\n".join(lines)


def _describe_node(node) -> str:
    if node is None:
        return "(blank)"
    if isinstance(node, Behavior):
        return f"behavior {node.name}"
    if isinstance(node, Variable):
        keyword = "signal" if node.is_signal else "variable"
        return f"{keyword} {node.name}"
    if isinstance(node, Subprogram):
        return f"procedure {node.name}"
    if isinstance(node, Stmt):
        return f"{type(node).__name__} statement"
    if isinstance(node, Transition):
        return f"transition {node!r}"
    if isinstance(node, Specification):
        return f"specification {node.name}"
    if isinstance(node, EnumType):
        return f"type {node.name}"
    return type(node).__name__


class SpecExplainer:
    """Line-by-line provenance of one refined specification."""

    def __init__(self, refined: Specification, original: Specification):
        self.refined = refined
        self.original = original
        self.text, self.line_map = print_specification_with_map(refined)
        self._known = _source_names(original)

    def __len__(self) -> int:
        return len(self.line_map)

    # -- resolution ---------------------------------------------------------

    def _name_in_source(self, node) -> Optional[str]:
        if isinstance(node, Behavior) and node.name in self._known["behavior"]:
            return node.name
        if isinstance(node, Variable) and node.name in self._known["variable"]:
            return node.name
        if isinstance(node, Subprogram) and node.name in self._known["subprogram"]:
            return node.name
        return None

    def _resolve(self, record: LineRecord) -> Optional[Provenance]:
        for candidate in (record.node, record.owner):
            if candidate is None:
                continue
            stamped = provenance_of(candidate)
            if stamped is not None:
                return stamped
            name = self._name_in_source(candidate)
            if name is not None:
                return Provenance("source", "unchanged", name)
        if record.kind in ("blank", "spec"):
            # layout and the specification frame itself: the refiner's
            # rendering, rooted at the original specification
            return Provenance("refiner", "layout", self.original.name)
        if record.kind == "type":
            # refinement introduces no enum types
            return Provenance("source", "type", getattr(record.node, "name", ""))
        return None

    def explain(self, line_no: int) -> Explanation:
        """Resolve one (1-based) line of the printed refined source."""
        record = self.line_map.record(line_no)
        return Explanation(
            line_no=record.line_no,
            text=record.text,
            kind=record.kind,
            node=_describe_node(record.node),
            owner=getattr(record.owner, "name", ""),
            provenance=self._resolve(record),
        )

    def explain_all(self) -> List[Explanation]:
        return [self.explain(i + 1) for i in range(len(self.line_map))]

    def unresolved(self) -> List[Explanation]:
        """Lines with no provenance answer (empty = completeness)."""
        return [e for e in self.explain_all() if e.provenance is None]

    def summary(self) -> str:
        """Per-procedure line counts over the whole refined source."""
        counts = {}
        for explanation in self.explain_all():
            key = (
                explanation.provenance.procedure
                if explanation.provenance is not None
                else "UNRESOLVED"
            )
            counts[key] = counts.get(key, 0) + 1
        total = len(self.line_map)
        lines = [f"{self.refined.name}: {total} lines"]
        for procedure, count in sorted(counts.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {procedure:<14} {count:5d}  ({100.0 * count / total:.1f}%)")
        return "\n".join(lines)
