"""Cross-cutting observability: pipeline spans, refinement provenance,
waveform export, and the unified telemetry layer.

Pillars (ROADMAP's observability direction, applied end-to-end):

* :mod:`repro.obs.trace` — hierarchical :class:`SpanTracer` threaded
  through parse → validate → partition → refine (one span per
  refinement procedure) → estimate → export → simulate, exported as
  Chrome trace-event JSON (``repro trace``);
* :mod:`repro.obs.metrics` — process-wide typed metric registry
  (Counter/Gauge/Histogram with label sets) rendered in Prometheus
  text format on the daemon's ``GET /metrics``, with an in-repo
  exposition parser/validator;
* :mod:`repro.obs.events` — structured JSONL event journal where
  every record carries a request/run correlation ID, plus the flight
  recorder dumped on worker crash / deadline / circuit-open;
* :mod:`repro.obs.stats` — shared percentile/EWMA summary maths used
  by loadgen, the server and histogram snapshots;
* :mod:`repro.obs.provenance` / :mod:`repro.obs.explain` — every
  refinement pass stamps the IR nodes it creates; combined with the
  pretty-printer's line map, ``repro explain`` resolves any line of
  refined source to the step that produced it;
* :mod:`repro.obs.vcd` — the kernel's signal-change stream as a
  GTKWave-compatible VCD file (``repro simulate --vcd``), with a
  minimal parser for round-trip testing.
"""

from repro.obs.events import (
    EventJournal,
    FlightRecorder,
    NULL_JOURNAL,
    bind_request_id,
    current_request_id,
    new_request_id,
    read_journal,
    validate_journal,
)
from repro.obs.explain import Explanation, SpecExplainer
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    parse_exposition,
    validate_exposition,
)
from repro.obs.stats import Ewma, percentile, summarize
from repro.obs.provenance import (
    Provenance,
    ProvenanceReport,
    copy_provenance,
    provenance_of,
    provenance_report,
    stamp,
)
from repro.obs.trace import (
    NULL_TRACER,
    Span,
    SpanTracer,
    validate_chrome_trace,
)
from repro.obs.vcd import VCDData, VCDSignal, VCDWriter, parse_vcd

__all__ = [
    "Span",
    "SpanTracer",
    "NULL_TRACER",
    "validate_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "parse_exposition",
    "validate_exposition",
    "EventJournal",
    "FlightRecorder",
    "NULL_JOURNAL",
    "bind_request_id",
    "current_request_id",
    "new_request_id",
    "read_journal",
    "validate_journal",
    "Ewma",
    "percentile",
    "summarize",
    "Provenance",
    "ProvenanceReport",
    "stamp",
    "provenance_of",
    "copy_provenance",
    "provenance_report",
    "Explanation",
    "SpecExplainer",
    "VCDWriter",
    "VCDSignal",
    "VCDData",
    "parse_vcd",
]
