"""Cross-cutting observability: pipeline spans, refinement provenance,
and waveform export.

Three pillars (ROADMAP's observability direction, applied end-to-end):

* :mod:`repro.obs.trace` — hierarchical :class:`SpanTracer` threaded
  through parse → validate → partition → refine (one span per
  refinement procedure) → estimate → export → simulate, exported as
  Chrome trace-event JSON (``repro trace``);
* :mod:`repro.obs.provenance` / :mod:`repro.obs.explain` — every
  refinement pass stamps the IR nodes it creates; combined with the
  pretty-printer's line map, ``repro explain`` resolves any line of
  refined source to the step that produced it;
* :mod:`repro.obs.vcd` — the kernel's signal-change stream as a
  GTKWave-compatible VCD file (``repro simulate --vcd``), with a
  minimal parser for round-trip testing.
"""

from repro.obs.explain import Explanation, SpecExplainer
from repro.obs.provenance import (
    Provenance,
    ProvenanceReport,
    copy_provenance,
    provenance_of,
    provenance_report,
    stamp,
)
from repro.obs.trace import (
    NULL_TRACER,
    Span,
    SpanTracer,
    validate_chrome_trace,
)
from repro.obs.vcd import VCDData, VCDSignal, VCDWriter, parse_vcd

__all__ = [
    "Span",
    "SpanTracer",
    "NULL_TRACER",
    "validate_chrome_trace",
    "Provenance",
    "ProvenanceReport",
    "stamp",
    "provenance_of",
    "copy_provenance",
    "provenance_report",
    "Explanation",
    "SpecExplainer",
    "VCDWriter",
    "VCDSignal",
    "VCDData",
    "parse_vcd",
]
