"""A process-wide, thread-safe metrics registry with Prometheus
text-format exposition.

Three typed instruments — :class:`Counter`, :class:`Gauge`,
:class:`Histogram` — are created through a :class:`MetricsRegistry`
and identified by a metric name plus an optional tuple of label
names; ``.labels(...)`` materialises one time series per label-value
combination.  Histogram bucket boundaries are fixed at creation
(:data:`DEFAULT_LATENCY_BUCKETS` by default) so renderings are
deterministic across runs and machines.

The registry follows the ``NULL_TRACER`` discipline from
:mod:`repro.obs.trace`: a disabled registry (``enabled=False``, or the
shared :data:`NULL_REGISTRY`) hands out shared no-op instruments, so
instrumented call sites cost a method call on a singleton and nothing
else — no allocation, no locking, no branches at the call site.

Exposition is the Prometheus text format (``# HELP`` / ``# TYPE``
comments, escaped label values, cumulative ``_bucket``/``_sum``/
``_count`` histogram series).  :func:`parse_exposition` and
:func:`validate_exposition` are the in-repo consumers — the CI smoke
scrapes the daemon's ``GET /metrics`` and validates it the same way
:func:`repro.obs.trace.validate_chrome_trace` validates trace exports,
keeping the contract testable without any external scraper.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "parse_exposition",
    "validate_exposition",
]

#: Deterministic histogram boundaries (seconds) spanning microsecond
#: cache hits to multi-second refinement jobs.  Fixed here — never
#: derived from observed data — so two deployments' histograms are
#: always bucket-compatible.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

_METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")


def _fmt(value: float) -> str:
    """Render a sample value (integers without a trailing ``.0``)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class _Family:
    """One named metric and all of its label-set children.

    Subclasses provide ``kind`` and ``_make_child``; the family lock
    guards child creation, each child guards its own values.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str]):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, *values, **by_name):
        """The child series for one label-value combination."""
        if by_name:
            if values:
                raise ValueError(
                    f"{self.name}: pass label values positionally or by "
                    "name, not both"
                )
            if set(by_name) != set(self.labelnames):
                raise ValueError(
                    f"{self.name}: expected labels {self.labelnames}, "
                    f"got {tuple(sorted(by_name))}"
                )
            values = tuple(str(by_name[name]) for name in self.labelnames)
        else:
            values = tuple(str(value) for value in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name}: expected {len(self.labelnames)} label "
                f"value(s) {self.labelnames}, got {len(values)}"
            )
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = self._children[values] = self._make_child()
        return child

    def _default(self):
        if self.labelnames:
            raise ValueError(
                f"{self.name} carries labels {self.labelnames}; "
                "use .labels(...)"
            )
        return self.labels()

    def _sorted_children(self):
        with self._lock:
            return sorted(self._children.items())

    def _make_child(self):  # pragma: no cover - abstract
        raise NotImplementedError


class _Value:
    """A single numeric series (counter or gauge child)."""

    __slots__ = ("_lock", "value")

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


class _CounterValue(_Value):
    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; inc({amount})")
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        raise ValueError("counters only go up; use a Gauge")

    def set(self, value: float) -> None:
        raise ValueError("counters only go up; use a Gauge")


class Counter(_Family):
    """Monotonically increasing count (requests, jobs, faults)."""

    kind = "counter"

    def _make_child(self) -> _CounterValue:
        return _CounterValue()

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    @property
    def value(self) -> float:
        return self._default().value

    def render_into(self, lines: List[str]) -> int:
        count = 0
        for values, child in self._sorted_children():
            labels = _render_labels(self.labelnames, values)
            lines.append(f"{self.name}{labels} {_fmt(child.value)}")
            count += 1
        return count

    def snapshot_series(self) -> List[Dict[str, object]]:
        return [
            {
                "labels": dict(zip(self.labelnames, values)),
                "value": child.value,
            }
            for values, child in self._sorted_children()
        ]


class Gauge(Counter):
    """A value that goes up and down (queue depth, in-flight)."""

    kind = "gauge"

    def _make_child(self) -> _Value:
        return _Value()

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def set(self, value: float) -> None:
        self._default().set(value)


class _HistogramValue:
    """One histogram series: per-bucket counts plus sum and count."""

    __slots__ = ("_lock", "_bounds", "buckets", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...]):
        self._lock = threading.Lock()
        self._bounds = bounds
        #: non-cumulative counts; index ``len(bounds)`` is the overflow
        self.buckets = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self._bounds, value)
        with self._lock:
            self.buckets[index] += 1
            self.sum += value
            self.count += 1

    def cumulative(self) -> List[int]:
        with self._lock:
            counts = list(self.buckets)
        total = 0
        out = []
        for count in counts:
            total += count
            out.append(total)
        return out


class Histogram(_Family):
    """Distribution with fixed bucket boundaries (latencies)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"{name}: at least one bucket boundary needed")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"{name}: bucket boundaries must be strictly increasing"
            )
        self.buckets = bounds

    def _make_child(self) -> _HistogramValue:
        return _HistogramValue(self.buckets)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def render_into(self, lines: List[str]) -> int:
        count = 0
        for values, child in self._sorted_children():
            cumulative = child.cumulative()
            for bound, running in zip(self.buckets, cumulative):
                labels = _render_labels(
                    self.labelnames + ("le",), values + (_fmt(bound),)
                )
                lines.append(f"{self.name}_bucket{labels} {running}")
            labels = _render_labels(
                self.labelnames + ("le",), values + ("+Inf",)
            )
            lines.append(f"{self.name}_bucket{labels} {cumulative[-1]}")
            plain = _render_labels(self.labelnames, values)
            lines.append(f"{self.name}_sum{plain} {_fmt(child.sum)}")
            lines.append(f"{self.name}_count{plain} {child.count}")
            count += len(cumulative) + 3
        return count

    def snapshot_series(self) -> List[Dict[str, object]]:
        series = []
        for values, child in self._sorted_children():
            cumulative = child.cumulative()
            buckets = {
                _fmt(bound): running
                for bound, running in zip(self.buckets, cumulative)
            }
            buckets["+Inf"] = cumulative[-1]
            series.append(
                {
                    "labels": dict(zip(self.labelnames, values)),
                    "count": child.count,
                    "sum": child.sum,
                    "buckets": buckets,
                }
            )
        return series


class _NullMetric:
    """Shared no-op instrument handed out by a disabled registry."""

    __slots__ = ()

    def labels(self, *values, **by_name) -> "_NullMetric":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


_NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """Thread-safe get-or-create registry of metric families.

    ``counter`` / ``gauge`` / ``histogram`` return the existing family
    when one with the same name is already registered — re-registering
    with a different type, label set or buckets is a hard error, so
    two subsystems can safely share one registry.  With
    ``enabled=False`` every accessor returns the shared no-op
    instrument (see :data:`NULL_REGISTRY`).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # -- instrument creation -------------------------------------------------

    def _get_or_create(self, cls, name, help, labelnames, **extra):
        if not _METRIC_NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_NAME_RE.match(label) or label == "le":
                raise ValueError(
                    f"{name}: invalid label name {label!r}"
                )
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = cls(name, help, labelnames, **extra)
                self._families[name] = family
                return family
        if not isinstance(family, cls) or type(family) is not cls:
            raise ValueError(
                f"{name} already registered as {family.kind}"
            )
        if family.labelnames != tuple(labelnames):
            raise ValueError(
                f"{name} already registered with labels "
                f"{family.labelnames}, not {tuple(labelnames)}"
            )
        if extra.get("buckets") is not None and tuple(
            float(b) for b in extra["buckets"]
        ) != getattr(family, "buckets", None):
            raise ValueError(f"{name} already registered with other buckets")
        return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        if not self.enabled:
            return _NULL_METRIC  # type: ignore[return-value]
        return self._get_or_create(Counter, name, help, tuple(labelnames))

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        if not self.enabled:
            return _NULL_METRIC  # type: ignore[return-value]
        return self._get_or_create(Gauge, name, help, tuple(labelnames))

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        if not self.enabled:
            return _NULL_METRIC  # type: ignore[return-value]
        return self._get_or_create(
            Histogram, name, help, tuple(labelnames), buckets=buckets
        )

    # -- export --------------------------------------------------------------

    def render(self) -> str:
        """The registry in Prometheus text exposition format."""
        if not self.enabled:
            return ""
        with self._lock:
            families = sorted(self._families.items())
        lines: List[str] = []
        for name, family in families:
            lines.append(f"# HELP {name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {name} {family.kind}")
            family.render_into(lines)
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly view (``/v1/stats`` and ``repro profile``)."""
        if not self.enabled:
            return {}
        with self._lock:
            families = sorted(self._families.items())
        return {
            name: {
                "type": family.kind,
                "help": family.help,
                "series": family.snapshot_series(),
            }
            for name, family in families
        }


#: The disabled registry: every instrument accessor returns one shared
#: no-op object, mirroring ``NULL_TRACER``.
NULL_REGISTRY = MetricsRegistry(enabled=False)


# -- exposition parsing ------------------------------------------------------

def _parse_label_block(line: str, start: int, where: str):
    """Parse ``{name="value",...}`` starting at ``line[start] == '{'``;
    returns ``(labels, position_after_closing_brace)``."""
    labels: Dict[str, str] = {}
    pos = start + 1
    try:
        while True:
            if line[pos] == "}":
                return labels, pos + 1
            match = re.match(r"[a-zA-Z_][a-zA-Z0-9_]*", line[pos:])
            if not match:
                raise ValueError(f"{where}: bad label name at column {pos}")
            name = match.group(0)
            pos += len(name)
            if line[pos] != "=" or line[pos + 1] != '"':
                raise ValueError(f'{where}: expected =" after {name!r}')
            pos += 2
            chars: List[str] = []
            while line[pos] != '"':
                ch = line[pos]
                if ch == "\\":
                    escape = line[pos + 1]
                    if escape == "n":
                        chars.append("\n")
                    elif escape in ('"', "\\"):
                        chars.append(escape)
                    else:
                        raise ValueError(
                            f"{where}: unknown escape \\{escape}"
                        )
                    pos += 2
                else:
                    chars.append(ch)
                    pos += 1
            labels[name] = "".join(chars)
            pos += 1
            if line[pos] == ",":
                pos += 1
            elif line[pos] != "}":
                raise ValueError(
                    f"{where}: expected , or }} at column {pos}"
                )
    except IndexError:
        raise ValueError(f"{where}: unterminated label block") from None


def parse_exposition(text: str) -> Dict[str, Dict[str, object]]:
    """Parse Prometheus text format into
    ``{family: {"type", "help", "samples": [(name, labels, value)]}}``.

    Histogram ``_bucket``/``_sum``/``_count`` samples are attributed
    to their base family.  Raises :class:`ValueError` on any line that
    is neither a comment, blank, nor a well-formed sample.
    """
    families: Dict[str, Dict[str, object]] = {}

    def family(name: str) -> Dict[str, object]:
        return families.setdefault(
            name, {"type": None, "help": None, "samples": []}
        )

    histogram_names = set()
    for number, line in enumerate(text.splitlines(), start=1):
        where = f"line {number}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                kind = parts[3] if len(parts) > 3 else ""
                if kind not in ("counter", "gauge", "histogram", "summary",
                                "untyped"):
                    raise ValueError(f"{where}: unknown TYPE {kind!r}")
                family(parts[2])["type"] = kind
                if kind == "histogram":
                    histogram_names.add(parts[2])
            elif len(parts) >= 3 and parts[1] == "HELP":
                family(parts[2])["help"] = parts[3] if len(parts) > 3 else ""
            continue
        match = re.match(r"([a-zA-Z_:][a-zA-Z0-9_:]*)", line)
        if not match:
            raise ValueError(f"{where}: bad sample name in {line!r}")
        sample_name = match.group(1)
        pos = len(sample_name)
        labels: Dict[str, str] = {}
        if pos < len(line) and line[pos] == "{":
            labels, pos = _parse_label_block(line, pos, where)
        value_text = line[pos:].strip()
        if not value_text:
            raise ValueError(f"{where}: sample {sample_name!r} has no value")
        value_token = value_text.split()[0]
        try:
            value = float(value_token)
        except ValueError:
            raise ValueError(
                f"{where}: bad sample value {value_token!r}"
            ) from None
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            candidate = sample_name[: -len(suffix)]
            if sample_name.endswith(suffix) and candidate in histogram_names:
                base = candidate
                break
        family(base)["samples"].append((sample_name, labels, value))
    return families


def validate_exposition(text: str) -> int:
    """Validate a ``GET /metrics`` body; returns the sample count.

    Checks, beyond line-level syntax (delegated to
    :func:`parse_exposition`): every sample belongs to a family with a
    declared ``# TYPE``; counter samples are finite and non-negative;
    histogram series have monotonically non-decreasing bucket counts,
    a ``+Inf`` bucket equal to ``_count``, and a ``_sum`` sample.
    Raises :class:`ValueError` with a precise message on violation.
    """
    families = parse_exposition(text)
    samples = 0
    for name, data in sorted(families.items()):
        kind = data["type"]
        if kind is None:
            raise ValueError(f"{name}: samples without a # TYPE line")
        samples += len(data["samples"])
        if kind == "counter":
            for sample_name, _, value in data["samples"]:
                if sample_name != name:
                    raise ValueError(
                        f"{name}: stray counter sample {sample_name!r}"
                    )
                if not math.isfinite(value) or value < 0:
                    raise ValueError(
                        f"{name}: counter value {value} out of range"
                    )
        elif kind == "histogram":
            _validate_histogram(name, data["samples"])
    return samples


def _validate_histogram(
    name: str, samples: List[Tuple[str, Dict[str, str], float]]
) -> None:
    """Bucket/count/sum invariants for every series of one family."""
    series: Dict[Tuple[Tuple[str, str], ...], Dict[str, object]] = {}

    def entry(labels: Dict[str, str]) -> Dict[str, object]:
        key = tuple(
            sorted((k, v) for k, v in labels.items() if k != "le")
        )
        return series.setdefault(
            key, {"buckets": [], "sum": None, "count": None}
        )

    for sample_name, labels, value in samples:
        if sample_name == f"{name}_bucket":
            if "le" not in labels:
                raise ValueError(f"{name}: bucket sample without le")
            bound = (
                math.inf if labels["le"] == "+Inf" else float(labels["le"])
            )
            entry(labels)["buckets"].append((bound, value))
        elif sample_name == f"{name}_sum":
            entry(labels)["sum"] = value
        elif sample_name == f"{name}_count":
            entry(labels)["count"] = value
        else:
            raise ValueError(
                f"{name}: stray histogram sample {sample_name!r}"
            )
    for key, data in sorted(series.items()):
        label_text = dict(key) or "{}"
        buckets = sorted(data["buckets"])
        if not buckets or buckets[-1][0] != math.inf:
            raise ValueError(f"{name}{label_text}: no +Inf bucket")
        counts = [count for _, count in buckets]
        if any(
            later < earlier for earlier, later in zip(counts, counts[1:])
        ):
            raise ValueError(
                f"{name}{label_text}: bucket counts not monotone"
            )
        if data["count"] is None:
            raise ValueError(f"{name}{label_text}: missing _count")
        if data["sum"] is None:
            raise ValueError(f"{name}{label_text}: missing _sum")
        if counts[-1] != data["count"]:
            raise ValueError(
                f"{name}{label_text}: +Inf bucket {counts[-1]} != "
                f"_count {data['count']}"
            )
