"""Shared summary statistics for the telemetry layer.

Before this module existed, ``repro.serve.loadgen`` carried a private
nearest-rank percentile and ``repro.serve.server`` a private EWMA —
two copies of maths that histogram snapshots (:mod:`repro.obs.metrics`)
also need.  This module is the single home for all three consumers.

The functions are deliberately tiny and exactly reproduce the
historical behaviour: :func:`percentile` is the loadgen nearest-rank
rule (so the committed byte-stable loadgen reports do not move), and
:class:`Ewma` is the serving layer's smoothing rule (first sample sets
the value outright; later samples blend with factor ``alpha``).
"""

from __future__ import annotations

from typing import Dict, Sequence

__all__ = ["Ewma", "percentile", "summarize"]


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted sequence.

    ``fraction`` is in ``[0, 1]``; an empty sequence yields ``0.0``.
    This is the exact rule ``repro loadgen`` has always used for its
    timing sidecar, moved here verbatim.
    """
    if not sorted_values:
        return 0.0
    index = min(
        int(fraction * (len(sorted_values) - 1) + 0.5), len(sorted_values) - 1
    )
    return sorted_values[index]


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """p50/p90/p99/max over an unsorted sequence (zeros when empty)."""
    ordered = sorted(values)
    return {
        "p50": percentile(ordered, 0.50),
        "p90": percentile(ordered, 0.90),
        "p99": percentile(ordered, 0.99),
        "max": ordered[-1] if ordered else 0.0,
    }


class Ewma:
    """Exponentially-weighted moving average, serving-layer flavour.

    The first observed sample sets :attr:`value` directly (an EWMA
    that has seen nothing should not be dragged toward zero); every
    later sample blends in with ``value += alpha * (x - value)``.
    These are exactly the semantics the daemon's ``Retry-After``
    estimate has always had.
    """

    __slots__ = ("alpha", "value", "samples")

    def __init__(self, alpha: float = 0.3):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.value = 0.0
        self.samples = 0

    def update(self, sample: float) -> float:
        """Fold one sample in; returns the new value."""
        if self.value == 0.0:
            self.value = sample
        else:
            self.value += self.alpha * (sample - self.value)
        self.samples += 1
        return self.value

    def __repr__(self) -> str:
        return (
            f"<Ewma alpha={self.alpha} value={self.value:.6f} "
            f"samples={self.samples}>"
        )
