"""Hierarchical pipeline spans and Chrome trace-event export.

PR 2 instrumented the simulation *kernel* (``repro.sim.metrics``); this
module instruments the pipeline *above* it.  A :class:`SpanTracer`
records a tree of timed spans — parse, validate, partition, each
refinement procedure, estimate, export, simulate — with counters and
attributes per span, and exports the whole run as Chrome trace-event
JSON loadable in Perfetto or ``chrome://tracing``.

Design points:

* **context-manager API** — ``with tracer.span("control"): ...``; spans
  nest automatically via the tracer's stack;
* **zero-cost when detached** — pipeline code holds :data:`NULL_TRACER`
  by default, whose ``span`` returns a shared no-op span: no timestamps
  are taken, no objects allocated per call beyond the method dispatch;
* **one timing system** — :class:`repro.sim.metrics.PhaseTimer` is an
  adapter over a :class:`SpanTracer`, so ``repro profile`` and
  ``repro trace`` share this substrate.
"""

from __future__ import annotations

import json
import time as _time
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "SpanTracer",
    "NULL_TRACER",
    "validate_chrome_trace",
]


class Span:
    """One timed region of the pipeline.

    ``attrs`` carries both attributes (:meth:`set`) and counters
    (:meth:`add`); they become the ``args`` of the exported trace
    event.  ``end`` is ``None`` while the span is open.
    """

    __slots__ = ("name", "category", "start", "end", "attrs", "children", "_tracer")

    def __init__(self, name: str, category: str, tracer: "SpanTracer"):
        self.name = name
        self.category = category
        self.start = _time.perf_counter()
        self.end: Optional[float] = None
        self.attrs: Dict[str, object] = {}
        self.children: List["Span"] = []
        self._tracer = tracer

    @property
    def seconds(self) -> float:
        """Wall-clock duration (up to now while still open)."""
        end = self.end if self.end is not None else _time.perf_counter()
        return end - self.start

    def set(self, key: str, value) -> None:
        """Attach an attribute (shows up in the trace event's args)."""
        self.attrs[key] = value

    def add(self, key: str, amount: int = 1) -> None:
        """Increment a counter attribute."""
        self.attrs[key] = self.attrs.get(key, 0) + amount

    def iter_tree(self) -> Iterator["Span"]:
        """This span and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.iter_tree()

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = _time.perf_counter()
        self._tracer._pop(self)
        return False

    def __repr__(self) -> str:
        state = f"{self.seconds * 1e3:.3f} ms" if self.end is not None else "open"
        return f"<span {self.name!r} [{self.category}] {state}>"


class _NullSpan:
    """The shared do-nothing span :data:`NULL_TRACER` hands out."""

    __slots__ = ()

    def set(self, key: str, value) -> None:
        pass

    def add(self, key: str, amount: int = 1) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class _NullTracer:
    """Detached tracer: ``span`` costs one method call, nothing else."""

    __slots__ = ()

    _SPAN = _NullSpan()

    def span(self, name: str, category: str = "pipeline", **attrs) -> _NullSpan:
        return self._SPAN

    def record_span(
        self, name: str, seconds: float, category: str = "exec", **attrs
    ) -> _NullSpan:
        return self._SPAN


#: What pipeline code holds when no one is watching.
NULL_TRACER = _NullTracer()


class SpanTracer:
    """Collects a forest of :class:`Span` trees.

    The tracer keeps an explicit stack: a span opened while another is
    open becomes its child.  One tracer records one logical run; spans
    from concurrent threads are not supported (the pipeline is
    single-threaded).
    """

    def __init__(self):
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # -- recording ----------------------------------------------------------

    def span(self, name: str, category: str = "pipeline", **attrs) -> Span:
        """Open a span; use as a context manager to close it."""
        opened = Span(name, category, self)
        if attrs:
            opened.attrs.update(attrs)
        if self._stack:
            self._stack[-1].children.append(opened)
        else:
            self.roots.append(opened)
        self._stack.append(opened)
        return opened

    def _pop(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    def record_span(
        self, name: str, seconds: float, category: str = "exec", **attrs
    ) -> Span:
        """Attach an already-completed span of known duration.

        The execution engine uses this for work that was *not* timed by
        this tracer's clock: jobs that ran in a worker process (their
        duration comes back over the result channel) and cache hits
        (duration ~0).  The span is closed on arrival — it nests under
        :attr:`current` but never joins the open stack.
        """
        span = Span(name, category, self)
        now = _time.perf_counter()
        span.start = now - max(float(seconds), 0.0)
        span.end = now
        if attrs:
            span.attrs.update(attrs)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    # -- queries ------------------------------------------------------------

    def iter_spans(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.iter_tree()

    def find(self, name: str, category: Optional[str] = None) -> Optional[Span]:
        """First span named ``name`` (optionally in ``category``)."""
        for span in self.iter_spans():
            if span.name == name and (category is None or span.category == category):
                return span
        return None

    def aggregate(self, category: Optional[str] = None) -> Dict[str, float]:
        """Root-span name -> accumulated seconds, in first-entry order.

        Re-entering a name accumulates into the same bucket (the
        :class:`repro.sim.metrics.PhaseTimer` contract).  ``category``
        restricts to matching roots.
        """
        out: Dict[str, float] = {}
        for root in self.roots:
            if category is not None and root.category != category:
                continue
            out[root.name] = out.get(root.name, 0.0) + root.seconds
        return out

    def describe(self) -> str:
        """The span forest as an indented text tree with durations."""
        lines: List[str] = []

        def emit(span: Span, depth: int) -> None:
            attrs = ""
            if span.attrs:
                attrs = "  " + " ".join(
                    f"{key}={value}" for key, value in sorted(span.attrs.items())
                )
            lines.append(
                f"{'  ' * depth}{span.name:<24}{span.seconds * 1e3:10.3f} ms{attrs}"
            )
            for child in span.children:
                emit(child, depth + 1)

        for root in self.roots:
            emit(root, 0)
        return "\n".join(lines) if lines else "no spans recorded"

    # -- export -------------------------------------------------------------

    def to_chrome_trace(self, process_name: str = "repro") -> Dict[str, object]:
        """The run as a Chrome trace-event JSON object.

        Every span becomes a complete (``ph="X"``) event with
        microsecond ``ts``/``dur`` relative to the earliest span start;
        a metadata event names the process.  The result loads in
        Perfetto and ``chrome://tracing``.
        """
        events: List[Dict[str, object]] = [
            {
                "ph": "M",
                "pid": 1,
                "tid": 1,
                "ts": 0,
                "name": "process_name",
                "args": {"name": process_name},
            }
        ]
        spans = list(self.iter_spans())
        origin = min((s.start for s in spans), default=0.0)
        for span in spans:
            end = span.end if span.end is not None else _time.perf_counter()
            events.append(
                {
                    "ph": "X",
                    "pid": 1,
                    "tid": 1,
                    "name": span.name,
                    "cat": span.category,
                    "ts": round((span.start - origin) * 1e6, 3),
                    "dur": round((end - span.start) * 1e6, 3),
                    "args": dict(span.attrs),
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_chrome_json(self, process_name: str = "repro") -> str:
        return json.dumps(self.to_chrome_trace(process_name), indent=2)


def validate_chrome_trace(data) -> int:
    """Check ``data`` against the trace-event schema; returns the event
    count.  Raises ``ValueError`` with a precise message on the first
    violation — this is what the CI trace-smoke job runs on the emitted
    JSON.
    """
    if not isinstance(data, dict):
        raise ValueError(f"trace must be a JSON object, got {type(data).__name__}")
    events = data.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace object must carry a 'traceEvents' array")
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: events must be objects")
        phase = event.get("ph")
        if not isinstance(phase, str) or not phase:
            raise ValueError(f"{where}: missing event phase 'ph'")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"{where}: missing integer {key!r}")
        if not isinstance(event.get("ts"), (int, float)):
            raise ValueError(f"{where}: missing numeric 'ts'")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"{where}: missing event 'name'")
        if phase == "X" and not isinstance(event.get("dur"), (int, float)):
            raise ValueError(f"{where}: complete event without 'dur'")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            raise ValueError(f"{where}: 'args' must be an object")
    return len(events)
