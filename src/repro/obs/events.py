"""Structured event journal with end-to-end request correlation.

Every interesting thing the system does — a request admitted, a job
dispatched, a worker crash, a breaker trip — becomes one JSONL record
``{"ts": ..., "kind": ..., "request_id": ..., **fields}``.  The
``request_id`` is the correlation spine: :class:`repro.serve.client`
mints one per logical request and sends it as ``X-Repro-Request-Id``,
the server echoes it and binds it (via :func:`bind_request_id`, a
:mod:`contextvars` context manager) around execution, so the engine's
per-job events and span attributes inherit it without any signature
threading.  Campaigns that run outside the daemon get a generated
run ID instead — every record carries *some* ID, always.

Three sinks compose:

* a **file** (``--journal PATH``) — append-only JSONL, one record per
  line, flushed per write so ``repro stats --journal PATH --follow``
  can tail a live daemon or campaign;
* a **flight recorder** — a bounded ring of the most recent records,
  dumped to a JSON file on worker crash, deadline preemption or
  circuit-open so every 5xx is diagnosable after the fact;
* **memory** (``keep=True``) — tests inspect ``journal.records``.

:data:`NULL_JOURNAL` is the disabled mode: ``emit`` on it is a no-op
method on a shared singleton (the ``NULL_TRACER`` discipline), so
instrumented call sites cost nothing when journaling is off.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
import uuid
from collections import deque
from typing import Dict, List, Optional

__all__ = [
    "EventJournal",
    "FlightRecorder",
    "NULL_JOURNAL",
    "bind_request_id",
    "current_request_id",
    "new_request_id",
    "read_journal",
    "validate_journal",
]

_REQUEST_ID: contextvars.ContextVar[str] = contextvars.ContextVar(
    "repro_request_id", default=""
)


def new_request_id() -> str:
    """A fresh 16-hex-char correlation ID."""
    return uuid.uuid4().hex[:16]


def current_request_id() -> str:
    """The request/run ID bound to this context (``""`` when none)."""
    return _REQUEST_ID.get()


class bind_request_id:
    """Context manager binding ``request_id`` for the dynamic extent.

    Everything that emits journal records or spans inside the block —
    however many call frames down — picks the ID up via
    :func:`current_request_id`.  Bindings nest and restore on exit;
    each thread (and each ``contextvars`` context) sees its own.
    """

    __slots__ = ("request_id", "_token")

    def __init__(self, request_id: str):
        self.request_id = request_id
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> str:
        self._token = _REQUEST_ID.set(self.request_id)
        return self.request_id

    def __exit__(self, *exc_info) -> None:
        if self._token is not None:
            _REQUEST_ID.reset(self._token)
            self._token = None


class FlightRecorder:
    """Bounded ring of recent journal records, dumpable post-mortem.

    ``capacity`` bounds memory; :meth:`dump` writes the current ring
    to ``directory`` as a small JSON file named after the trigger
    reason and the implicated request ID, and returns the path.
    Thread-safe; feeding it is the journal's job.
    """

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=capacity)
        #: completed dump files written so far
        self.dumps = 0

    def note(self, record: Dict[str, object]) -> None:
        with self._lock:
            self._ring.append(record)

    def snapshot(self) -> List[Dict[str, object]]:
        with self._lock:
            return list(self._ring)

    def dump(
        self, directory: str, reason: str, request_id: str = ""
    ) -> str:
        """Write the ring to ``directory`` and return the file path."""
        os.makedirs(directory, exist_ok=True)
        with self._lock:
            events = list(self._ring)
            self.dumps += 1
            sequence = self.dumps
        slug = "".join(
            ch if ch.isalnum() or ch in "._-" else "-" for ch in reason
        )
        rid = request_id or "unknown"
        path = os.path.join(
            directory,
            f"flight_{slug}_{rid}_{os.getpid()}_{sequence}.json",
        )
        payload = {
            "reason": reason,
            "request_id": request_id,
            "events": events,
        }
        with open(path, "w") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
            handle.write("\n")
        return path


class EventJournal:
    """Thread-safe structured event sink; see the module docstring.

    ``path``
        Append-target JSONL file (opened lazily, flushed per record).
    ``recorder``
        A :class:`FlightRecorder` fed every record.
    ``keep``
        Keep records in :attr:`records` (tests; unbounded — do not
        enable on a long-running daemon).
    ``clock``
        Injectable wall clock for the ``ts`` field.
    """

    enabled = True

    def __init__(
        self,
        path: Optional[str] = None,
        recorder: Optional[FlightRecorder] = None,
        keep: bool = False,
        clock=time.time,
    ):
        self.path = path
        self.recorder = recorder
        self.records: List[Dict[str, object]] = []
        self._keep = keep
        self._clock = clock
        self._lock = threading.Lock()
        self._handle = None
        #: total records emitted through this journal
        self.emitted = 0

    def emit(
        self, kind: str, request_id: Optional[str] = None, **fields
    ) -> Dict[str, object]:
        """Record one event; returns the record.

        ``request_id=None`` (the default) picks up the bound
        :func:`current_request_id`; pass an explicit string (possibly
        empty) to override.
        """
        if request_id is None:
            request_id = current_request_id()
        record: Dict[str, object] = {
            "ts": round(self._clock(), 6),
            "kind": kind,
            "request_id": request_id,
        }
        for name, value in fields.items():
            record[name] = value
        with self._lock:
            self.emitted += 1
            if self._keep:
                self.records.append(record)
            if self.path is not None:
                if self._handle is None:
                    directory = os.path.dirname(self.path)
                    if directory:
                        os.makedirs(directory, exist_ok=True)
                    self._handle = open(self.path, "a")
                self._handle.write(
                    json.dumps(record, sort_keys=True, default=str) + "\n"
                )
                self._handle.flush()
        if self.recorder is not None:
            self.recorder.note(record)
        return record

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _NullJournal:
    """Journaling disabled: shared, allocation-free no-op."""

    enabled = False
    records: List[Dict[str, object]] = []
    emitted = 0
    recorder = None
    path = None

    __slots__ = ()

    def emit(self, kind, request_id=None, **fields):
        return None

    def close(self) -> None:
        pass


NULL_JOURNAL = _NullJournal()


# -- journal reading / validation -------------------------------------------

def read_journal(path: str) -> List[Dict[str, object]]:
    """Load every record of a JSONL journal file."""
    records: List[Dict[str, object]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def validate_journal(records) -> int:
    """Validate journal schema; returns the record count.

    ``records`` is a list of dicts or a JSONL string.  Every record
    must be an object with a numeric ``ts``, a non-empty string
    ``kind`` and a string ``request_id`` (possibly empty).  Raises
    :class:`ValueError` naming the first offending record.
    """
    if isinstance(records, str):
        records = [
            json.loads(line)
            for line in records.splitlines()
            if line.strip()
        ]
    for number, record in enumerate(records, start=1):
        where = f"record {number}"
        if not isinstance(record, dict):
            raise ValueError(f"{where}: not a JSON object")
        if not isinstance(record.get("ts"), (int, float)):
            raise ValueError(f"{where}: missing numeric 'ts'")
        kind = record.get("kind")
        if not isinstance(kind, str) or not kind:
            raise ValueError(f"{where}: missing non-empty 'kind'")
        if not isinstance(record.get("request_id"), str):
            raise ValueError(f"{where}: missing string 'request_id'")
    return len(records)
