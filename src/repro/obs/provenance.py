"""Refinement provenance: which step produced which IR node.

Every refinement pass stamps the nodes it creates (behaviors,
variables/signals, subprograms, inserted protocol-call statements) with
a :class:`Provenance` record — the procedure that ran, the paper rule
it applied, and the source-spec node it derives from.  Nodes that
survive refinement untouched carry no stamp; they resolve to a
synthesized ``source`` record instead, so *every* node of a refined
specification has an answer to "where did this come from?".

``repro explain`` combines these records with the pretty-printer's
line map (:func:`repro.lang.printer.print_specification_with_map`) to
resolve a line of refined source back to the step that produced it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Provenance",
    "stamp",
    "provenance_of",
    "copy_provenance",
    "ProvenanceReport",
    "provenance_report",
]

#: Attribute name carrying the record on stamped IR nodes.
PROVENANCE_ATTR = "_provenance"


@dataclass(frozen=True)
class Provenance:
    """Where one refined IR node came from.

    ``procedure`` is the refinement pass (``control``, ``data``,
    ``memory``, ``arbiter``, ``businterface``, ``emitter``,
    ``refiner`` — or ``source`` for untouched nodes); ``rule`` names
    the specific construction (e.g. ``B_CTRL``, ``tmp-fetch``,
    ``port-server``); ``source`` is the originating source-spec name.
    """

    procedure: str
    rule: str
    source: str = ""
    detail: str = ""

    def describe(self) -> str:
        text = f"{self.procedure}/{self.rule}"
        if self.source:
            text += f" (from {self.source})"
        if self.detail:
            text += f": {self.detail}"
        return text


def stamp(node, procedure: str, rule: str, source: str = "", detail: str = ""):
    """Attach a :class:`Provenance` to ``node`` and return the node.

    Works on mutable IR containers (behaviors, variables, subprograms)
    and on frozen statement dataclasses (via ``object.__setattr__`` —
    they define no ``__slots__``).
    """
    record = Provenance(procedure, rule, source, detail)
    object.__setattr__(node, PROVENANCE_ATTR, record)
    return node


def provenance_of(node) -> Optional[Provenance]:
    """The node's stamp, or None for untouched source nodes."""
    return getattr(node, PROVENANCE_ATTR, None)


def copy_provenance(original, clone) -> None:
    """Carry a stamp across a ``copy()`` (no-op when unstamped)."""
    record = getattr(original, PROVENANCE_ATTR, None)
    if record is not None:
        object.__setattr__(clone, PROVENANCE_ATTR, record)


# -- completeness ------------------------------------------------------------


@dataclass
class ProvenanceReport:
    """Provenance coverage of one refined specification.

    ``entries`` maps ``(kind, name)`` to the resolved record —
    stamped, or synthesized ``source`` for nodes that exist in the
    original specification.  ``missing`` lists nodes with neither; an
    empty ``missing`` is the completeness property the test suite
    asserts across all four implementation models.
    """

    entries: Dict[Tuple[str, str], Provenance] = field(default_factory=dict)
    missing: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.missing

    def by_procedure(self) -> Dict[str, int]:
        """Procedure -> node count (the Figure 10 style breakdown)."""
        out: Dict[str, int] = {}
        for record in self.entries.values():
            out[record.procedure] = out.get(record.procedure, 0) + 1
        return out

    def describe(self) -> str:
        lines = [
            f"provenance: {len(self.entries)} node(s), "
            f"{len(self.missing)} unaccounted"
        ]
        for procedure, count in sorted(self.by_procedure().items()):
            lines.append(f"  {procedure}: {count}")
        for kind, name in self.missing:
            lines.append(f"  MISSING {kind} {name}")
        return "\n".join(lines)


def _iter_nodes(spec) -> Iterator[Tuple[str, str, object]]:
    """(kind, name, node) for every named object of a specification."""
    for behavior in spec.behaviors():
        yield "behavior", behavior.name, behavior
        for decl in behavior.decls:
            yield "variable", decl.name, decl
    for decl in spec.variables:
        yield "variable", decl.name, decl
    for sub in spec.subprograms.values():
        yield "subprogram", sub.name, sub
        for decl in sub.decls:
            yield "variable", decl.name, decl


def _source_names(original) -> Dict[str, set]:
    names: Dict[str, set] = {"behavior": set(), "variable": set(), "subprogram": set()}
    for kind, name, _ in _iter_nodes(original):
        names[kind].add(name)
    return names


def provenance_report(refined, original) -> ProvenanceReport:
    """Resolve every node of ``refined`` to a provenance record.

    Stamped nodes keep their record; unstamped nodes named in
    ``original`` get a synthesized ``source/unchanged`` record; anything
    else lands in ``missing``.
    """
    report = ProvenanceReport()
    known = _source_names(original)
    for kind, name, node in _iter_nodes(refined):
        key = (kind, name)
        if key in report.entries:
            continue
        record = provenance_of(node)
        if record is None and name in known[kind]:
            record = Provenance("source", "unchanged", name)
        if record is None:
            report.missing.append(key)
        else:
            report.entries[key] = record
    return report
