"""PCM-to-PWM audio converter — the SpecC methodology case study.

The SpecC papers ground their methodology in a PCM/PWM converter: a
pulse-code-modulated sample stream is fetched frame by frame, upsampled
and noise-shaped, mapped to pulse-width duty cycles and emitted to a
one-bit power stage.  The original sources are not public, so this
module reconstructs a synthetic equivalent with the same pipeline
shape, written in the exact style of :mod:`repro.apps.medical` so the
whole campaign stack (refinement, estimation, robustness, export)
applies unchanged.

System sketch (10 behaviors)::

    PCM2PWM (top)
      Setup               scale/bias decode from the config word
      FrameLoop           repeated per audio frame
        Fetch             decode PCM_LEN samples into pcm_buf
        Upsample
          Interp          2x linear interpolation into up_buf
          Shape           first-order noise shaping + dither
        Duty              map samples to PWM duty widths, clip
        Emit              duty checksum accumulation (the PWM stream)
        Status            clip/frame telemetry, frame counter

Environment ports: ``stream_profile`` (PCM source character),
``config_word`` (volume/bias configuration) and ``frame_count``
(frames to convert) in; ``pwm_out``, ``clip_out`` and ``status_out``
out.  Internal state: scale, bias, dither, pcm_buf, up_buf, duty_buf,
clip_count, frame, checksum, period.

Two evaluation partitions: ``Design1`` cuts at the natural pipeline
boundary (sample datapath on the ASIC, control and telemetry on the
processor); ``Design2`` interleaves producers and consumers so nearly
every buffer crosses the cut.
"""

from __future__ import annotations

from typing import Dict

from repro.partition.partition import Partition
from repro.spec.builder import (
    assign,
    for_,
    if_,
    leaf,
    on_complete,
    seq,
    spec,
    transition,
)
from repro.spec.expr import var
from repro.spec.specification import Specification
from repro.spec.types import array_of, int_type
from repro.spec.variable import Role, variable

__all__ = [
    "pcm_pwm_specification",
    "pcm_design1_partition",
    "pcm_design2_partition",
    "pcm_all_designs",
    "PCM_PWM_INPUTS",
]

_I16 = int_type(16)

#: PCM samples fetched per frame.
PCM_LEN = 4

#: Upsampled samples per frame (2x interpolation).
UP_LEN = 2 * PCM_LEN

#: PWM carrier period in timer ticks.
PWM_PERIOD = 32

#: Default stimulus: a mid-range stream, moderate volume, two frames.
PCM_PWM_INPUTS: Dict[str, int] = {
    "stream_profile": 55,
    "config_word": 25,
    "frame_count": 2,
}


def pcm_pwm_specification() -> Specification:
    """The PCM/PWM converter (10 behaviors, 10 internal variables)."""

    setup = leaf(
        "Setup",
        assign("scale", var("config_word") / 16 + 2),
        if_(
            var("scale") > 12,
            [assign("scale", 12)],
        ),
        if_(
            var("scale") < 2,
            [assign("scale", 2)],
        ),
        assign("bias", var("config_word") % 8),
        assign("dither", 0),
        assign("clip_count", 0),
        assign("frame", 0),
        assign("checksum", 0),
        assign("pwm_out", 0),
        assign("clip_out", 0),
        assign("status_out", 0),
        doc="decode the volume/bias configuration, reset telemetry",
    )

    fetch = leaf(
        "Fetch",
        for_(
            "i",
            0,
            PCM_LEN - 1,
            [
                assign(
                    var("pcm_buf").index(var("i")),
                    var("stream_profile") / 2
                    + var("i") * (var("stream_profile") % 11)
                    + var("frame") * 3,
                ),
            ],
        ),
        if_(
            var("pcm_buf").index(0) > 96,
            [
                for_(
                    "i",
                    0,
                    PCM_LEN - 1,
                    [
                        assign(
                            var("pcm_buf").index(var("i")),
                            var("pcm_buf").index(var("i")) / 2,
                        ),
                    ],
                )
            ],
        ),
        doc="decode one PCM frame; hot streams are fetched at half level",
    )

    interp = leaf(
        "Interp",
        for_(
            "i",
            0,
            PCM_LEN - 1,
            [
                assign(
                    var("up_buf").index(var("i") * 2),
                    var("pcm_buf").index(var("i")),
                ),
            ],
        ),
        for_(
            "i",
            0,
            PCM_LEN - 2,
            [
                assign(
                    var("up_buf").index(var("i") * 2 + 1),
                    (
                        var("pcm_buf").index(var("i"))
                        + var("pcm_buf").index(var("i") + 1)
                    )
                    / 2,
                ),
            ],
        ),
        assign(
            var("up_buf").index(UP_LEN - 1),
            var("pcm_buf").index(PCM_LEN - 1),
        ),
        doc="2x linear interpolation of the PCM frame",
    )

    shape = leaf(
        "Shape",
        for_(
            "i",
            0,
            UP_LEN - 1,
            [
                assign(
                    var("up_buf").index(var("i")),
                    var("up_buf").index(var("i")) * var("scale") / 4
                    + var("bias")
                    + var("dither"),
                ),
                assign("dither", var("up_buf").index(var("i")) % 3 - 1),
                if_(
                    var("up_buf").index(var("i")) > 127,
                    [assign(var("up_buf").index(var("i")), 127)],
                ),
                if_(
                    var("up_buf").index(var("i")) < 0,
                    [assign(var("up_buf").index(var("i")), 0)],
                ),
            ],
        ),
        doc="volume scaling, bias and first-order dither, saturated",
    )

    upsample = seq(
        "Upsample",
        [interp, shape],
        transitions=[
            transition("Interp", None, "Shape"),
            on_complete("Shape"),
        ],
        doc="interpolate then noise-shape one frame",
    )

    duty = leaf(
        "Duty",
        for_(
            "i",
            0,
            UP_LEN - 1,
            [
                assign(
                    var("duty_buf").index(var("i")),
                    var("up_buf").index(var("i")) * PWM_PERIOD / 128,
                ),
                if_(
                    var("duty_buf").index(var("i")) > PWM_PERIOD - 2,
                    [
                        assign(var("duty_buf").index(var("i")), PWM_PERIOD - 2),
                        assign("clip_count", var("clip_count") + 1),
                    ],
                ),
                if_(
                    var("duty_buf").index(var("i")) < 1,
                    [assign(var("duty_buf").index(var("i")), 1)],
                ),
            ],
        ),
        doc="map samples to PWM duty widths with clip accounting",
    )

    emit = leaf(
        "Emit",
        for_(
            "i",
            0,
            UP_LEN - 1,
            [
                assign(
                    "checksum",
                    var("checksum")
                    + var("duty_buf").index(var("i")) * (var("i") + 1),
                ),
            ],
        ),
        assign("checksum", var("checksum") % 9973),
        assign("pwm_out", var("checksum")),
        doc="emit the frame: position-weighted duty checksum",
    )

    status = leaf(
        "Status",
        assign("frame", var("frame") + 1),
        assign("clip_out", var("clip_count")),
        assign("status_out", var("frame") * 100 + var("checksum") % 100),
        if_(
            var("status_out") < 0,
            [assign("status_out", 0)],
        ),
        doc="clip/frame telemetry record",
    )

    frame_loop = seq(
        "FrameLoop",
        [fetch, upsample, duty, emit, status],
        transitions=[
            transition("Fetch", None, "Upsample"),
            transition("Upsample", None, "Duty"),
            transition("Duty", None, "Emit"),
            transition("Emit", None, "Status"),
            on_complete("Status"),
        ],
        doc="one complete audio frame conversion",
    )

    top = seq(
        "PCM2PWM",
        [setup, frame_loop],
        transitions=[
            transition("Setup", None, "FrameLoop"),
            transition("FrameLoop", var("frame") < var("frame_count"),
                       "FrameLoop"),
            on_complete("FrameLoop", var("frame") >= var("frame_count")),
        ],
        doc="PCM-to-PWM converter top",
    )

    return spec(
        "PCM2PWM",
        top,
        variables=[
            # environment interface (ports; not partitionable)
            variable("stream_profile", _I16, init=55, role=Role.INPUT,
                     doc="character of the incoming PCM stream"),
            variable("config_word", _I16, init=25, role=Role.INPUT,
                     doc="packed volume/bias configuration"),
            variable("frame_count", _I16, init=2, role=Role.INPUT,
                     doc="audio frames to convert"),
            variable("pwm_out", _I16, init=0, role=Role.OUTPUT,
                     doc="PWM stream checksum"),
            variable("clip_out", _I16, init=0, role=Role.OUTPUT,
                     doc="saturated-sample count"),
            variable("status_out", _I16, init=0, role=Role.OUTPUT,
                     doc="frame/checksum telemetry"),
            # internal converter state
            variable("scale", _I16, init=0, doc="volume scale factor"),
            variable("bias", _I16, init=0, doc="DC bias"),
            variable("dither", _I16, init=0, doc="noise-shaping residue"),
            variable("pcm_buf", array_of(_I16, PCM_LEN),
                     doc="fetched PCM frame"),
            variable("up_buf", array_of(_I16, UP_LEN),
                     doc="upsampled samples"),
            variable("duty_buf", array_of(_I16, UP_LEN),
                     doc="PWM duty widths"),
            variable("clip_count", _I16, init=0, doc="clip counter"),
            variable("frame", _I16, init=0, doc="frame counter"),
            variable("checksum", _I16, init=0, doc="duty checksum"),
        ],
        doc=(
            "PCM-to-PWM audio converter - synthetic reconstruction of "
            "the SpecC methodology case study."
        ),
    )


def pcm_design1_partition(spec_: Specification) -> Partition:
    """Design1 — pipeline cut: the per-sample datapath (fetch,
    upsample, duty mapping) on the ASIC, control and telemetry on the
    processor; only stage-boundary values cross."""
    return Partition.from_mapping(
        spec_,
        {
            "Setup": "PROC",
            "Emit": "PROC",
            "Status": "PROC",
            "Fetch": "ASIC",
            "Upsample": "ASIC",
            "Duty": "ASIC",
            # datapath state on the ASIC, telemetry on the processor
            "scale": "ASIC",
            "bias": "ASIC",
            "dither": "ASIC",
            "pcm_buf": "ASIC",
            "up_buf": "ASIC",
            "duty_buf": "ASIC",
            "clip_count": "ASIC",
            "frame": "PROC",
            "checksum": "PROC",
        },
        name="Design1",
    )


def pcm_design2_partition(spec_: Specification) -> Partition:
    """Design2 — adversarial interleaving: alternate pipeline stages
    across the cut so every buffer is produced on one side and
    consumed on the other."""
    return Partition.from_mapping(
        spec_,
        {
            "Setup": "PROC",
            "Fetch": "PROC",
            "Upsample": "ASIC",
            "Duty": "PROC",
            "Emit": "ASIC",
            "Status": "PROC",
            "scale": "ASIC",
            "bias": "PROC",
            "dither": "ASIC",
            "pcm_buf": "PROC",
            "up_buf": "ASIC",
            "duty_buf": "PROC",
            "clip_count": "PROC",
            "frame": "PROC",
            "checksum": "ASIC",
        },
        name="Design2",
    )


def pcm_all_designs(spec_: Specification) -> Dict[str, Partition]:
    """The two evaluation partitions keyed by design name."""
    return {
        "Design1": pcm_design1_partition(spec_),
        "Design2": pcm_design2_partition(spec_),
    }
