"""The paper's illustrative example specifications (Figures 1–8).

Each function reconstructs one of the small examples the paper uses to
introduce model refinement, with enough concrete computation that the
discrete-event simulator can execute them and the equivalence checker
can compare original vs refined runs.

* :func:`figure1_specification` — behaviors A, B, C and variable ``x``
  with arcs ``A:(x>1,B)`` and ``A:(x<1,C)`` (Figure 1a);
* :func:`figure1_partition` — A, C on PROC; B and ``x`` on ASIC1
  (Figure 1c);
* :func:`figure2_specification` — behaviors B1–B4 and variables v1–v7
  (Figure 2), the example behind the four implementation models;
* :func:`figure2_partition` — B1, B2, v1–v4 on PROC; B3, B4, v5–v7 on
  ASIC;
* :func:`figure4_specification` — the A; B; C sequence of the
  control-related refinement example, with both leaf and non-leaf
  variants of B;
* :func:`figure5_specification` — the ``x := x + 5`` data-refinement
  example (Figure 5a);
* :func:`figure6_specification` — the non-leaf data-refinement example
  with transition conditions ``x>1`` and ``x>5`` (Figure 6a);
* :func:`figure7_specification` — B1 reading x and B2 reading y over a
  shared bus (the arbiter example);
* :func:`figure8_specification` — B1 on Component1 reading y in
  Component2's local memory (the bus-interface example).
"""

from __future__ import annotations

from repro.partition.partition import Partition
from repro.spec.builder import (
    assign,
    conc,
    for_,
    leaf,
    on_complete,
    seq,
    spec,
    transition,
)
from repro.spec.expr import var
from repro.spec.specification import Specification
from repro.spec.types import int_type
from repro.spec.variable import Role, variable

__all__ = [
    "figure1_specification",
    "figure1_partition",
    "figure2_specification",
    "figure2_partition",
    "figure4_specification",
    "figure4_nonleaf_specification",
    "figure5_specification",
    "figure6_specification",
    "figure7_specification",
    "figure8_specification",
]

_INT = int_type(16)


def figure1_specification() -> Specification:
    """Figure 1(a): A, B, C and variable x.

    After A, control moves to B when ``x > 1`` and to C when ``x < 1``
    (when ``x = 1`` the composite completes).  B doubles x, C resets
    it; ``result`` is the observable output.
    """
    a = leaf(
        "A",
        assign("x", var("seed") + 1),
        doc="produce x from the input seed",
    )
    b = leaf(
        "B",
        assign("x", var("x") * 2),
        assign("result", var("x")),
        doc="taken when x > 1",
    )
    c = leaf(
        "C",
        assign("x", 0),
        assign("result", var("x") - 1),
        doc="taken when x < 1",
    )
    top = seq(
        "Main",
        [a, b, c],
        transitions=[
            transition("A", var("x") > 1, "B"),
            transition("A", var("x") < 1, "C"),
            on_complete("B"),
            on_complete("C"),
        ],
    )
    return spec(
        "Figure1",
        top,
        variables=[
            variable("seed", _INT, init=3, role=Role.INPUT),
            variable("x", _INT, init=0),
            variable("result", _INT, init=0, role=Role.OUTPUT),
        ],
        doc="Paper Figure 1(a): three behaviors sharing variable x.",
    )


def figure1_partition(spec_: Specification) -> Partition:
    """Figure 1(c): A and C on PROC; B and x on ASIC1."""
    return Partition.from_mapping(
        spec_,
        {
            "A": "PROC",
            "C": "PROC",
            "B": "ASIC1",
            "x": "ASIC1",
        },
        name="figure1",
    )


def figure2_specification() -> Specification:
    """Figure 2: four behaviors B1–B4 and seven variables v1–v7.

    The access pattern matches the paper's classification: v1, v2, v3
    local to {B1, B2}; v6 local to {B3, B4}; v4, v5, v7 global
    (accessed from both sides of the partition).
    """
    b1 = leaf(
        "B1",
        assign("v1", var("stimulus") + 2),
        assign("v2", var("v1") * 3),
        assign("v4", var("v1") + var("v2")),
        assign("v2", var("v2") + var("v5")),
        doc="produces v1/v2, publishes v4, consumes v5",
    )
    b2 = leaf(
        "B2",
        assign("v3", var("v2") - var("v1")),
        assign("v4", var("v4") + var("v3")),
        assign("v3", var("v3") + var("v7")),
        doc="consumes v1/v2/v7, updates v3 and v4",
    )
    b3 = leaf(
        "B3",
        assign("v6", var("v4") * 2),
        assign("v5", var("v6") - 1),
        assign("v7", var("v6") + var("v5")),
        doc="consumes v4, produces v5/v6/v7",
    )
    b4 = leaf(
        "B4",
        assign("v6", var("v6") + var("v7")),
        assign("v5", var("v5") + var("v6")),
        assign("observed", var("v5") + var("v6")),
        doc="folds v6/v7 into v5; drives the output",
    )
    top = seq(
        "System",
        [b1, b2, b3, b4],
        transitions=[
            transition("B1", None, "B2"),
            transition("B2", None, "B3"),
            transition("B3", None, "B4"),
            on_complete("B4"),
        ],
    )
    return spec(
        "Figure2",
        top,
        variables=[
            variable("stimulus", _INT, init=1, role=Role.INPUT),
            variable("v1", _INT, init=0),
            variable("v2", _INT, init=0),
            variable("v3", _INT, init=0),
            variable("v4", _INT, init=0),
            variable("v5", _INT, init=0),
            variable("v6", _INT, init=0),
            variable("v7", _INT, init=0),
            variable("observed", _INT, init=0, role=Role.OUTPUT),
        ],
        doc="Paper Figure 2: the four-behavior seven-variable example.",
    )


def figure2_partition(spec_: Specification) -> Partition:
    """Figure 2's split: B1, B2 and v1–v4 on PROC; B3, B4 and v5–v7 on
    ASIC.  (``stimulus``/``observed``/``v3`` accesses keep v3 local.)"""
    return Partition.from_mapping(
        spec_,
        {
            "B1": "PROC",
            "B2": "PROC",
            "B3": "ASIC",
            "B4": "ASIC",
            "v1": "PROC",
            "v2": "PROC",
            "v3": "PROC",
            "v4": "PROC",
            "v5": "ASIC",
            "v6": "ASIC",
            "v7": "ASIC",
        },
        name="figure2",
    )


def figure4_specification() -> Specification:
    """Figure 4(a): sequence A; B; C where B will move to partition P2.

    B is a leaf here, so both refinement schemes (4b and 4c) apply.
    """
    a = leaf("A", assign("acc", var("acc") + 1))
    b = leaf("B", assign("acc", var("acc") * 2))
    c = leaf("C", assign("out", var("acc") + 10))
    top = seq(
        "P",
        [a, b, c],
        transitions=[
            transition("A", None, "B"),
            transition("B", None, "C"),
            on_complete("C"),
        ],
    )
    return spec(
        "Figure4",
        top,
        variables=[
            variable("acc", _INT, init=1),
            variable("out", _INT, init=0, role=Role.OUTPUT),
        ],
        doc="Paper Figure 4: control-related refinement example.",
    )


def figure4_nonleaf_specification() -> Specification:
    """Figure 4 variant where the moved behavior B is a *composite*
    (forcing the non-leaf refinement scheme of Figure 4c)."""
    a = leaf("A", assign("acc", var("acc") + 1))
    b1 = leaf("B1", assign("acc", var("acc") * 2))
    b2 = leaf("B2", assign("acc", var("acc") + 3))
    b = seq(
        "B",
        [b1, b2],
        transitions=[transition("B1", None, "B2"), on_complete("B2")],
    )
    c = leaf("C", assign("out", var("acc") + 10))
    top = seq(
        "P",
        [a, b, c],
        transitions=[
            transition("A", None, "B"),
            transition("B", None, "C"),
            on_complete("C"),
        ],
    )
    return spec(
        "Figure4NonLeaf",
        top,
        variables=[
            variable("acc", _INT, init=1),
            variable("out", _INT, init=0, role=Role.OUTPUT),
        ],
        doc="Paper Figure 4(c): non-leaf control-related refinement.",
    )


def figure5_specification() -> Specification:
    """Figure 5(a): behavior B computing ``x := x + 5``; x will be
    mapped to a memory on the other partition."""
    b = leaf(
        "B",
        assign("x", var("x") + 5),
        assign("out", var("x")),
    )
    driver = leaf("Driver", assign("x", var("seed")))
    top = seq(
        "Sys",
        [driver, b],
        transitions=[transition("Driver", None, "B"), on_complete("B")],
    )
    return spec(
        "Figure5",
        top,
        variables=[
            variable("seed", _INT, init=7, role=Role.INPUT),
            variable("x", _INT, init=0),
            variable("out", _INT, init=0, role=Role.OUTPUT),
        ],
        doc="Paper Figure 5: data-related refinement of a leaf behavior.",
    )


def figure6_specification() -> Specification:
    """Figure 6(a): non-leaf behavior B with sub-behaviors B1, B2, B3 and
    transition conditions ``x > 1`` and ``x > 5`` reading a remote x."""
    b1 = leaf("B1", assign("x", var("x") + 2))
    b2 = leaf("B2", assign("x", var("x") * 3))
    b3 = leaf("B3", assign("out", var("x")))
    b = seq(
        "B",
        [b1, b2, b3],
        transitions=[
            transition("B1", var("x") > 1, "B2"),
            transition("B2", var("x") > 5, "B3"),
            on_complete("B3"),
            on_complete("B1", var("x") <= 1),
            on_complete("B2", var("x") <= 5),
        ],
    )
    return spec(
        "Figure6",
        b,
        variables=[
            variable("x", _INT, init=1),
            variable("out", _INT, init=0, role=Role.OUTPUT),
        ],
        doc="Paper Figure 6: data-related refinement of a non-leaf behavior.",
    )


def figure7_specification() -> Specification:
    """Figure 7: B1 reads x, B2 reads y, both over the same bus — the
    shared-bus contention that requires an arbiter."""
    b1 = leaf(
        "B1",
        for_("i", 1, 3, [assign("r1", var("r1") + var("x"))]),
    )
    b2 = leaf(
        "B2",
        for_("j", 1, 3, [assign("r2", var("r2") + var("y"))]),
    )
    top = conc("Readers", [b1, b2])
    return spec(
        "Figure7",
        top,
        variables=[
            variable("x", _INT, init=4),
            variable("y", _INT, init=9),
            variable("r1", _INT, init=0, role=Role.OUTPUT),
            variable("r2", _INT, init=0, role=Role.OUTPUT),
        ],
        doc="Paper Figure 7: two masters sharing a bus (arbiter insertion).",
    )


def figure8_specification() -> Specification:
    """Figure 8: B1 on Component1 needs y stored in Component2's local
    memory LM2 — the message-passing/bus-interface example."""
    b1 = leaf(
        "B1",
        assign("r", var("y") + 1),
        assign("r", var("r") + var("y")),
    )
    b2 = leaf(
        "B2",
        assign("y", var("y") * 2),
    )
    top = seq(
        "Sys",
        [b2, b1],
        transitions=[transition("B2", None, "B1"), on_complete("B1")],
    )
    return spec(
        "Figure8",
        top,
        variables=[
            variable("y", _INT, init=5),
            variable("r", _INT, init=0, role=Role.OUTPUT),
        ],
        doc="Paper Figure 8: bus-interface insertion for message passing.",
    )
