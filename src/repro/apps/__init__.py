"""Example applications: the paper's figures, the medical system and
the answering machine."""

from repro.apps.answering import (
    TAM_INPUTS,
    answering_machine_specification,
    tam_partition,
)
from repro.apps.figures import (
    figure1_partition,
    figure1_specification,
    figure2_partition,
    figure2_specification,
    figure4_nonleaf_specification,
    figure4_specification,
    figure5_specification,
    figure6_specification,
    figure7_specification,
    figure8_specification,
)

__all__ = [
    "TAM_INPUTS",
    "answering_machine_specification",
    "tam_partition",
    "figure1_partition",
    "figure1_specification",
    "figure2_partition",
    "figure2_specification",
    "figure4_nonleaf_specification",
    "figure4_specification",
    "figure5_specification",
    "figure6_specification",
    "figure7_specification",
    "figure8_specification",
]
