"""Example applications: the paper's figures, the medical system, the
answering machine, the PCM/PWM converter and the workload registry
binding them (plus generator-synthesized families) to the campaign
drivers."""

from repro.apps.answering import (
    TAM_INPUTS,
    answering_machine_specification,
    tam_partition,
)
from repro.apps.pcm_pwm import (
    PCM_PWM_INPUTS,
    pcm_all_designs,
    pcm_design1_partition,
    pcm_design2_partition,
    pcm_pwm_specification,
)
from repro.apps.workloads import (
    Workload,
    WorkloadError,
    WorkloadRegistry,
    default_registry,
    resolve_workload,
)
from repro.apps.figures import (
    figure1_partition,
    figure1_specification,
    figure2_partition,
    figure2_specification,
    figure4_nonleaf_specification,
    figure4_specification,
    figure5_specification,
    figure6_specification,
    figure7_specification,
    figure8_specification,
)

__all__ = [
    "TAM_INPUTS",
    "PCM_PWM_INPUTS",
    "pcm_all_designs",
    "pcm_design1_partition",
    "pcm_design2_partition",
    "pcm_pwm_specification",
    "Workload",
    "WorkloadError",
    "WorkloadRegistry",
    "default_registry",
    "resolve_workload",
    "answering_machine_specification",
    "tam_partition",
    "figure1_partition",
    "figure1_specification",
    "figure2_partition",
    "figure2_specification",
    "figure4_nonleaf_specification",
    "figure4_specification",
    "figure5_specification",
    "figure6_specification",
    "figure7_specification",
    "figure8_specification",
]
