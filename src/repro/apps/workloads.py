"""The workload registry: every application the campaigns can run.

A :class:`Workload` bundles what a campaign needs to treat an
application as a first-class benchmark: a SpecCharts specification
factory, the named evaluation partitions, the default stimulus, a
deterministic input-vector generator, and the expected output
invariants.  The :class:`WorkloadRegistry` keys workloads by a short
id — the same id the ``--workload`` flag of every campaign CLI
accepts and the exec engine folds into its cache keys.

The default registry ships six entries:

=============  =============================================================
id             application
=============  =============================================================
``medical``    the paper's bladder-volume medical system (3 designs)
``answering``  the telephone answering machine (1 design)
``pcm_pwm``    the PCM-to-PWM audio converter of the SpecC case study
``pipeline``   generator-synthesized linear pipeline (pinned seed)
``mesh``       generator-synthesized producer/consumer mesh (pinned seed)
``controller`` generator-synthesized interrupt-driven controller (pinned
               seed)
=============  =============================================================

Registration rejects duplicate ids immediately;
:meth:`Workload.validate` additionally proves an entry's functional
model terminates under a step budget, that every design partition
builds against the spec, and that the outputs respect the declared
invariant ranges — all violations surface as structured
:class:`WorkloadError`\\ s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import ReproError, SimulationLimitExceeded
from repro.partition.partition import Partition
from repro.spec.specification import Specification

__all__ = [
    "Workload",
    "WorkloadError",
    "WorkloadRegistry",
    "default_registry",
    "resolve_workload",
]

#: Step budget under which every registered functional model must
#: quiesce for :meth:`Workload.validate` to accept it.
VALIDATE_MAX_STEPS = 200_000

#: Pinned seeds of the generator-synthesized registry entries.  Never
#: change these: campaign cache keys and the committed golden reports
#: embed the specs they produce.
PIPELINE_SEED = 6
MESH_SEED = 8
CONTROLLER_SEED = 4


@dataclass(frozen=True)
class Workload:
    """One registry entry: an application the campaigns can target.

    ``spec_factory`` builds a fresh, validated specification;
    ``designs_factory`` maps that specification to its named evaluation
    partitions (components ``PROC``/``ASIC``); ``invariants`` maps
    output port names to inclusive ``(lo, hi)`` ranges the functional
    model must respect under the default stimulus.
    """

    id: str
    title: str
    category: str
    description: str
    spec_factory: Callable[[], Specification]
    designs_factory: Callable[[Specification], Dict[str, Partition]]
    default_inputs: Mapping[str, int]
    default_design: str
    invariants: Mapping[str, Tuple[int, int]] = field(default_factory=dict)

    def spec(self) -> Specification:
        """A fresh validated specification instance."""
        spec_ = self.spec_factory()
        spec_.validate()
        return spec_

    def designs(
        self, spec_: Optional[Specification] = None
    ) -> Dict[str, Partition]:
        """The evaluation partitions, built against ``spec_`` (pass the
        instance you will refine — partitions bind to their spec)."""
        return self.designs_factory(spec_ or self.spec())

    def input_vectors(
        self, seed: int, count: int = 3,
        spec_: Optional[Specification] = None,
    ) -> List[Dict[str, int]]:
        """``count`` deterministic stimuli starting at sweep seed
        ``seed``.  Seed 0 is the default stimulus; loop-bound ports
        stay pinned at their baseline so runtime stays bounded."""
        from repro.exec.campaigns import sweep_inputs

        spec_ = spec_ or self.spec()
        return [
            sweep_inputs(spec_, seed + k, dict(self.default_inputs))
            for k in range(count)
        ]

    def validate(self, max_steps: int = VALIDATE_MAX_STEPS) -> str:
        """Prove the entry is campaign-ready; returns a one-line
        summary, raises :class:`WorkloadError` otherwise.

        Checks: the specification validates, the functional model
        terminates under the default stimulus within ``max_steps``,
        every design partition builds and only uses ``PROC``/``ASIC``
        components, the default design exists, and the outputs land in
        the declared invariant ranges.
        """
        from repro.sim.interpreter import Simulator
        from repro.sim.kernel import KernelLimits

        try:
            spec_ = self.spec()
        except ReproError as exc:
            raise WorkloadError(
                f"workload {self.id!r}: specification invalid: {exc}"
            ) from exc
        try:
            run = Simulator(spec_).run(
                inputs=dict(self.default_inputs),
                limits=KernelLimits(max_steps=max_steps),
            )
        except SimulationLimitExceeded as exc:
            raise WorkloadError(
                f"workload {self.id!r}: functional model does not "
                f"terminate within {max_steps} steps under the default "
                f"stimulus — {exc}"
            ) from exc
        if not run.completed:
            raise WorkloadError(
                f"workload {self.id!r}: functional model quiesced "
                "without completing under the default stimulus"
            )
        designs = self.designs(spec_)
        if not designs:
            raise WorkloadError(f"workload {self.id!r}: no designs")
        if self.default_design not in designs:
            raise WorkloadError(
                f"workload {self.id!r}: default design "
                f"{self.default_design!r} not in {sorted(designs)}"
            )
        for name, partition in designs.items():
            components = set(partition.components())
            if not components <= {"PROC", "ASIC"}:
                raise WorkloadError(
                    f"workload {self.id!r}: design {name!r} uses "
                    f"components {sorted(components)} outside the "
                    "PROC/ASIC allocation"
                )
        outputs = run.output_values()
        for port, (lo, hi) in self.invariants.items():
            value = outputs.get(port)
            if value is None:
                raise WorkloadError(
                    f"workload {self.id!r}: invariant names unknown "
                    f"output port {port!r}"
                )
            if not lo <= value <= hi:
                raise WorkloadError(
                    f"workload {self.id!r}: output {port}={value} "
                    f"violates invariant range [{lo}, {hi}]"
                )
        return (
            f"{sum(1 for _ in spec_.top.iter_tree())} behaviors, "
            f"{len(designs)} design(s), completed in {run.steps} "
            f"step(s), {len(self.invariants)} invariant(s) hold"
        )


class WorkloadError(ReproError):
    """A workload registry violation (duplicate id, unknown id, or a
    validation failure such as a non-terminating functional model)."""


class WorkloadRegistry:
    """An ordered id -> :class:`Workload` mapping with structured
    duplicate/unknown-id errors."""

    def __init__(self, workloads: Tuple[Workload, ...] = ()):
        self._entries: Dict[str, Workload] = {}
        for workload in workloads:
            self.add(workload)

    def add(self, workload: Workload) -> None:
        if workload.id in self._entries:
            raise WorkloadError(
                f"duplicate workload id {workload.id!r} "
                "(already registered)"
            )
        self._entries[workload.id] = workload

    def get(self, workload_id: str) -> Workload:
        try:
            return self._entries[workload_id]
        except KeyError:
            raise WorkloadError(
                f"unknown workload {workload_id!r}; choose from "
                f"{sorted(self._entries)}"
            ) from None

    def names(self) -> List[str]:
        """Registered ids in registration order."""
        return list(self._entries)

    def __iter__(self) -> Iterator[Workload]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, workload_id: object) -> bool:
        return workload_id in self._entries

    def validate_all(
        self, max_steps: int = VALIDATE_MAX_STEPS
    ) -> List[Tuple[Workload, Optional[str], Optional[WorkloadError]]]:
        """Validate every entry; per entry, either a summary line or
        the :class:`WorkloadError` it raised."""
        report: List[
            Tuple[Workload, Optional[str], Optional[WorkloadError]]
        ] = []
        for workload in self:
            try:
                report.append((workload, workload.validate(max_steps), None))
            except WorkloadError as exc:
                report.append((workload, None, exc))
        return report


# -- the default registry ----------------------------------------------------


def _generated_designs(maker, seed: int):
    """A designs factory for a generator-synthesized case: rebuild the
    pinned case's partition mapping against the passed spec instance."""

    def factory(spec_: Specification) -> Dict[str, Partition]:
        from repro.exec.job import canonical_partition

        case = maker(seed)
        mapping = {name: comp for name, comp in
                   canonical_partition(case.partition)}
        return {"auto": Partition.from_mapping(spec_, mapping, name="auto")}

    return factory


def _build_default_registry() -> WorkloadRegistry:
    from repro.apps.answering import (
        TAM_INPUTS,
        answering_machine_specification,
        tam_partition,
    )
    from repro.apps.medical import (
        MEDICAL_INPUTS,
        all_designs,
        medical_specification,
    )
    from repro.apps.pcm_pwm import (
        PCM_PWM_INPUTS,
        pcm_all_designs,
        pcm_pwm_specification,
    )
    from repro.fuzz.generator import (
        generate_controller_case,
        generate_mesh_case,
        generate_pipeline_case,
    )

    registry = WorkloadRegistry()
    registry.add(Workload(
        id="medical",
        title="Bladder-volume medical system",
        category="paper",
        description=(
            "The real-time embedded medical system of the paper's "
            "evaluation (16 behaviors, 3 designs)."
        ),
        spec_factory=medical_specification,
        designs_factory=all_designs,
        default_inputs=MEDICAL_INPUTS,
        default_design="Design1",
        invariants={
            "display_out": (0, 999),
            "alarm_out": (0, 999),
            "log_out": (0, 8_000_000),
        },
    ))
    registry.add(Workload(
        id="answering",
        title="Telephone answering machine",
        category="case-study",
        description=(
            "The telephone answering machine (TAM) of the SpecCharts "
            "papers: ring detection, announcement, recording, remote "
            "playback."
        ),
        spec_factory=answering_machine_specification,
        designs_factory=lambda spec_: {"tam": tam_partition(spec_)},
        default_inputs=TAM_INPUTS,
        default_design="tam",
        invariants={
            "light_out": (0, 99),
            "play_out": (0, 32_767),
            "rec_out": (0, 32_767),
        },
    ))
    registry.add(Workload(
        id="pcm_pwm",
        title="PCM-to-PWM audio converter",
        category="case-study",
        description=(
            "The PCM/PWM converter of the SpecC methodology case "
            "study: fetch, upsample, noise-shape, duty-map, emit "
            "(10 behaviors, 2 designs)."
        ),
        spec_factory=pcm_pwm_specification,
        designs_factory=pcm_all_designs,
        default_inputs=PCM_PWM_INPUTS,
        default_design="Design1",
        invariants={
            "pwm_out": (0, 9_972),
            "clip_out": (0, 512),
            "status_out": (0, 32_767),
        },
    ))
    registry.add(Workload(
        id="pipeline",
        title="Synthesized linear pipeline",
        category="generated",
        description=(
            "A four-stage pipeline synthesized by the fuzz generator "
            f"at pinned seed {PIPELINE_SEED}: each stage reads its "
            "predecessor's boundary variable, the partition cuts the "
            "pipeline in half."
        ),
        spec_factory=lambda: generate_pipeline_case(PIPELINE_SEED).spec,
        designs_factory=_generated_designs(
            generate_pipeline_case, PIPELINE_SEED
        ),
        default_inputs={},
        default_design="auto",
        invariants={},
    ))
    registry.add(Workload(
        id="mesh",
        title="Synthesized producer/consumer mesh",
        category="generated",
        description=(
            "A producer/consumer mesh synthesized at pinned seed "
            f"{MESH_SEED}: one producer feeds three concurrent "
            "workers writing disjoint results, a combiner reduces "
            "them."
        ),
        spec_factory=lambda: generate_mesh_case(MESH_SEED).spec,
        designs_factory=_generated_designs(generate_mesh_case, MESH_SEED),
        default_inputs={},
        default_design="auto",
        invariants={},
    ))
    registry.add(Workload(
        id="controller",
        title="Synthesized interrupt controller",
        category="generated",
        description=(
            "An interrupt-driven controller synthesized at pinned "
            f"seed {CONTROLLER_SEED}: a dispatch loop polls an event "
            "code and branches to one of three handlers until "
            "event_count events are served."
        ),
        spec_factory=lambda: generate_controller_case(CONTROLLER_SEED).spec,
        designs_factory=_generated_designs(
            generate_controller_case, CONTROLLER_SEED
        ),
        default_inputs={"event_count": 3},
        default_design="auto",
        invariants={},
    ))
    return registry


_DEFAULT_REGISTRY: Optional[WorkloadRegistry] = None


def default_registry() -> WorkloadRegistry:
    """The bundled six-entry registry (built once per process)."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = _build_default_registry()
    return _DEFAULT_REGISTRY


def resolve_workload(workload: object = None) -> Workload:
    """``None`` -> the medical default; a string -> a default-registry
    lookup (:class:`WorkloadError` for unknown ids); a
    :class:`Workload` passes through."""
    if workload is None:
        return default_registry().get("medical")
    if isinstance(workload, Workload):
        return workload
    return default_registry().get(str(workload))
