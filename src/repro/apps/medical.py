"""The real-time medical system of the paper's evaluation (§5).

The authors evaluate model refinement on "a real-time embedded medical
system used to measure a patient's bladder volume" [8], described in
SpecCharts with **16 behaviors**, **14 variables** and **52 derived
data-access channels**, an input specification of **226 lines**.  The
original specification is not public, so this module reconstructs a
synthetic equivalent with the same published statistics and the same
overall shape: an ultrasound measure-process-report loop.

System sketch (16 behaviors)::

    BVM (top)
      Init                  power-on defaults
      Calibrate             probe calibration from the patient profile
      MeasureCycle          repeated per measurement cycle
        Acquire
          Excite            shape and fire the ultrasound pulse
          Sample            digitise the echo train into echo_buf
        Filter              smoothing + gain compensation
        Detect              threshold-crossing echo detection
        Gain                adaptive gain control
        Compute
          Area              cross-section estimate
          Volume            volume estimate, clamp and trend
        Display             LCD output value
        Alarm               overfill / fast-fill alarm
        Log                 measurement log record

The 14 internal variables: gain, threshold, pulse, echo_buf, filtered,
echo_index, found, distance, depth_cal, area_est, volume_est,
prev_volume, trend, cycle.  Environment ports (patient_profile,
num_cycles in; display_out, alarm_out, log_out out) model the system
boundary and are not partitionable.

The three evaluation partitions split the behaviors between a processor
and an ASIC so the local/global variable ratio matches the paper's
three designs: ``Design1`` local = global (7/7), ``Design2`` local >
global, ``Design3`` local < global.
"""

from __future__ import annotations

from typing import Dict

from repro.partition.partition import Partition
from repro.spec.builder import (
    assign,
    for_,
    if_,
    leaf,
    on_complete,
    seq,
    spec,
    transition,
)
from repro.spec.expr import var
from repro.spec.specification import Specification
from repro.spec.types import array_of, int_type
from repro.spec.variable import Role, variable

__all__ = [
    "medical_specification",
    "design1_partition",
    "design2_partition",
    "design3_partition",
    "all_designs",
    "MEDICAL_INPUTS",
]

_I16 = int_type(16)

#: Buffer length of the digitised echo train.
ECHO_LEN = 8

#: Default stimulus for simulations and profiling: a mid-range patient
#: profile and two measurement cycles.
MEDICAL_INPUTS: Dict[str, int] = {"patient_profile": 37, "num_cycles": 2}


def medical_specification() -> Specification:
    """The bladder-volume measurement system (16 behaviors,
    14 variables, 52 data-access channels)."""

    init = leaf(
        "Init",
        assign("gain", 4),
        assign("threshold", 60),
        assign("prev_volume", 0),
        assign("cycle", 0),
        assign("display_out", 0),
        assign("alarm_out", 0),
        assign("log_out", 0),
        doc="power-on defaults and blanked indicators",
    )

    calibrate = leaf(
        "Calibrate",
        assign("depth_cal", var("patient_profile") / 8 + 3),
        if_(
            var("depth_cal") > 12,
            [assign("depth_cal", 12)],
        ),
        if_(
            var("depth_cal") < 4,
            [assign("depth_cal", 4)],
        ),
        assign("threshold", var("threshold") + var("depth_cal")),
        if_(
            var("threshold") > 95,
            [assign("threshold", 95)],
        ),
        assign("gain", var("gain") + var("depth_cal") / 4),
        doc="probe calibration against the patient profile, clamped",
    )

    excite = leaf(
        "Excite",
        assign("pulse", var("gain") * 3 + var("cycle")),
        assign("pulse", var("pulse") + var("threshold") / 16),
        for_(
            "step",
            1,
            2,
            [assign("pulse", var("pulse") + var("gain") / (var("step") + 1))],
        ),
        if_(
            var("pulse") > 48,
            [assign("pulse", 48)],
        ),
        doc="shape the ultrasound excitation pulse",
    )

    sample = leaf(
        "Sample",
        for_(
            "i",
            0,
            ECHO_LEN - 1,
            [
                assign(
                    var("echo_buf").index(var("i")),
                    var("patient_profile") / 4
                    + var("i") * (var("patient_profile") % 13)
                    + var("pulse") / 8,
                ),
            ],
        ),
        if_(
            var("pulse") > 40,
            [
                for_(
                    "i",
                    0,
                    ECHO_LEN - 1,
                    [
                        assign(
                            var("echo_buf").index(var("i")),
                            var("patient_profile") / 4
                            + var("i") * (var("patient_profile") % 13)
                            + var("pulse") / 16,
                        ),
                    ],
                )
            ],
        ),
        doc="digitise the echo train; strong pulses re-sample at half drive",
    )

    acquire = seq(
        "Acquire",
        [excite, sample],
        transitions=[
            transition("Excite", None, "Sample"),
            on_complete("Sample"),
        ],
        doc="one ultrasound acquisition",
    )

    filter_ = leaf(
        "Filter",
        for_(
            "i",
            0,
            ECHO_LEN - 1,
            [assign(var("filtered").index(var("i")), var("echo_buf").index(var("i")))],
        ),
        assign(var("filtered").index(0), var("echo_buf").index(0)),
        for_(
            "i",
            1,
            ECHO_LEN - 2,
            [
                assign(
                    var("filtered").index(var("i")),
                    (
                        var("echo_buf").index(var("i") - 1)
                        + var("echo_buf").index(var("i"))
                        + var("echo_buf").index(var("i") + 1)
                    )
                    / 3,
                ),
            ],
        ),
        assign(
            var("filtered").index(ECHO_LEN - 1),
            var("echo_buf").index(ECHO_LEN - 1),
        ),
        for_(
            "i",
            0,
            ECHO_LEN - 1,
            [
                assign(
                    var("filtered").index(var("i")),
                    var("filtered").index(var("i")) + var("gain"),
                ),
                if_(
                    var("filtered").index(var("i")) > 120,
                    [assign(var("filtered").index(var("i")), 120)],
                ),
            ],
        ),
        doc="3-tap smoothing, gain compensation and saturation",
    )

    detect = leaf(
        "Detect",
        assign("echo_index", ECHO_LEN - 1),
        assign("found", 0),
        for_(
            "i",
            0,
            ECHO_LEN - 1,
            [
                if_(
                    (var("filtered").index(var("i")) > var("threshold")).and_(
                        var("found").eq(0)
                    ),
                    [assign("echo_index", var("i")), assign("found", 1)],
                ),
            ],
        ),
        assign("distance", (var("echo_index") + 1) * var("depth_cal")),
        if_(
            var("found").eq(1),
            [
                if_(
                    var("filtered").index(var("echo_index")) > var("threshold"),
                    [
                        assign(
                            "distance",
                            var("echo_index") * var("depth_cal")
                            + var("depth_cal") / 2,
                        )
                    ],
                    [assign("found", 0)],
                )
            ],
        ),
        doc="threshold-crossing echo detection with confirmation",
    )

    gain_ctl = leaf(
        "Gain",
        if_(
            var("found").eq(0),
            [assign("gain", var("gain") + 2)],
            [
                if_(
                    var("gain") > var("threshold") / 24,
                    [assign("gain", var("gain") - 1)],
                )
            ],
        ),
        if_(
            var("gain") > 30,
            [assign("gain", 30)],
        ),
        if_(
            var("gain") < 1,
            [assign("gain", 1)],
        ),
        doc="adaptive gain control, bounded both ways",
    )

    area = leaf(
        "Area",
        if_(
            var("distance") > 60,
            [assign("area_est", 600)],
            [assign("area_est", var("distance") * var("distance") / 6)],
        ),
        doc="bladder cross-section estimate (clamped)",
    )

    volume = leaf(
        "Volume",
        assign("volume_est", var("area_est") * var("distance") / 16),
        if_(
            var("volume_est") > 999,
            [assign("volume_est", 999)],
        ),
        assign(
            "volume_est",
            (var("volume_est") * 3 + var("prev_volume")) / 4,
        ),
        if_(
            var("volume_est") < 0,
            [assign("volume_est", 0)],
        ),
        assign("trend", var("volume_est") - var("prev_volume")),
        assign("prev_volume", var("volume_est")),
        doc="volume estimate, clamp, smoothing and trend",
    )

    compute = seq(
        "Compute",
        [area, volume],
        transitions=[
            transition("Area", None, "Volume"),
            on_complete("Volume"),
        ],
        doc="geometry pipeline",
    )

    display = leaf(
        "Display",
        assign("display_out", var("volume_est") + var("trend") / 8),
        if_(
            var("display_out") > 999,
            [assign("display_out", 999)],
        ),
        if_(
            var("display_out") < 0,
            [assign("display_out", 0)],
        ),
        doc="LCD output with trend smoothing and range clipping",
    )

    alarm = leaf(
        "Alarm",
        if_(
            (var("volume_est") > 350).or_(var("trend") > 120),
            [assign("alarm_out", var("volume_est"))],
            [
                if_(
                    var("prev_volume") > 320,
                    [assign("alarm_out", var("prev_volume"))],
                    [assign("alarm_out", 0)],
                )
            ],
        ),
        doc="overfill / fast-fill alarm with hysteresis",
    )

    log = leaf(
        "Log",
        assign("cycle", var("cycle") + 1),
        assign(
            "log_out",
            var("cycle") * 10000 + var("volume_est") * 10 + var("found"),
        ),
        if_(
            var("log_out") < 0,
            [assign("log_out", 0)],
        ),
        if_(
            var("log_out") > 8000000,
            [assign("log_out", 8000000)],
        ),
        doc="measurement log record",
    )

    measure_cycle = seq(
        "MeasureCycle",
        [acquire, filter_, detect, gain_ctl, compute, display, alarm, log],
        transitions=[
            transition("Acquire", None, "Filter"),
            transition("Filter", None, "Detect"),
            transition("Detect", None, "Gain"),
            transition("Gain", None, "Compute"),
            transition("Compute", None, "Display"),
            transition("Display", None, "Alarm"),
            transition("Alarm", None, "Log"),
            on_complete("Log"),
        ],
        doc="one complete measurement cycle",
    )

    top = seq(
        "BVM",
        [init, calibrate, measure_cycle],
        transitions=[
            transition("Init", None, "Calibrate"),
            transition("Calibrate", None, "MeasureCycle"),
            transition("MeasureCycle", var("cycle") < var("num_cycles"),
                       "MeasureCycle"),
            on_complete("MeasureCycle", var("cycle") >= var("num_cycles")),
        ],
        doc="bladder volume measurement top",
    )

    return spec(
        "MedicalBVM",
        top,
        variables=[
            # environment interface (ports; not partitionable)
            variable("patient_profile", _I16, init=37, role=Role.INPUT,
                     doc="echo strength profile of the patient"),
            variable("num_cycles", _I16, init=2, role=Role.INPUT,
                     doc="measurement cycles to run"),
            variable("display_out", _I16, init=0, role=Role.OUTPUT,
                     doc="LCD value"),
            variable("alarm_out", _I16, init=0, role=Role.OUTPUT,
                     doc="alarm annunciator value"),
            variable("log_out", int_type(24), init=0, role=Role.OUTPUT,
                     doc="log record"),
            # the 14 internal variables of the paper's system
            variable("gain", _I16, init=4, doc="transducer gain"),
            variable("threshold", _I16, init=60, doc="detection threshold"),
            variable("pulse", _I16, init=0, doc="excitation pulse strength"),
            variable("echo_buf", array_of(_I16, ECHO_LEN),
                     doc="raw echo train"),
            variable("filtered", array_of(_I16, ECHO_LEN),
                     doc="smoothed echo train"),
            variable("echo_index", _I16, init=0, doc="detected echo position"),
            variable("found", _I16, init=0, doc="echo found flag"),
            variable("distance", _I16, init=0, doc="wall distance"),
            variable("depth_cal", _I16, init=0, doc="depth calibration factor"),
            variable("area_est", _I16, init=0, doc="cross-section estimate"),
            variable("volume_est", _I16, init=0, doc="volume estimate"),
            variable("prev_volume", _I16, init=0, doc="previous volume"),
            variable("trend", _I16, init=0, doc="volume trend"),
            variable("cycle", _I16, init=0, doc="cycle counter"),
        ],
        doc=(
            "Real-time bladder volume measurement system - synthetic "
            "reconstruction of the paper's evaluation example [8]."
        ),
    )


def design1_partition(spec_: Specification) -> Partition:
    """Design1 — "Local = Global" (7 local / 7 global).

    Acquisition and filtering on the ASIC but detection and reporting
    on the processor, so the *filtered* echo train itself crosses the
    cut — global traffic genuinely rivals local traffic, the defining
    property of this design point.
    """
    return Partition.from_mapping(
        spec_,
        {
            # processor: control, detection, geometry back half, report
            "Init": "PROC",
            "Calibrate": "PROC",
            "Detect": "PROC",
            "Volume": "PROC",
            "Display": "PROC",
            "Alarm": "PROC",
            "Log": "PROC",
            # ASIC: acquisition, filtering, gain control, area
            "Acquire": "ASIC",
            "Filter": "ASIC",
            "Gain": "ASIC",
            "Area": "ASIC",
            # variables, homed near their main producer
            "gain": "ASIC",
            "threshold": "ASIC",
            "pulse": "ASIC",
            "echo_buf": "ASIC",
            "filtered": "ASIC",
            "area_est": "ASIC",
            "echo_index": "PROC",
            "found": "PROC",
            "distance": "PROC",
            "depth_cal": "PROC",
            "volume_est": "PROC",
            "prev_volume": "PROC",
            "trend": "PROC",
            "cycle": "PROC",
        },
        name="Design1",
    )


def design2_partition(spec_: Specification) -> Partition:
    """Design2 — "Local > Global": the cut follows the natural pipeline
    boundary — signal processing on the ASIC, geometry and reporting on
    the processor — so each side keeps its working set local and only
    the stage-boundary values cross."""
    return Partition.from_mapping(
        spec_,
        {
            "Init": "PROC",
            "Calibrate": "PROC",
            "Compute": "PROC",
            "Display": "PROC",
            "Alarm": "PROC",
            "Log": "PROC",
            "Acquire": "ASIC",
            "Filter": "ASIC",
            "Detect": "ASIC",
            "Gain": "ASIC",
            "gain": "ASIC",
            "threshold": "ASIC",
            "pulse": "ASIC",
            "echo_buf": "ASIC",
            "filtered": "ASIC",
            "echo_index": "ASIC",
            "found": "ASIC",
            "distance": "ASIC",
            "depth_cal": "PROC",
            "area_est": "PROC",
            "volume_est": "PROC",
            "prev_volume": "PROC",
            "trend": "PROC",
            "cycle": "PROC",
        },
        name="Design2",
    )


def design3_partition(spec_: Specification) -> Partition:
    """Design3 — "Local < Global": an adversarial interleaving that
    separates producers from consumers at nearly every pipeline stage,
    so almost every variable is accessed from both sides."""
    return Partition.from_mapping(
        spec_,
        {
            "Init": "PROC",
            "Calibrate": "ASIC",
            "Acquire": "PROC",
            "Filter": "ASIC",
            "Detect": "PROC",
            "Gain": "ASIC",
            "Compute": "ASIC",
            "Display": "PROC",
            "Alarm": "ASIC",
            "Log": "PROC",
            "gain": "PROC",
            "threshold": "ASIC",
            "pulse": "PROC",
            "echo_buf": "PROC",
            "filtered": "ASIC",
            "echo_index": "PROC",
            "found": "PROC",
            "distance": "ASIC",
            "depth_cal": "ASIC",
            "area_est": "ASIC",
            "volume_est": "ASIC",
            "prev_volume": "PROC",
            "trend": "ASIC",
            "cycle": "PROC",
        },
        name="Design3",
    )


def all_designs(spec_: Specification) -> Dict[str, Partition]:
    """The three evaluation partitions keyed by their paper name."""
    return {
        "Design1": design1_partition(spec_),
        "Design2": design2_partition(spec_),
        "Design3": design3_partition(spec_),
    }
