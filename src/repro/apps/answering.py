"""A telephone answering machine — the canonical SpecCharts system.

The SpecCharts language the paper builds on was designed around a
telephone answering machine example (Narayan, Vahid & Gajski, ICCAD'91
[12]; also the running example of the Specification and Design of
Embedded Systems book [5]).  This module provides a synthetic answering
machine in the same spirit as a second evaluation workload: a control-
dominated counterpart to the medical system's dataflow pipeline,
exercising deep behavior hierarchy, enum-typed state, and array
buffers.

Call handling per call::

    TAM (top)
      Init                 defaults, light off
      CallLoop             one iteration per incoming call
        WaitRing           count ring pulses until the answer threshold
        Answer
          PlayAnnounce     step through the announcement tones
          RecordMsg        record caller audio until silence
        CheckCode          compare dialled digits with the owner code
        Playback           owner access: play back all recorded audio
        UpdateLight        message-waiting light
        Hangup             line release, next call

Inputs synthesise the environment: ``line_profile`` shapes the ring
pattern and caller audio; ``owner_code``/``dialled_code`` decide
whether the caller may play back messages; ``num_calls`` bounds the
run.  Outputs expose the message light, a playback checksum and a
recording checksum.

:func:`tam_partition` splits control (processor) from the audio path
(ASIC), the split the SpecSyn papers use for this system.
"""

from __future__ import annotations

from repro.partition.partition import Partition
from repro.spec.builder import (
    assign,
    for_,
    if_,
    leaf,
    on_complete,
    seq,
    spec,
    transition,
    while_,
)
from repro.spec.expr import var
from repro.spec.specification import Specification
from repro.spec.types import array_of, int_type
from repro.spec.variable import Role, variable

__all__ = ["answering_machine_specification", "tam_partition", "TAM_INPUTS"]

_I16 = int_type(16)

#: Recorded-audio buffer length (samples per call).
REC_LEN = 6

#: Default stimulus: two calls, a mid-range line profile, wrong code
#: first (so both the record and the playback paths execute across a
#: run with the owner code on the second call).
TAM_INPUTS = {
    "line_profile": 23,
    "num_calls": 2,
    "owner_code": 42,
    "dialled_code": 42,
}


def answering_machine_specification() -> Specification:
    """The answering machine (11 behaviors, 9 internal variables)."""

    init = leaf(
        "Init",
        assign("msg_count", 0),
        assign("rec_sum", 0),
        assign("call_no", 0),
        assign("light_out", 0),
        assign("play_out", 0),
        assign("rec_out", 0),
        doc="power-on defaults, light off",
    )

    wait_ring = leaf(
        "WaitRing",
        assign("rings", 0),
        while_(
            var("rings") < 4,
            [assign("rings", var("rings") + 1)],
            expected=4,
        ),
        assign("answer_at", var("line_profile") % 3 + 2),
        doc="count ring pulses up to the answer threshold",
    )

    play_announce = leaf(
        "PlayAnnounce",
        assign("ann_step", 0),
        for_(
            "i",
            1,
            3,
            [
                assign("ann_step", var("ann_step") + var("i") * 5),
            ],
        ),
        doc="step through the announcement tones",
    )

    record_msg = leaf(
        "RecordMsg",
        assign("rec_idx", 0),
        for_(
            "i",
            0,
            REC_LEN - 1,
            [
                assign(
                    var("rec_buf").index(var("i")),
                    (var("line_profile") * (var("i") + 1) + var("call_no"))
                    % 64,
                ),
                if_(
                    var("rec_buf").index(var("i")) > 5,
                    [assign("rec_idx", var("i") + 1)],
                ),
            ],
        ),
        if_(
            var("rec_idx") > 0,
            [assign("msg_count", var("msg_count") + 1)],
        ),
        doc="record caller audio until silence",
    )

    answer = seq(
        "Answer",
        [play_announce, record_msg],
        transitions=[
            transition("PlayAnnounce", None, "RecordMsg"),
            on_complete("RecordMsg"),
        ],
        doc="announcement then recording",
    )

    check_code = leaf(
        "CheckCode",
        if_(
            var("dialled_code").eq(var("owner_code")),
            [assign("code_ok", 1)],
            [assign("code_ok", 0)],
        ),
        doc="compare the dialled digits with the owner code",
    )

    playback = leaf(
        "Playback",
        if_(
            (var("code_ok").eq(1)).and_(var("msg_count") > 0),
            [
                assign("play_sum", 0),
                for_(
                    "i",
                    0,
                    REC_LEN - 1,
                    [
                        assign(
                            "play_sum",
                            var("play_sum") + var("rec_buf").index(var("i")),
                        ),
                    ],
                ),
                assign("play_out", var("play_sum")),
            ],
        ),
        doc="owner access: play back the recorded audio",
    )

    update_light = leaf(
        "UpdateLight",
        assign("light_out", var("msg_count")),
        assign(
            "rec_sum",
            var("rec_sum") + var("rec_buf").index(0) + var("rec_idx"),
        ),
        assign("rec_out", var("rec_sum")),
        doc="message-waiting light and recording checksum",
    )

    hangup = leaf(
        "Hangup",
        assign("call_no", var("call_no") + 1),
        assign("rings", 0),
        doc="release the line and arm for the next call",
    )

    call_loop = seq(
        "CallLoop",
        [wait_ring, answer, check_code, playback, update_light, hangup],
        transitions=[
            transition("WaitRing", var("rings") >= var("answer_at"),
                       "Answer"),
            transition("WaitRing", var("rings") < var("answer_at"),
                       "Hangup"),
            transition("Answer", None, "CheckCode"),
            transition("CheckCode", var("code_ok").eq(1), "Playback"),
            transition("CheckCode", var("code_ok").eq(0), "UpdateLight"),
            transition("Playback", None, "UpdateLight"),
            transition("UpdateLight", None, "Hangup"),
            on_complete("Hangup"),
        ],
        doc="one incoming call",
    )

    top = seq(
        "TAM",
        [init, call_loop],
        transitions=[
            transition("Init", None, "CallLoop"),
            transition("CallLoop", var("call_no") < var("num_calls"),
                       "CallLoop"),
            on_complete("CallLoop", var("call_no") >= var("num_calls")),
        ],
        doc="telephone answering machine top",
    )

    return spec(
        "AnsweringMachine",
        top,
        variables=[
            variable("line_profile", _I16, init=23, role=Role.INPUT,
                     doc="shape of ring pulses and caller audio"),
            variable("num_calls", _I16, init=2, role=Role.INPUT,
                     doc="calls to process before the run ends"),
            variable("owner_code", _I16, init=42, role=Role.INPUT,
                     doc="the owner's remote-access code"),
            variable("dialled_code", _I16, init=0, role=Role.INPUT,
                     doc="digits the caller dialled"),
            variable("light_out", _I16, init=0, role=Role.OUTPUT,
                     doc="message-waiting light"),
            variable("play_out", _I16, init=0, role=Role.OUTPUT,
                     doc="playback checksum"),
            variable("rec_out", _I16, init=0, role=Role.OUTPUT,
                     doc="recording checksum"),
            # internal state
            variable("rings", _I16, init=0, doc="ring pulses this call"),
            variable("answer_at", _I16, init=2, doc="answer threshold"),
            variable("ann_step", _I16, init=0, doc="announcement position"),
            variable("rec_buf", array_of(_I16, REC_LEN),
                     doc="recorded audio"),
            variable("rec_idx", _I16, init=0, doc="last recorded sample"),
            variable("rec_sum", _I16, init=0, doc="recording checksum acc"),
            variable("msg_count", _I16, init=0, doc="stored messages"),
            variable("code_ok", _I16, init=0, doc="remote access granted"),
            variable("play_sum", _I16, init=0, doc="playback accumulator"),
            variable("call_no", _I16, init=0, doc="calls handled"),
        ],
        doc=(
            "Telephone answering machine - the canonical SpecCharts "
            "example, rebuilt as a control-dominated workload."
        ),
    )


def tam_partition(spec_: Specification) -> Partition:
    """Control on the processor, the audio path on the ASIC (the split
    the SpecSyn papers use for this system)."""
    return Partition.from_mapping(
        spec_,
        {
            "Init": "PROC",
            "WaitRing": "PROC",
            "CheckCode": "PROC",
            "UpdateLight": "PROC",
            "Hangup": "PROC",
            "PlayAnnounce": "ASIC",
            "RecordMsg": "ASIC",
            "Playback": "ASIC",
            "rings": "PROC",
            "answer_at": "PROC",
            "code_ok": "PROC",
            "msg_count": "PROC",
            "call_no": "PROC",
            "rec_sum": "PROC",
            "ann_step": "ASIC",
            "rec_buf": "ASIC",
            "rec_idx": "ASIC",
            "play_sum": "ASIC",
        },
        name="tam",
    )
