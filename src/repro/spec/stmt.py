"""Statement AST for leaf behaviors and subprograms.

The statement set matches the VHDL sequential subset the paper's leaf
behaviors use (assignments, branching, loops) plus the synchronisation
statements the refinement procedures *introduce*: signal assignment and
``wait`` (the ``wait until B_start = '1'`` / ``B_done <= '1'`` pairs of
Figure 4, and the bus-level transfers of Figure 5d).

Statement bodies are stored as tuples so a statement list is immutable
once built; transformers in :mod:`repro.spec.visitor` produce new
tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import SpecError
from repro.spec.expr import Expr, Index, VarRef

__all__ = [
    "Stmt",
    "Body",
    "Assign",
    "SignalAssign",
    "If",
    "While",
    "For",
    "Wait",
    "CallStmt",
    "Null",
    "body",
    "lvalue_name",
]

#: A statement body: an immutable sequence of statements.
Body = Tuple["Stmt", ...]


def body(statements: Sequence["Stmt"]) -> Body:
    """Normalise a statement sequence into a :data:`Body` tuple."""
    out = tuple(statements)
    for stmt in out:
        if not isinstance(stmt, Stmt):
            raise SpecError(f"{stmt!r} is not a statement")
    return out


class Stmt:
    """Base class of all statement nodes."""

    def child_bodies(self) -> Tuple[Body, ...]:
        """Nested statement bodies, for generic tree walks."""
        return ()

    def expressions(self) -> Tuple[Expr, ...]:
        """Expressions evaluated directly by this statement (not by
        statements nested inside it)."""
        return ()


def _check_lvalue(target: Expr) -> None:
    if isinstance(target, VarRef):
        return
    if isinstance(target, Index) and isinstance(target.base, VarRef):
        return
    raise SpecError(f"{target} is not assignable (need a variable or array element)")


def lvalue_name(target: Expr) -> str:
    """The variable name an lvalue ultimately writes to."""
    if isinstance(target, VarRef):
        return target.name
    if isinstance(target, Index) and isinstance(target.base, VarRef):
        return target.base.name
    raise SpecError(f"{target} is not an lvalue")


@dataclass(frozen=True)
class Assign(Stmt):
    """Variable assignment ``target := value`` (immediate update)."""

    target: Expr
    value: Expr

    def __post_init__(self):
        _check_lvalue(self.target)

    def expressions(self) -> Tuple[Expr, ...]:
        return (self.target, self.value)

    def __str__(self) -> str:
        return f"{self.target} := {self.value};"


@dataclass(frozen=True)
class SignalAssign(Stmt):
    """Signal assignment ``target <= value`` (takes effect at the next
    delta cycle, VHDL style).

    Refinement uses signals for everything visible across partitions:
    ``B_start``/``B_done`` control handshakes and all bus lines.
    """

    target: Expr
    value: Expr

    def __post_init__(self):
        _check_lvalue(self.target)

    def expressions(self) -> Tuple[Expr, ...]:
        return (self.target, self.value)

    def __str__(self) -> str:
        return f"{self.target} <= {self.value};"


@dataclass(frozen=True)
class If(Stmt):
    """Conditional with optional ``elsif`` arms and ``else`` body."""

    cond: Expr
    then_body: Body
    elifs: Tuple[Tuple[Expr, Body], ...] = ()
    else_body: Body = ()

    def child_bodies(self) -> Tuple[Body, ...]:
        bodies = [self.then_body]
        bodies.extend(arm_body for _, arm_body in self.elifs)
        if self.else_body:
            bodies.append(self.else_body)
        return tuple(bodies)

    def expressions(self) -> Tuple[Expr, ...]:
        return (self.cond,) + tuple(cond for cond, _ in self.elifs)

    def __str__(self) -> str:
        return f"if {self.cond} then ... end if;"


@dataclass(frozen=True)
class While(Stmt):
    """Pre-tested loop.

    ``expected_iterations`` is an optional annotation consumed by the
    static estimator when no simulation profile is available; it has no
    effect on semantics.
    """

    cond: Expr
    loop_body: Body
    expected_iterations: Optional[int] = None

    def child_bodies(self) -> Tuple[Body, ...]:
        return (self.loop_body,)

    def expressions(self) -> Tuple[Expr, ...]:
        return (self.cond,)

    def __str__(self) -> str:
        return f"while {self.cond} loop ... end loop;"


@dataclass(frozen=True)
class For(Stmt):
    """Counted loop over the inclusive range ``start .. stop`` (VHDL
    ``for i in start to stop``).

    The loop variable is implicitly declared and scoped to the body.
    """

    variable: str
    start: Expr
    stop: Expr
    loop_body: Body

    def __post_init__(self):
        if not self.variable:
            raise SpecError("for-loop needs a loop variable name")

    def child_bodies(self) -> Tuple[Body, ...]:
        return (self.loop_body,)

    def expressions(self) -> Tuple[Expr, ...]:
        return (self.start, self.stop)

    def __str__(self) -> str:
        return f"for {self.variable} in {self.start} to {self.stop} loop ... end loop;"


@dataclass(frozen=True)
class Wait(Stmt):
    """Suspend the executing behavior.

    Exactly one of the three forms is used:

    * ``Wait(until=cond)``   — resume when ``cond`` becomes true
      (re-evaluated whenever a referenced signal changes);
    * ``Wait(on=(s1, s2))``  — resume on any event on the named signals;
    * ``Wait(delay=n)``      — resume after ``n`` time units.
    """

    until: Optional[Expr] = None
    on: Tuple[str, ...] = ()
    delay: Optional[int] = None

    def __post_init__(self):
        forms = sum((self.until is not None, bool(self.on), self.delay is not None))
        if forms != 1:
            raise SpecError(
                "wait statement needs exactly one of until=/on=/delay=, "
                f"got until={self.until}, on={self.on}, delay={self.delay}"
            )
        if self.delay is not None and self.delay < 0:
            raise SpecError(f"wait delay must be >= 0, got {self.delay}")

    def expressions(self) -> Tuple[Expr, ...]:
        return (self.until,) if self.until is not None else ()

    def __str__(self) -> str:
        if self.until is not None:
            return f"wait until {self.until};"
        if self.on:
            return f"wait on {', '.join(self.on)};"
        return f"wait for {self.delay};"


@dataclass(frozen=True)
class CallStmt(Stmt):
    """Subprogram (procedure) call.

    Arguments bind positionally to the callee's parameters; arguments
    bound to ``out``/``inout`` parameters must be lvalues.  The protocol
    subroutines the data-related refinement generates (``MST_send``,
    ``MST_receive``, ``SLV_send``, ``SLV_receive`` — Figure 5d) are
    called through this node.
    """

    callee: str
    args: Tuple[Expr, ...] = ()

    def __post_init__(self):
        if not self.callee:
            raise SpecError("call statement needs a callee name")

    def expressions(self) -> Tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        rendered = ", ".join(str(arg) for arg in self.args)
        return f"{self.callee}({rendered});"


@dataclass(frozen=True)
class Null(Stmt):
    """The empty statement (placeholder body)."""

    def __str__(self) -> str:
        return "null;"
