"""Generic walkers and transformers over statement/expression trees.

Refinement is tree surgery; these helpers keep each refiner focused on
*what* to rewrite rather than on recursion plumbing.  Statements and
expressions are immutable, so every transformer returns new nodes and
leaves inputs untouched.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Sequence, Tuple

from repro.errors import SpecError
from repro.spec.expr import Expr
from repro.spec.stmt import (
    Assign,
    Body,
    CallStmt,
    For,
    If,
    Null,
    SignalAssign,
    Stmt,
    Wait,
    While,
    body as make_body,
)

__all__ = [
    "walk_statements",
    "walk_expressions",
    "count_statements",
    "transform_body",
    "map_expressions",
    "statement_reads",
    "statement_writes",
    "body_variable_accesses",
]


def walk_statements(stmts: Body) -> Iterator[Stmt]:
    """Yield every statement in ``stmts``, recursing into nested bodies,
    pre-order."""
    for stmt in stmts:
        yield stmt
        for nested in stmt.child_bodies():
            yield from walk_statements(nested)


def walk_expressions(stmts: Body) -> Iterator[Expr]:
    """Yield every expression evaluated anywhere inside ``stmts``,
    including sub-expressions."""
    for stmt in walk_statements(stmts):
        for expr in stmt.expressions():
            yield from expr.walk()


def count_statements(stmts: Body) -> int:
    """Total statement count including nested bodies."""
    return sum(1 for _ in walk_statements(stmts))


def transform_body(
    stmts: Body, fn: Callable[[Stmt], Sequence[Stmt]]
) -> Body:
    """Rebuild ``stmts`` bottom-up, replacing each statement by the
    sequence ``fn(stmt)`` returns.

    ``fn`` receives statements whose nested bodies have *already* been
    transformed, and returns a sequence so a single statement may expand
    into several — the shape of data-related refinement, where one
    remote read becomes ``MST_receive`` plus a temporary assignment.
    Returning ``[stmt]`` unchanged keeps the statement.
    """
    out: List[Stmt] = []
    for stmt in stmts:
        rebuilt = _rebuild_children(stmt, fn)
        replacement = fn(rebuilt)
        out.extend(replacement)
    return make_body(out)


def _rebuild_children(stmt: Stmt, fn: Callable[[Stmt], Sequence[Stmt]]) -> Stmt:
    if isinstance(stmt, If):
        return If(
            cond=stmt.cond,
            then_body=transform_body(stmt.then_body, fn),
            elifs=tuple(
                (cond, transform_body(arm, fn)) for cond, arm in stmt.elifs
            ),
            else_body=transform_body(stmt.else_body, fn),
        )
    if isinstance(stmt, While):
        return While(
            cond=stmt.cond,
            loop_body=transform_body(stmt.loop_body, fn),
            expected_iterations=stmt.expected_iterations,
        )
    if isinstance(stmt, For):
        return For(
            variable=stmt.variable,
            start=stmt.start,
            stop=stmt.stop,
            loop_body=transform_body(stmt.loop_body, fn),
        )
    return stmt


def map_expressions(stmt: Stmt, fn: Callable[[Expr], Expr]) -> Stmt:
    """Rebuild ``stmt`` with every *directly evaluated* expression mapped
    through ``fn`` (nested bodies are not touched — combine with
    :func:`transform_body` for deep rewrites)."""
    if isinstance(stmt, Assign):
        return Assign(fn(stmt.target), fn(stmt.value))
    if isinstance(stmt, SignalAssign):
        return SignalAssign(fn(stmt.target), fn(stmt.value))
    if isinstance(stmt, If):
        return If(
            cond=fn(stmt.cond),
            then_body=stmt.then_body,
            elifs=tuple((fn(cond), arm) for cond, arm in stmt.elifs),
            else_body=stmt.else_body,
        )
    if isinstance(stmt, While):
        return While(fn(stmt.cond), stmt.loop_body, stmt.expected_iterations)
    if isinstance(stmt, For):
        return For(stmt.variable, fn(stmt.start), fn(stmt.stop), stmt.loop_body)
    if isinstance(stmt, Wait):
        if stmt.until is not None:
            return Wait(until=fn(stmt.until))
        return stmt
    if isinstance(stmt, CallStmt):
        return CallStmt(stmt.callee, tuple(fn(arg) for arg in stmt.args))
    if isinstance(stmt, Null):
        return stmt
    raise SpecError(f"unknown statement node {stmt!r}")


# -- access extraction --------------------------------------------------------


def statement_reads(stmt: Stmt) -> List[str]:
    """Variable names this statement reads directly (its own expressions,
    excluding write targets but including array write indices)."""
    from repro.spec.expr import Index, free_variables

    reads: List[str] = []
    if isinstance(stmt, (Assign, SignalAssign)):
        reads.extend(sorted(free_variables(stmt.value)))
        if isinstance(stmt.target, Index):
            reads.extend(sorted(free_variables(stmt.target.index_expr)))
        return reads
    for expr in stmt.expressions():
        reads.extend(sorted(free_variables(expr)))
    return reads


def statement_writes(stmt: Stmt) -> List[str]:
    """Variable names this statement writes directly."""
    from repro.spec.stmt import lvalue_name

    if isinstance(stmt, (Assign, SignalAssign)):
        return [lvalue_name(stmt.target)]
    return []


def body_variable_accesses(stmts: Body) -> Tuple[dict, dict]:
    """Aggregate static access counts of a body.

    Returns ``(reads, writes)`` dictionaries mapping variable name to
    the number of *textual* access sites (loop multiplicities are the
    estimator's job, not this function's).
    """
    reads: dict = {}
    writes: dict = {}
    for stmt in walk_statements(stmts):
        for name in statement_reads(stmt):
            reads[name] = reads.get(name, 0) + 1
        for name in statement_writes(stmt):
            writes[name] = writes.get(name, 0) + 1
    return reads, writes
