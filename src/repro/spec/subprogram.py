"""Subprograms (VHDL-style procedures).

Data-related refinement encapsulates bus protocols in subroutines —
``MST_send``, ``MST_receive``, ``SLV_send``, ``SLV_receive`` in the
paper's Figure 5d — so the IR needs procedures with directed parameters.
Parameters bind positionally; ``out``/``inout`` arguments copy back into
the caller's lvalue when the call returns (copy-in/copy-out semantics,
which is sufficient because protocol bodies never alias parameters).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import SpecError
from repro.spec.stmt import Body, body as make_body
from repro.spec.types import DataType
from repro.spec.variable import Variable

__all__ = ["Direction", "Param", "Subprogram"]


class Direction(enum.Enum):
    """Parameter passing direction."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"


@dataclass(frozen=True)
class Param:
    """A formal parameter of a subprogram."""

    name: str
    dtype: DataType
    direction: Direction = Direction.IN

    def __post_init__(self):
        if not self.name or not self.name.isidentifier():
            raise SpecError(f"invalid parameter name {self.name!r}")

    def __str__(self) -> str:
        return f"{self.name} : {self.direction.value} {self.dtype}"


@dataclass
class Subprogram:
    """A named procedure with directed parameters and local declarations."""

    name: str
    params: Tuple[Param, ...]
    stmt_body: Body
    decls: Tuple[Variable, ...] = ()
    doc: str = ""

    def __init__(
        self,
        name: str,
        params: Sequence[Param] = (),
        stmt_body: Sequence = (),
        decls: Sequence[Variable] = (),
        doc: str = "",
    ):
        if not name or not name.isidentifier():
            raise SpecError(f"invalid subprogram name {name!r}")
        seen = set()
        for param in params:
            if param.name in seen:
                raise SpecError(
                    f"duplicate parameter {param.name!r} in subprogram {name!r}"
                )
            seen.add(param.name)
        self.name = name
        self.params = tuple(params)
        self.stmt_body = make_body(stmt_body)
        self.decls = tuple(decls)
        self.doc = doc

    @property
    def arity(self) -> int:
        return len(self.params)

    def out_param_indices(self) -> Tuple[int, ...]:
        """Positions whose arguments must be lvalues at every call site."""
        return tuple(
            i
            for i, param in enumerate(self.params)
            if param.direction in (Direction.OUT, Direction.INOUT)
        )

    def copy(self) -> "Subprogram":
        """An independent copy (bodies are immutable and shared);
        carries any provenance stamp (:mod:`repro.obs.provenance`)."""
        clone = Subprogram(
            self.name,
            self.params,
            self.stmt_body,
            tuple(decl.copy() for decl in self.decls),
            self.doc,
        )
        record = getattr(self, "_provenance", None)
        if record is not None:
            clone._provenance = record
        return clone

    def __str__(self) -> str:
        rendered = ", ".join(str(param) for param in self.params)
        return f"procedure {self.name}({rendered})"
