"""Semantic validation of specifications.

Checks that the refiners (and the simulator) rely on:

* every name referenced from a behavior resolves under lexical scoping;
* variable assignments (``:=``) target variables, signal assignments
  (``<=``) target signals;
* transitions reference sibling behaviors and only occur in sequential
  composites; conditions only read visible names;
* subprogram calls match the callee's arity, and arguments bound to
  ``out``/``inout`` parameters are lvalues on variables writable at the
  call site;
* behavior names are unique specification-wide (the paper addresses
  behaviors by bare name, e.g. ``B_CTRL`` targets ``B_NEW``);
* ``wait`` statements reference existing signals.

Validation raises the most specific :class:`repro.errors.SpecError`
subtype with a message naming the offending behavior.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.errors import ScopeError, SpecError, TypeMismatchError
from repro.spec.behavior import Behavior, CompositeBehavior, LeafBehavior
from repro.spec.expr import Expr, Index, VarRef, free_variables
from repro.spec.specification import Specification
from repro.spec.stmt import (
    Assign,
    Body,
    CallStmt,
    For,
    If,
    Null,
    SignalAssign,
    Stmt,
    Wait,
    While,
    lvalue_name,
)
from repro.spec.subprogram import Subprogram
from repro.spec.variable import StorageClass

__all__ = ["validate_specification"]


def validate_specification(spec: Specification) -> None:
    """Run every check; raises on the first violation."""
    spec.link()
    _check_unique_behavior_names(spec)
    _check_declarations(spec)
    for behavior in spec.behaviors():
        if isinstance(behavior, CompositeBehavior):
            _check_transitions(spec, behavior)
        elif isinstance(behavior, LeafBehavior):
            _check_body(spec, behavior, behavior.stmt_body, extra_names=set())
    for sub in spec.subprograms.values():
        _check_subprogram(spec, sub)


def _check_unique_behavior_names(spec: Specification) -> None:
    seen: Set[str] = set()
    for behavior in spec.behaviors():
        if behavior.name in seen:
            raise SpecError(
                f"behavior name {behavior.name!r} is declared more than once"
            )
        seen.add(behavior.name)


def _check_declarations(spec: Specification) -> None:
    global_names = [v.name for v in spec.variables]
    if len(set(global_names)) != len(global_names):
        raise SpecError(f"duplicate global declarations: {sorted(global_names)}")
    for behavior in spec.behaviors():
        local_names = [d.name for d in behavior.decls]
        if len(set(local_names)) != len(local_names):
            raise SpecError(
                f"behavior {behavior.name!r} has duplicate declarations: {local_names}"
            )


def _check_transitions(spec: Specification, composite: CompositeBehavior) -> None:
    if composite.is_concurrent:
        if composite.transitions:
            raise SpecError(
                f"concurrent composite {composite.name!r} carries transitions"
            )
        return
    child_names = {sub.name for sub in composite.subs}
    for t in composite.transitions:
        if t.source not in child_names:
            raise SpecError(
                f"transition {t!r} in {composite.name!r}: source is not a child"
            )
        if t.target is not None and t.target not in child_names:
            raise SpecError(
                f"transition {t!r} in {composite.name!r}: target is not a child"
            )
        if t.condition is not None:
            _check_expression_scope(spec, composite, t.condition, extra_names=set())


def _check_expression_scope(
    spec: Specification,
    scope: Behavior,
    expr: Expr,
    extra_names: Set[str],
) -> None:
    for name in free_variables(expr):
        if name in extra_names:
            continue
        spec.resolve(name, scope)  # raises ScopeError on failure
    for node in expr.walk():
        if isinstance(node, Index) and not isinstance(node.base, VarRef):
            raise SpecError(
                f"array access base must be a variable reference, got {node.base}"
            )


def _resolve_kind(
    spec: Specification,
    scope: Optional[Behavior],
    name: str,
    extra_names: Set[str],
) -> Optional[StorageClass]:
    """Storage class of ``name`` seen from ``scope``; ``None`` for names
    bound by the enclosing construct (loop variables, parameters)."""
    if name in extra_names:
        return None
    if scope is not None:
        return spec.resolve(name, scope).kind
    found = spec.global_variable(name)
    if found is None:
        raise ScopeError(f"name {name!r} is not declared")
    return found.kind


def _check_body(
    spec: Specification,
    scope: Behavior,
    stmts: Body,
    extra_names: Set[str],
) -> None:
    for stmt in stmts:
        _check_statement(spec, scope, stmt, extra_names)


def _check_statement(
    spec: Specification,
    scope: Behavior,
    stmt: Stmt,
    extra_names: Set[str],
) -> None:
    for expr in stmt.expressions():
        _check_expression_scope(spec, scope, expr, extra_names)

    if isinstance(stmt, Assign):
        target = lvalue_name(stmt.target)
        kind = _resolve_kind(spec, scope, target, extra_names)
        if kind is StorageClass.SIGNAL:
            raise TypeMismatchError(
                f"in {scope.name!r}: ':=' cannot target signal {target!r}; "
                "use a signal assignment '<='"
            )
        if kind is None and target in extra_names:
            raise SpecError(
                f"in {scope.name!r}: cannot assign to loop variable {target!r}"
            )
    elif isinstance(stmt, SignalAssign):
        target = lvalue_name(stmt.target)
        kind = _resolve_kind(spec, scope, target, extra_names)
        if kind is not StorageClass.SIGNAL:
            raise TypeMismatchError(
                f"in {scope.name!r}: '<=' must target a signal, "
                f"but {target!r} is not one"
            )
    elif isinstance(stmt, If):
        _check_body(spec, scope, stmt.then_body, extra_names)
        for _, arm in stmt.elifs:
            _check_body(spec, scope, arm, extra_names)
        _check_body(spec, scope, stmt.else_body, extra_names)
    elif isinstance(stmt, While):
        _check_body(spec, scope, stmt.loop_body, extra_names)
    elif isinstance(stmt, For):
        inner = set(extra_names)
        inner.add(stmt.variable)
        _check_body(spec, scope, stmt.loop_body, inner)
    elif isinstance(stmt, Wait):
        if stmt.on:
            for name in stmt.on:
                kind = _resolve_kind(spec, scope, name, extra_names)
                if kind is not StorageClass.SIGNAL:
                    raise TypeMismatchError(
                        f"in {scope.name!r}: wait on non-signal {name!r}"
                    )
    elif isinstance(stmt, CallStmt):
        _check_call(spec, scope, stmt, extra_names)
    elif isinstance(stmt, Null):
        pass
    else:
        raise SpecError(f"unknown statement node {stmt!r}")


def _check_call(
    spec: Specification,
    scope: Behavior,
    stmt: CallStmt,
    extra_names: Set[str],
) -> None:
    callee = spec.subprograms.get(stmt.callee)
    if callee is None:
        raise SpecError(
            f"in {scope.name!r}: call to undeclared subprogram {stmt.callee!r}"
        )
    if len(stmt.args) != callee.arity:
        raise SpecError(
            f"in {scope.name!r}: {stmt.callee!r} expects {callee.arity} "
            f"argument(s), got {len(stmt.args)}"
        )
    for index in callee.out_param_indices():
        arg = stmt.args[index]
        if not isinstance(arg, (VarRef, Index)):
            raise SpecError(
                f"in {scope.name!r}: argument {index} of {stmt.callee!r} binds an "
                f"out parameter and must be an lvalue, got {arg}"
            )
        target = lvalue_name(arg)
        _resolve_kind(spec, scope, target, extra_names)


def _check_subprogram(spec: Specification, sub: Subprogram) -> None:
    """Subprogram bodies resolve against parameters, local declarations
    and the global scope only."""
    visible: Set[str] = {p.name for p in sub.params}
    visible.update(d.name for d in sub.decls)
    local_kind: Dict[str, StorageClass] = {p.name: StorageClass.VARIABLE for p in sub.params}
    local_kind.update({d.name: d.kind for d in sub.decls})

    def kind_of(name: str) -> StorageClass:
        if name in local_kind:
            return local_kind[name]
        found = spec.global_variable(name)
        if found is None:
            raise ScopeError(
                f"in subprogram {sub.name!r}: name {name!r} is not declared"
            )
        return found.kind

    def check_stmts(stmts: Body, loop_vars: Set[str]) -> None:
        for stmt in stmts:
            for expr in stmt.expressions():
                for name in free_variables(expr):
                    if name not in loop_vars:
                        kind_of(name)
            if isinstance(stmt, Assign):
                target = lvalue_name(stmt.target)
                if target not in loop_vars and kind_of(target) is StorageClass.SIGNAL:
                    raise TypeMismatchError(
                        f"in subprogram {sub.name!r}: ':=' targets signal {target!r}"
                    )
            elif isinstance(stmt, SignalAssign):
                target = lvalue_name(stmt.target)
                if target in loop_vars or kind_of(target) is not StorageClass.SIGNAL:
                    raise TypeMismatchError(
                        f"in subprogram {sub.name!r}: '<=' targets non-signal "
                        f"{target!r}"
                    )
            elif isinstance(stmt, CallStmt):
                callee = spec.subprograms.get(stmt.callee)
                if callee is None:
                    raise SpecError(
                        f"in subprogram {sub.name!r}: call to undeclared "
                        f"subprogram {stmt.callee!r}"
                    )
                if len(stmt.args) != callee.arity:
                    raise SpecError(
                        f"in subprogram {sub.name!r}: {stmt.callee!r} expects "
                        f"{callee.arity} argument(s), got {len(stmt.args)}"
                    )
            if isinstance(stmt, For):
                check_stmts(stmt.loop_body, loop_vars | {stmt.variable})
            else:
                for nested in stmt.child_bodies():
                    check_stmts(nested, loop_vars)

    check_stmts(sub.stmt_body, set())
