"""The top-level specification container.

A :class:`Specification` bundles the behavior tree, globally declared
variables/signals and subprograms — everything the paper calls "the
specification".  It owns name resolution: a variable reference inside a
behavior resolves to the innermost declaration on the behavior, one of
its ancestors, or the global scope (SpecCharts/VHDL lexical scoping).

Refinement never mutates the input specification; it works on
``spec.copy()`` and returns the transformed copy.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ScopeError, SpecError
from repro.spec.behavior import Behavior, CompositeBehavior, LeafBehavior
from repro.spec.subprogram import Subprogram
from repro.spec.variable import Role, Variable

__all__ = ["Specification", "SpecStats"]


class SpecStats:
    """Structural statistics of a specification (the numbers §5 quotes
    for the medical system: behavior/variable/channel/line counts)."""

    def __init__(
        self,
        behaviors: int,
        leaf_behaviors: int,
        variables: int,
        signals: int,
        subprograms: int,
        transitions: int,
        statements: int,
    ):
        self.behaviors = behaviors
        self.leaf_behaviors = leaf_behaviors
        self.variables = variables
        self.signals = signals
        self.subprograms = subprograms
        self.transitions = transitions
        self.statements = statements

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"SpecStats({fields})"


class Specification:
    """A complete SpecCharts-like specification."""

    def __init__(
        self,
        name: str,
        top: Behavior,
        variables: Sequence[Variable] = (),
        subprograms: Sequence[Subprogram] = (),
        doc: str = "",
    ):
        if not name or not name.isidentifier():
            raise SpecError(f"invalid specification name {name!r}")
        self.name = name
        self.top = top
        self.variables: List[Variable] = list(variables)
        self.subprograms: Dict[str, Subprogram] = {}
        for sub in subprograms:
            self.add_subprogram(sub)
        self.doc = doc
        self.link()

    # -- structure maintenance ----------------------------------------------

    def link(self) -> None:
        """(Re)establish parent links throughout the behavior tree.

        Must be called after structural surgery that bypasses the
        mutator methods on :class:`CompositeBehavior`.
        """
        self.top.parent = None
        for node in self.top.iter_tree():
            if isinstance(node, CompositeBehavior):
                for sub in node.subs:
                    sub.parent = node

    def copy(self) -> "Specification":
        """Deep copy; the result shares no mutable state with the original."""
        return Specification(
            self.name,
            self.top.copy(),
            [v.copy() for v in self.variables],
            [s.copy() for s in self.subprograms.values()],
            self.doc,
        )

    # -- name resolution ------------------------------------------------------

    def global_variable(self, name: str) -> Optional[Variable]:
        """The globally declared variable/signal named ``name``, if any."""
        for var in self.variables:
            if var.name == name:
                return var
        return None

    def add_global(self, var: Variable) -> Variable:
        """Declare a variable/signal at specification scope."""
        if self.global_variable(var.name) is not None:
            raise SpecError(f"specification already declares global {var.name!r}")
        self.variables.append(var)
        return var

    def add_subprogram(self, sub: Subprogram) -> Subprogram:
        """Register a subprogram; duplicate names are rejected."""
        if sub.name in self.subprograms:
            raise SpecError(f"specification already declares subprogram {sub.name!r}")
        self.subprograms[sub.name] = sub
        return sub

    def ensure_subprogram(self, sub: Subprogram) -> Subprogram:
        """Register ``sub`` unless an identically named one already exists.

        Refinement instantiates one protocol subroutine set per bus; the
        same subroutine may be requested by several refiners.
        """
        existing = self.subprograms.get(sub.name)
        if existing is not None:
            return existing
        return self.add_subprogram(sub)

    def resolve(self, name: str, scope: Behavior) -> Variable:
        """Resolve ``name`` from inside ``scope`` following lexical scoping.

        Raises :class:`ScopeError` when the name is not visible — which
        is exactly the situation data-related refinement creates when a
        variable moves to another partition's memory (the paper:
        "the definition of x is no longer visible to behavior B").
        """
        node: Optional[Behavior] = scope
        while node is not None:
            found = node.declared(name)
            if found is not None:
                return found
            node = node.parent
        found = self.global_variable(name)
        if found is not None:
            return found
        raise ScopeError(
            f"name {name!r} is not visible from behavior {scope.name!r}"
        )

    def declaring_behavior(self, name: str, scope: Behavior) -> Optional[Behavior]:
        """The behavior whose declaration of ``name`` is visible from
        ``scope``; ``None`` when the declaration is global."""
        node: Optional[Behavior] = scope
        while node is not None:
            if node.declared(name) is not None:
                return node
            node = node.parent
        if self.global_variable(name) is not None:
            return None
        raise ScopeError(
            f"name {name!r} is not visible from behavior {scope.name!r}"
        )

    # -- queries ---------------------------------------------------------------

    def find_behavior(self, name: str) -> Behavior:
        """The unique behavior named ``name`` (raises if absent)."""
        found = self.top.find(name)
        if found is None:
            raise SpecError(f"specification has no behavior named {name!r}")
        return found

    def has_behavior(self, name: str) -> bool:
        return self.top.find(name) is not None

    def behaviors(self) -> Iterator[Behavior]:
        """All behaviors, pre-order from the root."""
        return self.top.iter_tree()

    def leaf_behaviors(self) -> Iterator[LeafBehavior]:
        """All leaf behaviors."""
        for node in self.behaviors():
            if isinstance(node, LeafBehavior):
                yield node

    def all_declared_variables(self) -> Iterator[Tuple[Optional[Behavior], Variable]]:
        """Every declaration as ``(declaring_behavior, variable)``;
        global declarations carry ``None`` as the behavior."""
        for var in self.variables:
            yield None, var
        for node in self.behaviors():
            for decl in node.decls:
                yield node, decl

    def inputs(self) -> List[Variable]:
        """Globally declared input variables (stimulus points)."""
        return [v for v in self.variables if v.role is Role.INPUT]

    def outputs(self) -> List[Variable]:
        """Globally declared output variables (observation points)."""
        return [v for v in self.variables if v.role is Role.OUTPUT]

    def stats(self) -> SpecStats:
        """Structural statistics (see :class:`SpecStats`)."""
        behaviors = 0
        leaves = 0
        transitions = 0
        statements = 0
        variables = sum(1 for v in self.variables if not v.is_signal)
        signals = sum(1 for v in self.variables if v.is_signal)
        from repro.spec.visitor import count_statements

        for node in self.behaviors():
            behaviors += 1
            variables += sum(1 for d in node.decls if not d.is_signal)
            signals += sum(1 for d in node.decls if d.is_signal)
            if isinstance(node, LeafBehavior):
                leaves += 1
                statements += count_statements(node.stmt_body)
            elif isinstance(node, CompositeBehavior):
                transitions += len(node.transitions)
        for sub in self.subprograms.values():
            statements += count_statements(sub.stmt_body)
        return SpecStats(
            behaviors=behaviors,
            leaf_behaviors=leaves,
            variables=variables,
            signals=signals,
            subprograms=len(self.subprograms),
            transitions=transitions,
            statements=statements,
        )

    def validate(self) -> None:
        """Run the full semantic checker (see :mod:`repro.spec.validate`)."""
        from repro.spec.validate import validate_specification

        validate_specification(self)

    def line_count(self) -> int:
        """Number of lines of the printed textual form — the size metric
        of the paper's Figure 10."""
        from repro.lang.printer import print_specification

        return len(print_specification(self).splitlines())

    def __repr__(self) -> str:
        return f"<Specification {self.name!r} top={self.top.name!r}>"
