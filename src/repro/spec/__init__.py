"""SpecCharts-like specification IR.

Public surface of the specification model: data types, expressions,
statements, behaviors, subprograms and the :class:`Specification`
container, plus the builder DSL.
"""

from repro.spec.behavior import (
    Behavior,
    CompositeBehavior,
    CompositionMode,
    LeafBehavior,
    Transition,
)
from repro.spec.expr import (
    BinOp,
    Const,
    Expr,
    Index,
    UnaryOp,
    VarRef,
    const,
    free_variables,
    substitute,
    var,
)
from repro.spec.specification import Specification, SpecStats
from repro.spec.stmt import (
    Assign,
    CallStmt,
    For,
    If,
    Null,
    SignalAssign,
    Stmt,
    Wait,
    While,
)
from repro.spec.subprogram import Direction, Param, Subprogram
from repro.spec.types import (
    ArrayType,
    BitVectorType,
    BoolType,
    DataType,
    EnumType,
    IntType,
    BIT,
    BOOL,
    array_of,
    bits,
    int_type,
)
from repro.spec.variable import Role, StorageClass, Variable, signal, variable

__all__ = [
    # behaviors
    "Behavior",
    "CompositeBehavior",
    "CompositionMode",
    "LeafBehavior",
    "Transition",
    # expressions
    "BinOp",
    "Const",
    "Expr",
    "Index",
    "UnaryOp",
    "VarRef",
    "const",
    "free_variables",
    "substitute",
    "var",
    # statements
    "Assign",
    "CallStmt",
    "For",
    "If",
    "Null",
    "SignalAssign",
    "Stmt",
    "Wait",
    "While",
    # subprograms
    "Direction",
    "Param",
    "Subprogram",
    # container
    "Specification",
    "SpecStats",
    # types
    "ArrayType",
    "BitVectorType",
    "BoolType",
    "DataType",
    "EnumType",
    "IntType",
    "BIT",
    "BOOL",
    "array_of",
    "bits",
    "int_type",
    # variables
    "Role",
    "StorageClass",
    "Variable",
    "signal",
    "variable",
]
