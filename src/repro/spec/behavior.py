"""Hierarchical behaviors — the SpecCharts program structure.

A specification is a tree of behaviors (paper §2):

* **leaf behaviors** hold a sequential statement body (the VHDL subset);
* **composite behaviors** hold sub-behaviors composed either
  *sequentially* (exactly one child active at a time, control moves
  along *transitions* ``src:(cond,dst)`` when the active child
  completes) or *concurrently* (all children active, the composite
  completes when every child completes).

Transitions are the paper's implicit control channels: ``A:(x>1,B)``
means "after A completes, if ``x>1`` then B executes".  A transition
with target ``None`` is a *transition-on-completion* of the whole
composite.  When a child completes and **no** transition condition
holds, the composite completes (the common terminal case) — unless the
child has a ``None``-target arc, which makes completion explicit.

Behaviors are mutable containers (refinement rewrites the tree in a
cloned specification) while statements/expressions inside them are
immutable.
"""

from __future__ import annotations

import enum
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import SpecError
from repro.spec.expr import Expr
from repro.spec.stmt import Body, Stmt, body as make_body
from repro.spec.variable import Variable

__all__ = [
    "CompositionMode",
    "Transition",
    "Behavior",
    "LeafBehavior",
    "CompositeBehavior",
]


class CompositionMode(enum.Enum):
    """How a composite behavior schedules its children."""

    SEQUENTIAL = "sequential"
    CONCURRENT = "concurrent"


class Transition:
    """A control arc ``source:(condition, target)`` inside a sequential
    composite.

    ``condition`` of ``None`` means unconditional; ``target`` of ``None``
    means "complete the enclosing composite".
    """

    __slots__ = ("source", "condition", "target")

    def __init__(self, source: str, condition: Optional[Expr], target: Optional[str]):
        if not source:
            raise SpecError("transition needs a source behavior name")
        if condition is not None and not isinstance(condition, Expr):
            raise SpecError(f"transition condition must be an Expr, got {condition!r}")
        self.source = source
        self.condition = condition
        self.target = target

    @property
    def is_completion(self) -> bool:
        """True when this arc completes the enclosing composite."""
        return self.target is None

    def copy(self) -> "Transition":
        return Transition(self.source, self.condition, self.target)

    def __repr__(self) -> str:
        cond = str(self.condition) if self.condition is not None else "true"
        target = self.target if self.target is not None else "<complete>"
        return f"{self.source}:({cond},{target})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Transition)
            and self.source == other.source
            and self.condition == other.condition
            and self.target == other.target
        )

    def __hash__(self) -> int:
        return hash((self.source, self.condition, self.target))


class Behavior:
    """Base class of leaf and composite behaviors."""

    def __init__(self, name: str, decls: Sequence[Variable] = (), doc: str = ""):
        if not name or not name.isidentifier():
            raise SpecError(f"invalid behavior name {name!r}")
        self.name = name
        self.decls: List[Variable] = list(decls)
        self.doc = doc
        #: Set by Specification.link(); None for an unlinked tree or root.
        self.parent: Optional["CompositeBehavior"] = None
        #: Daemon behaviors are endless servers inserted by refinement
        #: (memories, arbiters, bus interfaces, B_NEW wrappers); a
        #: concurrent composite completes without waiting for them.
        self.daemon: bool = False

    # -- structure ---------------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        raise NotImplementedError

    def children(self) -> Tuple["Behavior", ...]:
        return ()

    def iter_tree(self) -> Iterator["Behavior"]:
        """This behavior and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.iter_tree()

    def find(self, name: str) -> Optional["Behavior"]:
        """First behavior named ``name`` in this subtree, or None."""
        for node in self.iter_tree():
            if node.name == name:
                return node
        return None

    def ancestors(self) -> Iterator["CompositeBehavior"]:
        """Enclosing composites from the immediate parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def depth(self) -> int:
        """Distance from the root (root is depth 0)."""
        return sum(1 for _ in self.ancestors())

    def declared(self, name: str) -> Optional[Variable]:
        """The variable declared *directly* on this behavior, if any."""
        for decl in self.decls:
            if decl.name == name:
                return decl
        return None

    def add_decl(self, decl: Variable) -> Variable:
        """Declare a variable on this behavior; rejects duplicates."""
        if self.declared(decl.name) is not None:
            raise SpecError(
                f"behavior {self.name!r} already declares {decl.name!r}"
            )
        self.decls.append(decl)
        return decl

    def copy(self) -> "Behavior":
        """Deep copy of this subtree (parent links left unset)."""
        raise NotImplementedError

    def _copy_marks(self, clone: "Behavior") -> "Behavior":
        """Carry the daemon flag and any provenance stamp (see
        :mod:`repro.obs.provenance`) onto ``clone``."""
        clone.daemon = self.daemon
        record = getattr(self, "_provenance", None)
        if record is not None:
            clone._provenance = record
        return clone

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "composite"
        return f"<{kind} behavior {self.name!r}>"


class LeafBehavior(Behavior):
    """A behavior whose functionality is a sequential statement body."""

    def __init__(
        self,
        name: str,
        stmt_body: Sequence[Stmt] = (),
        decls: Sequence[Variable] = (),
        doc: str = "",
    ):
        super().__init__(name, decls, doc)
        self.stmt_body: Body = make_body(stmt_body)

    @property
    def is_leaf(self) -> bool:
        return True

    def copy(self) -> "LeafBehavior":
        clone = LeafBehavior(
            self.name,
            self.stmt_body,
            [decl.copy() for decl in self.decls],
            self.doc,
        )
        self._copy_marks(clone)
        return clone


class CompositeBehavior(Behavior):
    """A behavior composed of sub-behaviors.

    For sequential composition, execution starts at ``initial`` (the
    first child by default) and follows transitions; for concurrent
    composition all children run and transitions must be empty.
    """

    def __init__(
        self,
        name: str,
        subs: Sequence[Behavior],
        mode: CompositionMode = CompositionMode.SEQUENTIAL,
        transitions: Sequence[Transition] = (),
        initial: Optional[str] = None,
        decls: Sequence[Variable] = (),
        doc: str = "",
    ):
        super().__init__(name, decls, doc)
        if not subs:
            raise SpecError(f"composite behavior {name!r} needs at least one child")
        names = [sub.name for sub in subs]
        if len(set(names)) != len(names):
            raise SpecError(f"composite {name!r} has duplicate child names: {names}")
        if mode is CompositionMode.CONCURRENT and transitions:
            raise SpecError(
                f"concurrent composite {name!r} cannot carry transitions"
            )
        self.subs: List[Behavior] = list(subs)
        self.mode = mode
        self.transitions: List[Transition] = list(transitions)
        self.initial = initial if initial is not None else names[0]
        if self.initial not in names:
            raise SpecError(
                f"initial behavior {self.initial!r} is not a child of {name!r}"
            )

    @property
    def is_leaf(self) -> bool:
        return False

    @property
    def is_sequential(self) -> bool:
        return self.mode is CompositionMode.SEQUENTIAL

    @property
    def is_concurrent(self) -> bool:
        return self.mode is CompositionMode.CONCURRENT

    def children(self) -> Tuple[Behavior, ...]:
        return tuple(self.subs)

    def child(self, name: str) -> Behavior:
        """Direct child named ``name`` (raises if absent)."""
        for sub in self.subs:
            if sub.name == name:
                return sub
        raise SpecError(f"composite {self.name!r} has no child {name!r}")

    def has_child(self, name: str) -> bool:
        return any(sub.name == name for sub in self.subs)

    def transitions_from(self, source: str) -> List[Transition]:
        """Arcs leaving ``source``, in declaration (priority) order."""
        return [t for t in self.transitions if t.source == source]

    def transitions_into(self, target: str) -> List[Transition]:
        """Arcs entering ``target``."""
        return [t for t in self.transitions if t.target == target]

    def replace_child(self, name: str, replacement: Behavior) -> None:
        """Swap the direct child ``name`` for ``replacement`` in place,
        keeping transition arcs pointed at the replacement's name.

        Control-related refinement uses this to substitute ``B_CTRL``
        where ``B`` used to sit (Figure 4); arcs are renamed so the
        sequencing structure survives.
        """
        for i, sub in enumerate(self.subs):
            if sub.name == name:
                self.subs[i] = replacement
                replacement.parent = self
                if replacement.name != name:
                    for t in self.transitions:
                        if t.source == name:
                            t.source = replacement.name
                        if t.target == name:
                            t.target = replacement.name
                    if self.initial == name:
                        self.initial = replacement.name
                return
        raise SpecError(f"composite {self.name!r} has no child {name!r}")

    def add_child(self, sub: Behavior) -> Behavior:
        """Append a child (rejects duplicate names)."""
        if self.has_child(sub.name):
            raise SpecError(f"composite {self.name!r} already has child {sub.name!r}")
        self.subs.append(sub)
        sub.parent = self
        return sub

    def copy(self) -> "CompositeBehavior":
        clone = CompositeBehavior(
            self.name,
            [sub.copy() for sub in self.subs],
            self.mode,
            [t.copy() for t in self.transitions],
            self.initial,
            [decl.copy() for decl in self.decls],
            self.doc,
        )
        self._copy_marks(clone)
        return clone
