"""Data types for the SpecCharts-like intermediate representation.

The paper's specifications are written in SpecCharts whose leaf behaviors
are VHDL sequential statements, so the type system here mirrors the small
VHDL subset the refinement procedures need: booleans, bounded integers,
bit vectors, enumerations and one-dimensional arrays.

Bit widths matter because the channel transfer rate of the evaluation
(Figure 9) is measured in bits per second: every access to a variable
moves ``variable.dtype.bit_width`` bits over a channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import TypeMismatchError

__all__ = [
    "DataType",
    "BoolType",
    "IntType",
    "BitVectorType",
    "EnumType",
    "ArrayType",
    "BOOL",
    "BIT",
    "int_type",
    "bits",
    "array_of",
]


class DataType:
    """Base class of all IR data types.

    Subclasses are immutable value objects: equality is structural and
    instances are hashable, so types can be used as dict keys and
    compared freely during validation.
    """

    @property
    def bit_width(self) -> int:
        """Number of bits one value of this type occupies."""
        raise NotImplementedError

    def default_value(self):
        """The value a variable of this type holds before initialisation."""
        raise NotImplementedError

    def contains(self, value) -> bool:
        """Whether ``value`` is representable by this type."""
        raise NotImplementedError

    def coerce(self, value):
        """Return ``value`` normalised into this type's domain.

        Raises :class:`TypeMismatchError` when the value cannot be
        represented at all (wrong Python kind, unknown enum literal,
        wrong array length).  Out-of-range integers wrap modulo the
        representable range, mimicking fixed-width hardware registers.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class BoolType(DataType):
    """A single-bit boolean (VHDL ``boolean``/``std_logic`` collapsed)."""

    @property
    def bit_width(self) -> int:
        return 1

    def default_value(self) -> bool:
        return False

    def contains(self, value) -> bool:
        return isinstance(value, bool) or value in (0, 1)

    def coerce(self, value) -> bool:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        raise TypeMismatchError(f"cannot coerce {value!r} to boolean")

    def __str__(self) -> str:
        return "boolean"


@dataclass(frozen=True)
class IntType(DataType):
    """A bounded two's-complement (or unsigned) integer.

    ``width`` is the register width; signed integers cover
    ``[-2**(w-1), 2**(w-1) - 1]`` and unsigned ``[0, 2**w - 1]``.
    """

    width: int = 16
    signed: bool = True

    def __post_init__(self):
        if self.width < 1:
            raise TypeMismatchError(f"integer width must be >= 1, got {self.width}")

    @property
    def bit_width(self) -> int:
        return self.width

    @property
    def min_value(self) -> int:
        return -(1 << (self.width - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        return (1 << (self.width - 1)) - 1 if self.signed else (1 << self.width) - 1

    def default_value(self) -> int:
        return 0

    def contains(self, value) -> bool:
        return (
            isinstance(value, int)
            and not isinstance(value, bool)
            and self.min_value <= value <= self.max_value
        )

    def coerce(self, value) -> int:
        if isinstance(value, bool):
            value = int(value)
        if not isinstance(value, int):
            raise TypeMismatchError(f"cannot coerce {value!r} to {self}")
        span = 1 << self.width
        wrapped = value % span
        if self.signed and wrapped >= span // 2:
            wrapped -= span
        return wrapped

    def __str__(self) -> str:
        sign = "integer" if self.signed else "natural"
        return f"{sign}<{self.width}>"


@dataclass(frozen=True)
class BitVectorType(DataType):
    """An unsigned bit vector of fixed width (VHDL ``bit_vector``).

    Values are plain non-negative Python ints; the width only bounds the
    range and defines the bus footprint.
    """

    width: int = 8

    def __post_init__(self):
        if self.width < 1:
            raise TypeMismatchError(f"vector width must be >= 1, got {self.width}")

    @property
    def bit_width(self) -> int:
        return self.width

    def default_value(self) -> int:
        return 0

    def contains(self, value) -> bool:
        return (
            isinstance(value, int)
            and not isinstance(value, bool)
            and 0 <= value < (1 << self.width)
        )

    def coerce(self, value) -> int:
        if isinstance(value, bool):
            value = int(value)
        if not isinstance(value, int):
            raise TypeMismatchError(f"cannot coerce {value!r} to {self}")
        return value % (1 << self.width)

    def __str__(self) -> str:
        return f"bits<{self.width}>"


@dataclass(frozen=True)
class EnumType(DataType):
    """An enumeration type; values are its literal strings."""

    name: str
    literals: Tuple[str, ...]

    def __post_init__(self):
        if not self.literals:
            raise TypeMismatchError(f"enum {self.name!r} needs at least one literal")
        if len(set(self.literals)) != len(self.literals):
            raise TypeMismatchError(f"enum {self.name!r} has duplicate literals")

    @property
    def bit_width(self) -> int:
        count = len(self.literals)
        return max(1, (count - 1).bit_length())

    def default_value(self) -> str:
        return self.literals[0]

    def contains(self, value) -> bool:
        return value in self.literals

    def coerce(self, value) -> str:
        if value in self.literals:
            return value
        if isinstance(value, int) and 0 <= value < len(self.literals):
            return self.literals[value]
        raise TypeMismatchError(f"{value!r} is not a literal of enum {self.name!r}")

    def index_of(self, literal: str) -> int:
        """Ordinal of ``literal``, used for comparisons between enums."""
        try:
            return self.literals.index(literal)
        except ValueError:
            raise TypeMismatchError(
                f"{literal!r} is not a literal of enum {self.name!r}"
            ) from None

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayType(DataType):
    """A one-dimensional array with integer indices ``0 .. length-1``."""

    element: DataType
    length: int

    def __post_init__(self):
        if self.length < 1:
            raise TypeMismatchError(f"array length must be >= 1, got {self.length}")
        if isinstance(self.element, ArrayType):
            raise TypeMismatchError("nested array types are not supported")

    @property
    def bit_width(self) -> int:
        return self.element.bit_width * self.length

    def default_value(self) -> tuple:
        return tuple(self.element.default_value() for _ in range(self.length))

    def contains(self, value) -> bool:
        return (
            isinstance(value, (tuple, list))
            and len(value) == self.length
            and all(self.element.contains(item) for item in value)
        )

    def coerce(self, value) -> tuple:
        if not isinstance(value, (tuple, list)):
            raise TypeMismatchError(f"cannot coerce {value!r} to {self}")
        if len(value) != self.length:
            raise TypeMismatchError(
                f"array length mismatch: expected {self.length}, got {len(value)}"
            )
        return tuple(self.element.coerce(item) for item in value)

    def __str__(self) -> str:
        return f"array<{self.element}, {self.length}>"


#: Shared singleton for the boolean type.
BOOL = BoolType()

#: A one-bit vector, used for bus control lines such as ``bus_start``.
BIT = BitVectorType(1)


def int_type(width: int = 16, signed: bool = True) -> IntType:
    """Convenience constructor for :class:`IntType`."""
    return IntType(width=width, signed=signed)


def bits(width: int) -> BitVectorType:
    """Convenience constructor for :class:`BitVectorType`."""
    return BitVectorType(width=width)


def array_of(element: DataType, length: int) -> ArrayType:
    """Convenience constructor for :class:`ArrayType`."""
    return ArrayType(element=element, length=length)
