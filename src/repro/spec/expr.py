"""Expression AST for the SpecCharts-like IR.

Expressions appear in three places the refinement procedures care about:

* right-hand sides of assignments inside leaf behaviors,
* branch/loop conditions inside leaf behaviors, and
* transition conditions between sub-behaviors (the ``A:(x>1,B)`` arcs of
  the paper), which is why data-related refinement of *non-leaf*
  behaviors (Figure 6) must hoist protocol calls in front of condition
  evaluation.

Nodes are immutable (frozen dataclasses) so rewrites always build new
trees; :mod:`repro.spec.visitor` provides the generic walkers and
transformers used by the refiners.

Python operator overloading gives a small construction DSL::

    from repro.spec.expr import var, const
    cond = (var("x") + 1) > const(5)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.errors import SpecError

__all__ = [
    "Expr",
    "Const",
    "VarRef",
    "Index",
    "UnaryOp",
    "BinOp",
    "BINARY_OPS",
    "UNARY_OPS",
    "COMPARISON_OPS",
    "LOGICAL_OPS",
    "ARITHMETIC_OPS",
    "var",
    "const",
    "TRUE",
    "FALSE",
]

#: Arithmetic operators (integer semantics; ``/`` truncates toward zero
#: like VHDL integer division).
ARITHMETIC_OPS = ("+", "-", "*", "/", "mod")

#: Comparison operators, VHDL spellings (``=`` equality, ``/=`` inequality).
COMPARISON_OPS = ("=", "/=", "<", "<=", ">", ">=")

#: Short-circuiting logical operators.
LOGICAL_OPS = ("and", "or")

#: All recognised binary operators.
BINARY_OPS = ARITHMETIC_OPS + COMPARISON_OPS + LOGICAL_OPS

#: All recognised unary operators.
UNARY_OPS = ("-", "not", "abs")


class Expr:
    """Base class of all expression nodes.

    The operator overloads below let callers compose expressions with
    ordinary Python syntax; plain ints and bools on either side are
    lifted to :class:`Const` automatically.
    """

    def children(self) -> Tuple["Expr", ...]:
        """Direct sub-expressions, left to right."""
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and every descendant, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    # -- construction DSL -------------------------------------------------

    def __add__(self, other) -> "BinOp":
        return BinOp("+", self, _lift(other))

    def __radd__(self, other) -> "BinOp":
        return BinOp("+", _lift(other), self)

    def __sub__(self, other) -> "BinOp":
        return BinOp("-", self, _lift(other))

    def __rsub__(self, other) -> "BinOp":
        return BinOp("-", _lift(other), self)

    def __mul__(self, other) -> "BinOp":
        return BinOp("*", self, _lift(other))

    def __rmul__(self, other) -> "BinOp":
        return BinOp("*", _lift(other), self)

    def __truediv__(self, other) -> "BinOp":
        return BinOp("/", self, _lift(other))

    def __floordiv__(self, other) -> "BinOp":
        return BinOp("/", self, _lift(other))

    def __mod__(self, other) -> "BinOp":
        return BinOp("mod", self, _lift(other))

    def __lt__(self, other) -> "BinOp":
        return BinOp("<", self, _lift(other))

    def __le__(self, other) -> "BinOp":
        return BinOp("<=", self, _lift(other))

    def __gt__(self, other) -> "BinOp":
        return BinOp(">", self, _lift(other))

    def __ge__(self, other) -> "BinOp":
        return BinOp(">=", self, _lift(other))

    def __neg__(self) -> "UnaryOp":
        return UnaryOp("-", self)

    # ``==``/``!=`` must stay Python equality for dataclasses and dict
    # keys, so IR equality comparisons use named methods instead.

    def eq(self, other) -> "BinOp":
        """IR equality test (VHDL ``=``)."""
        return BinOp("=", self, _lift(other))

    def ne(self, other) -> "BinOp":
        """IR inequality test (VHDL ``/=``)."""
        return BinOp("/=", self, _lift(other))

    def and_(self, other) -> "BinOp":
        """Logical conjunction."""
        return BinOp("and", self, _lift(other))

    def or_(self, other) -> "BinOp":
        """Logical disjunction."""
        return BinOp("or", self, _lift(other))

    def not_(self) -> "UnaryOp":
        """Logical negation."""
        return UnaryOp("not", self)

    def index(self, idx) -> "Index":
        """Array element access ``self[idx]``."""
        return Index(self, _lift(idx))


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant: int, bool, or enum literal string."""

    value: object

    def __post_init__(self):
        if not isinstance(self.value, (int, bool, str, tuple)):
            raise SpecError(f"unsupported constant {self.value!r}")

    def __str__(self) -> str:
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        return repr(self.value) if isinstance(self.value, str) else str(self.value)


@dataclass(frozen=True)
class VarRef(Expr):
    """A reference to a variable or signal by name."""

    name: str

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise SpecError(f"invalid variable name {self.name!r}")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Index(Expr):
    """Array element access ``base[index]``.

    ``base`` is an expression but in practice always a :class:`VarRef`;
    validation enforces that so array accesses have a nameable target
    for the access graph.
    """

    base: Expr
    index_expr: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.base, self.index_expr)

    def __str__(self) -> str:
        return f"{self.base}[{self.index_expr}]"


@dataclass(frozen=True)
class UnaryOp(Expr):
    """A unary operator application."""

    op: str
    operand: Expr

    def __post_init__(self):
        if self.op not in UNARY_OPS:
            raise SpecError(f"unknown unary operator {self.op!r}")

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        if self.op.isalpha():
            return f"{self.op} ({self.operand})"
        return f"{self.op}({self.operand})"


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operator application."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in BINARY_OPS:
            raise SpecError(f"unknown binary operator {self.op!r}")

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


def _lift(value) -> Expr:
    """Lift a Python scalar to a :class:`Const`; pass :class:`Expr` through."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, bool, str)):
        return Const(value)
    raise SpecError(f"cannot use {value!r} as an expression")


def var(name: str) -> VarRef:
    """Shorthand constructor for :class:`VarRef`."""
    return VarRef(name)


def const(value) -> Const:
    """Shorthand constructor for :class:`Const`."""
    return Const(value)


#: Canonical true/false constants.
TRUE = Const(True)
FALSE = Const(False)


def free_variables(expr: Expr) -> set:
    """Names of all variables referenced anywhere inside ``expr``."""
    return {node.name for node in expr.walk() if isinstance(node, VarRef)}


def substitute(expr: Expr, mapping: dict) -> Expr:
    """Return ``expr`` with every :class:`VarRef` whose name is a key of
    ``mapping`` replaced by the mapped expression.

    Used by data-related refinement to redirect accesses of a remote
    variable ``x`` to the local temporary ``tmp`` that the protocol call
    filled in (Figure 5c of the paper).
    """
    if isinstance(expr, VarRef):
        replacement = mapping.get(expr.name)
        return replacement if replacement is not None else expr
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Index):
        return Index(
            substitute(expr.base, mapping), substitute(expr.index_expr, mapping)
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, substitute(expr.operand, mapping))
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op, substitute(expr.left, mapping), substitute(expr.right, mapping)
        )
    raise SpecError(f"unknown expression node {expr!r}")
