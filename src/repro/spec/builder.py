"""Fluent construction helpers for specifications.

The example specifications (Figures 1–8 and the medical system) are
built in Python; these helpers keep that code close to the paper's
notation::

    from repro.spec.builder import assign, leaf, seq, spec, transition
    from repro.spec.expr import var

    a = leaf("A", assign("x", var("x") + 1))
    b = leaf("B", assign("x", var("x") * 2))
    c = leaf("C", assign("x", 0))
    top = seq("Main", [a, b, c],
              transitions=[transition("A", var("x") > 1, "B"),
                           transition("A", var("x") < 1, "C")])
    design = spec("Example", top, variables=[...])
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.spec.behavior import (
    Behavior,
    CompositeBehavior,
    CompositionMode,
    LeafBehavior,
    Transition,
)
from repro.spec.expr import Expr, VarRef, _lift
from repro.spec.specification import Specification
from repro.spec.stmt import (
    Assign,
    CallStmt,
    For,
    If,
    Null,
    SignalAssign,
    Stmt,
    Wait,
    While,
    body as make_body,
)
from repro.spec.subprogram import Subprogram
from repro.spec.variable import Variable

__all__ = [
    "assign",
    "sassign",
    "if_",
    "while_",
    "loop_forever",
    "for_",
    "wait_until",
    "wait_on",
    "wait_for",
    "call",
    "skip",
    "leaf",
    "seq",
    "conc",
    "transition",
    "on_complete",
    "spec",
]


def _target(name_or_expr) -> Expr:
    if isinstance(name_or_expr, Expr):
        return name_or_expr
    return VarRef(name_or_expr)


def assign(target, value) -> Assign:
    """``target := value`` — target may be a name or an lvalue expression."""
    return Assign(_target(target), _lift(value))


def sassign(target, value) -> SignalAssign:
    """``target <= value`` — signal assignment."""
    return SignalAssign(_target(target), _lift(value))


def if_(cond, then, orelse: Sequence[Stmt] = ()) -> If:
    """``if cond then ... [else ...] end if``."""
    return If(_lift(cond), make_body(then), else_body=make_body(orelse))


def while_(cond, body: Sequence[Stmt], expected: Optional[int] = None) -> While:
    """``while cond loop ... end loop`` with an optional static
    iteration-count annotation for the estimator."""
    return While(_lift(cond), make_body(body), expected_iterations=expected)


def loop_forever(body: Sequence[Stmt]) -> While:
    """An endless loop, the shape of every refined server behavior
    (memory slaves, arbiters, bus interfaces, ``B_NEW`` wrappers)."""
    from repro.spec.expr import TRUE

    return While(TRUE, make_body(body))


def for_(variable: str, start, stop, body: Sequence[Stmt]) -> For:
    """``for variable in start to stop loop ... end loop`` (inclusive)."""
    return For(variable, _lift(start), _lift(stop), make_body(body))


def wait_until(cond) -> Wait:
    """``wait until cond``."""
    return Wait(until=_lift(cond))


def wait_on(*signals: str) -> Wait:
    """``wait on s1, s2, ...``."""
    return Wait(on=tuple(signals))


def wait_for(delay: int) -> Wait:
    """``wait for delay`` time units."""
    return Wait(delay=delay)


def call(callee: str, *args) -> CallStmt:
    """Procedure call; names lift to variable references."""
    return CallStmt(callee, tuple(_target(a) if isinstance(a, str) else _lift(a) for a in args))


def skip() -> Null:
    """The null statement."""
    return Null()


def leaf(
    name: str,
    *stmts: Stmt,
    decls: Sequence[Variable] = (),
    doc: str = "",
) -> LeafBehavior:
    """A leaf behavior from a statement list."""
    return LeafBehavior(name, make_body(stmts), decls=decls, doc=doc)


def seq(
    name: str,
    subs: Sequence[Behavior],
    transitions: Sequence[Transition] = (),
    initial: Optional[str] = None,
    decls: Sequence[Variable] = (),
    doc: str = "",
) -> CompositeBehavior:
    """A sequential composite behavior."""
    return CompositeBehavior(
        name,
        subs,
        mode=CompositionMode.SEQUENTIAL,
        transitions=transitions,
        initial=initial,
        decls=decls,
        doc=doc,
    )


def conc(
    name: str,
    subs: Sequence[Behavior],
    decls: Sequence[Variable] = (),
    doc: str = "",
) -> CompositeBehavior:
    """A concurrent composite behavior."""
    return CompositeBehavior(
        name, subs, mode=CompositionMode.CONCURRENT, decls=decls, doc=doc
    )


def transition(source: str, condition, target: Optional[str]) -> Transition:
    """An arc ``source:(condition, target)``; condition ``None`` means
    unconditional, bools/ints lift to constants."""
    cond = None if condition is None else _lift(condition)
    return Transition(source, cond, target)


def on_complete(source: str, condition=None) -> Transition:
    """An arc that completes the enclosing composite when taken."""
    cond = None if condition is None else _lift(condition)
    return Transition(source, cond, None)


def spec(
    name: str,
    top: Behavior,
    variables: Sequence[Variable] = (),
    subprograms: Sequence[Subprogram] = (),
    doc: str = "",
) -> Specification:
    """Assemble and return a :class:`Specification` (unvalidated; call
    ``.validate()`` once construction is complete)."""
    return Specification(name, top, variables, subprograms, doc)
