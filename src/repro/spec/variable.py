"""Variables and signals of the specification model.

The paper distinguishes *variables* (plain storage, the objects that get
mapped to memories during refinement) from the *signals* the refinement
itself introduces (control handshakes, bus lines).  Both are represented
by :class:`Variable` with a :class:`StorageClass` tag.

A variable's *role* marks it as a system input, output or internal
state; roles drive the simulator's stimulus application and the
functional-equivalence check (outputs are the observed trace).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SpecError
from repro.spec.types import DataType

__all__ = ["StorageClass", "Role", "Variable", "variable", "signal"]


class StorageClass(enum.Enum):
    """How a named object stores and propagates values."""

    #: Plain storage; assignments take effect immediately.
    VARIABLE = "variable"
    #: Delta-delayed storage visible across concurrent behaviors.
    SIGNAL = "signal"


class Role(enum.Enum):
    """Observability role of a variable in the system boundary."""

    #: Internal state; may be freely relocated by refinement.
    INTERNAL = "internal"
    #: Environment-driven input; the simulator applies stimuli to it.
    INPUT = "input"
    #: System output; its write trace defines observable behaviour.
    OUTPUT = "output"


@dataclass
class Variable:
    """A named, typed storage object.

    ``init`` is the value the object holds at time zero; when ``None``
    the type's default is used.  ``doc`` is carried through refinement
    into the printed specification as a trailing comment.
    """

    name: str
    dtype: DataType
    init: object = None
    kind: StorageClass = StorageClass.VARIABLE
    role: Role = Role.INTERNAL
    doc: str = ""

    def __post_init__(self):
        if not self.name or not self.name.isidentifier():
            raise SpecError(f"invalid variable name {self.name!r}")
        if self.init is not None:
            self.init = self.dtype.coerce(self.init)

    @property
    def is_signal(self) -> bool:
        return self.kind is StorageClass.SIGNAL

    @property
    def initial_value(self):
        """The coerced time-zero value."""
        return self.init if self.init is not None else self.dtype.default_value()

    @property
    def bit_width(self) -> int:
        """Bits moved by one access to this object (drives channel rates)."""
        return self.dtype.bit_width

    def renamed(self, new_name: str) -> "Variable":
        """A copy of this variable under a different name."""
        return Variable(
            name=new_name,
            dtype=self.dtype,
            init=self.init,
            kind=self.kind,
            role=self.role,
            doc=self.doc,
        )

    def copy(self) -> "Variable":
        """An independent copy (variables are mutable containers);
        carries any provenance stamp (:mod:`repro.obs.provenance`)."""
        clone = self.renamed(self.name)
        record = getattr(self, "_provenance", None)
        if record is not None:
            clone._provenance = record
        return clone

    def __str__(self) -> str:
        keyword = "signal" if self.is_signal else "variable"
        rendered = f"{keyword} {self.name} : {self.dtype}"
        if self.init is not None:
            rendered += f" := {self.init}"
        return rendered


def variable(
    name: str,
    dtype: DataType,
    init: object = None,
    role: Role = Role.INTERNAL,
    doc: str = "",
) -> Variable:
    """Construct a plain variable."""
    return Variable(name, dtype, init=init, role=role, doc=doc)


def signal(name: str, dtype: DataType, init: object = None, doc: str = "") -> Variable:
    """Construct a signal (delta-delayed, cross-behavior storage)."""
    return Variable(name, dtype, init=init, kind=StorageClass.SIGNAL, doc=doc)
