"""Back ends: hand-off of refined specifications to downstream tools."""

from repro.export.c_backend import CExportError, export_c
from repro.export.vhdl_backend import VhdlExportError, export_vhdl

__all__ = ["CExportError", "export_c", "VhdlExportError", "export_vhdl"]
