"""Back ends: hand-off of refined specifications to downstream tools."""

from repro.export.c_backend import CExportError, export_c
from repro.export.validate import (
    ToolchainStatus,
    ValidationCheck,
    ValidationReport,
    detect_toolchain,
    validate_workload,
    validate_workloads,
)
from repro.export.vhdl_backend import VhdlExportError, export_vhdl

__all__ = [
    "CExportError",
    "export_c",
    "VhdlExportError",
    "export_vhdl",
    "ToolchainStatus",
    "ValidationCheck",
    "ValidationReport",
    "detect_toolchain",
    "validate_workload",
    "validate_workloads",
]
