"""External validation: run the exported backends through *real*
toolchains and check them against the discrete-event kernel.

The paper positions the refined specification as a hand-off to
"functional verification, behavioral synthesis or software compilation
tools".  The backends in this package emit that hand-off; this module
closes the loop with whatever toolchain the host actually has:

* **C** — the functional model is exported standalone
  (:func:`repro.export.export_c`), compiled with the system C compiler
  and executed; the ``name=value`` lines it prints must match the
  kernel's final output values for the same stimulus.
* **VHDL** — the functional model is exported
  (:func:`repro.export.export_vhdl`) together with a generated
  testbench that drives the workload's default stimulus and asserts
  the kernel's outputs; when GHDL is on ``PATH`` the pair is analyzed,
  elaborated and simulated.  Every refined design x model is exported
  and (with GHDL) analyzed as a compile check — refined system tops
  drive bus signals from several processes and would need resolved
  types to *simulate*, so co-simulation stays on the functional model
  (the per-partition hand-off the VHDL backend documents).

Missing tools and unsupported constructs (e.g. a concurrent spec on
the sequential-only C backend) degrade to ``skipped`` checks with the
reason recorded, never to failures: the harness is CI-optional by
design.  Only a genuine disagreement between a toolchain and the
kernel (``mismatch``) or a broken export (``error``) fails a report.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError

__all__ = [
    "ToolchainStatus",
    "ValidationCheck",
    "ValidationReport",
    "detect_toolchain",
    "validate_workload",
    "validate_workloads",
]

#: scheduler step budget for the kernel reference runs
VALIDATE_MAX_STEPS = 200_000

#: how long the testbench lets the DUT settle before asserting outputs
#: (generated waits are ns-scale, so this is orders of magnitude spare)
_SETTLE = "1 ms"

#: wall-clock budget per external tool invocation
_TOOL_TIMEOUT = 120.0


@dataclass(frozen=True)
class ToolchainStatus:
    """Which external tools ``PATH`` offers (absolute paths or None)."""

    cc: Optional[str] = None
    ghdl: Optional[str] = None
    iverilog: Optional[str] = None

    def describe(self) -> str:
        def show(name, path):
            return f"{name}={path or 'not found'}"

        return ", ".join(
            (show("cc", self.cc), show("ghdl", self.ghdl),
             show("iverilog", self.iverilog))
        )


def detect_toolchain() -> ToolchainStatus:
    """Probe ``PATH`` for the compilers the harness can use."""
    cc = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    return ToolchainStatus(
        cc=cc, ghdl=shutil.which("ghdl"), iverilog=shutil.which("iverilog")
    )


@dataclass
class ValidationCheck:
    """One external-validation step of one workload.

    ``status`` is ``ok`` (toolchain agrees with the kernel), ``mismatch``
    (it does not), ``error`` (a tool or export failed outright) or
    ``skipped`` (tool missing / construct unsupported; ``detail`` says
    why).
    """

    workload: str
    backend: str          # kernel | c | vhdl
    stage: str            # reference | export | analyze | co-simulate
    design: str = "-"
    model: str = "-"
    status: str = "ok"
    detail: str = ""

    @property
    def passed(self) -> bool:
        return self.status in ("ok", "skipped")


@dataclass
class ValidationReport:
    """Every check of one workload's validation run."""

    workload: str
    checks: List[ValidationCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.passed for check in self.checks)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for check in self.checks:
            out[check.status] = out.get(check.status, 0) + 1
        return out

    def render(self) -> str:
        from repro.experiments.tables import render_table

        rows = [
            [c.backend, c.stage, c.design, c.model, c.status, c.detail]
            for c in self.checks
        ]
        counts = self.counts()
        summary = ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
        return "\n".join(
            [
                render_table(
                    ["Backend", "Stage", "Design", "Model", "Status", "Detail"],
                    rows,
                    title=f"External validation: workload {self.workload}",
                ),
                "",
                f"checks: {len(self.checks)} ({summary})",
            ]
        )


def _run_tool(cmd: Sequence[str], cwd: str) -> "subprocess.CompletedProcess":
    return subprocess.run(
        list(cmd),
        cwd=cwd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        timeout=_TOOL_TIMEOUT,
    )


def _first_line(text: str) -> str:
    for line in text.splitlines():
        line = line.strip()
        if line:
            return line[:120]
    return ""


def _reference_outputs(spec, inputs: Dict[str, int], max_steps: int):
    """The kernel's final output values — the golden trace endpoint."""
    from repro.sim import KernelLimits, Simulator

    result = Simulator(spec).run(
        inputs=dict(inputs), limits=KernelLimits(max_steps=max_steps)
    )
    if not result.completed:
        raise ReproError(
            f"kernel reference run of {spec.name!r} did not complete "
            f"within {max_steps} steps"
        )
    return result.output_values()


def _as_int(value) -> int:
    return int(value) if not isinstance(value, bool) else int(value)


def _diff_outputs(reference: Dict[str, object], observed: Dict[str, int]) -> str:
    """Human-readable disagreement list ('' when everything matches)."""
    diffs = []
    for name in sorted(observed):
        if name not in reference:
            continue
        want = _as_int(reference[name])
        got = observed[name]
        if want != got:
            diffs.append(f"{name}: kernel={want} toolchain={got}")
    return "; ".join(diffs)


# -- C co-simulation -------------------------------------------------------------


def _validate_c(
    workload_id: str,
    spec,
    inputs: Dict[str, int],
    reference: Dict[str, object],
    toolchain: ToolchainStatus,
    workdir: str,
) -> ValidationCheck:
    from repro.export.c_backend import CExportError, export_c

    check = ValidationCheck(workload_id, "c", "co-simulate")
    try:
        source = export_c(spec, inputs=dict(inputs))
    except CExportError as exc:
        check.status = "skipped"
        check.detail = f"C backend: {exc}"
        return check
    if toolchain.cc is None:
        check.status = "skipped"
        check.detail = "no C compiler on PATH"
        return check

    c_path = os.path.join(workdir, f"{workload_id}_model.c")
    exe_path = os.path.join(workdir, f"{workload_id}_model")
    with open(c_path, "w") as handle:
        handle.write(source)
    compiled = _run_tool([toolchain.cc, "-O1", "-o", exe_path, c_path], workdir)
    if compiled.returncode != 0:
        check.status = "error"
        check.detail = f"cc failed: {_first_line(compiled.stdout)}"
        return check
    ran = _run_tool([exe_path], workdir)
    if ran.returncode != 0:
        check.status = "error"
        check.detail = f"program exited {ran.returncode}"
        return check
    observed: Dict[str, int] = {}
    for line in ran.stdout.splitlines():
        name, sep, value = line.strip().partition("=")
        if sep and value.lstrip("-").isdigit():
            observed[name] = int(value)
    if not observed:
        check.status = "error"
        check.detail = "program printed no name=value outputs"
        return check
    diff = _diff_outputs(reference, observed)
    if diff:
        check.status = "mismatch"
        check.detail = diff
    else:
        check.detail = f"{len(observed)} outputs match the kernel"
    return check


# -- VHDL export / analysis / co-simulation ----------------------------------------


def _vhdl_literal(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(int(value))


def _vhdl_testbench(
    spec, entity: str, inputs: Dict[str, int], expected: Dict[str, object]
) -> str:
    """A testbench driving ``inputs`` and asserting ``expected``.

    Input ports are driven through testbench signals *initialised* to
    the stimulus, so the DUT (which starts executing at time 0) already
    sees the values on its first read.  The checker waits well past the
    DUT's completion, asserts every expected output port and reports
    ``REPRO_VALIDATE_OK`` so a log grep can double-check the run got
    there.
    """
    from repro.export.vhdl_backend import _ident
    from repro.spec.types import BoolType
    from repro.spec.variable import Role, StorageClass

    ports = [
        v
        for v in spec.variables
        if v.role is not Role.INTERNAL and v.kind is StorageClass.VARIABLE
    ]
    lines = ["entity tb is", "end entity tb;", "",
             "architecture test of tb is"]
    for port in ports:
        vtype = "boolean" if isinstance(port.dtype, BoolType) else "integer"
        if port.role is Role.INPUT:
            value = inputs.get(port.name, port.initial_value)
            lines.append(
                f"  signal {_ident(port.name)} : {vtype}"
                f" := {_vhdl_literal(value)};"
            )
        else:
            lines.append(f"  signal {_ident(port.name)} : {vtype};")
    lines.append("begin")
    lines.append(f"  dut : entity work.{_ident(entity)}(behavioral)")
    if ports:
        lines.append("    port map (")
        maps = [
            f"      {_ident(p.name)} => {_ident(p.name)}" for p in ports
        ]
        lines.append(",\n".join(maps))
        lines.append("    );")
    lines.append("  check : process")
    lines.append("  begin")
    lines.append(f"    wait for {_SETTLE};")
    for port in ports:
        if port.role is Role.INPUT or port.name not in expected:
            continue
        want = expected[port.name]
        literal = (
            _vhdl_literal(bool(want))
            if isinstance(port.dtype, BoolType)
            else _vhdl_literal(want)
        )
        lines.append(f"    assert {_ident(port.name)} = {literal}")
        lines.append(
            f"      report \"mismatch: {port.name} /= {literal}\""
            " severity failure;"
        )
    lines.append("    report \"REPRO_VALIDATE_OK\" severity note;")
    lines.append("    wait;")
    lines.append("  end process check;")
    lines.append("end architecture test;")
    return "\n".join(lines) + "\n"


_GHDL_FLAGS = ["--std=93c", "-frelaxed"]


def _ghdl_analyze(
    toolchain: ToolchainStatus, workdir: str, *files: str
) -> "subprocess.CompletedProcess":
    return _run_tool(
        [toolchain.ghdl, "-a", *_GHDL_FLAGS, *files], workdir
    )


def _validate_vhdl_functional(
    workload_id: str,
    spec,
    inputs: Dict[str, int],
    reference: Dict[str, object],
    toolchain: ToolchainStatus,
    workdir: str,
) -> List[ValidationCheck]:
    from repro.export.vhdl_backend import VhdlExportError, export_vhdl

    export_check = ValidationCheck(workload_id, "vhdl", "export")
    try:
        source = export_vhdl(spec)
    except VhdlExportError as exc:
        export_check.status = "skipped"
        export_check.detail = f"VHDL backend: {exc}"
        return [export_check]
    export_check.detail = f"{len(source.splitlines())} lines"
    sim_check = ValidationCheck(workload_id, "vhdl", "co-simulate")
    if toolchain.ghdl is None:
        sim_check.status = "skipped"
        sim_check.detail = "ghdl not on PATH"
        return [export_check, sim_check]

    dut_path = os.path.join(workdir, f"{workload_id}_dut.vhd")
    tb_path = os.path.join(workdir, f"{workload_id}_tb.vhd")
    with open(dut_path, "w") as handle:
        handle.write(source)
    with open(tb_path, "w") as handle:
        handle.write(_vhdl_testbench(spec, spec.name, inputs, reference))
    analyzed = _ghdl_analyze(toolchain, workdir, dut_path, tb_path)
    if analyzed.returncode != 0:
        sim_check.status = "error"
        sim_check.detail = f"ghdl -a failed: {_first_line(analyzed.stdout)}"
        return [export_check, sim_check]
    elaborated = _run_tool(
        [toolchain.ghdl, "-e", *_GHDL_FLAGS, "tb"], workdir
    )
    if elaborated.returncode != 0:
        sim_check.status = "error"
        sim_check.detail = f"ghdl -e failed: {_first_line(elaborated.stdout)}"
        return [export_check, sim_check]
    ran = _run_tool([toolchain.ghdl, "-r", *_GHDL_FLAGS, "tb"], workdir)
    if ran.returncode != 0 or "REPRO_VALIDATE_OK" not in ran.stdout:
        sim_check.status = (
            "mismatch" if "mismatch" in ran.stdout else "error"
        )
        sim_check.detail = _first_line(ran.stdout) or f"exit {ran.returncode}"
        return [export_check, sim_check]
    sim_check.detail = "testbench assertions passed under ghdl"
    return [export_check, sim_check]


def _validate_vhdl_refined(
    workload_id: str,
    spec,
    designs,
    models: Sequence[str],
    toolchain: ToolchainStatus,
    workdir: str,
) -> List[ValidationCheck]:
    from repro.export.vhdl_backend import VhdlExportError, export_vhdl
    from repro.models import resolve_model
    from repro.refine import Refiner

    checks: List[ValidationCheck] = []
    for design_name in sorted(designs):
        for model_name in models:
            check = ValidationCheck(
                workload_id, "vhdl", "export",
                design=design_name, model=model_name,
            )
            checks.append(check)
            try:
                refined = Refiner(
                    spec, designs[design_name], resolve_model(model_name)
                ).run()
                source = export_vhdl(
                    refined.spec,
                    entity_name=f"{spec.name}_{design_name}_{model_name}",
                )
            except VhdlExportError as exc:
                check.status = "skipped"
                check.detail = f"VHDL backend: {exc}"
                continue
            check.detail = f"{len(source.splitlines())} lines"
            analyze = ValidationCheck(
                workload_id, "vhdl", "analyze",
                design=design_name, model=model_name,
            )
            checks.append(analyze)
            if toolchain.ghdl is None:
                analyze.status = "skipped"
                analyze.detail = "ghdl not on PATH"
                continue
            path = os.path.join(
                workdir, f"{workload_id}_{design_name}_{model_name}.vhd"
            )
            with open(path, "w") as handle:
                handle.write(source)
            result = _ghdl_analyze(toolchain, workdir, path)
            if result.returncode != 0:
                analyze.status = "error"
                analyze.detail = f"ghdl -a failed: {_first_line(result.stdout)}"
            else:
                analyze.detail = "refined design analyzes cleanly"
    return checks


# -- entry points ----------------------------------------------------------------


def validate_workload(
    workload=None,
    models: Sequence[str] = ("Model1",),
    toolchain: Optional[ToolchainStatus] = None,
    max_steps: int = VALIDATE_MAX_STEPS,
) -> ValidationReport:
    """Validate one registry workload against the external toolchains.

    Runs the kernel reference simulation, the C co-simulation (system C
    compiler), the functional-model VHDL co-simulation (GHDL) and a
    per-``models`` refined-design VHDL export/analyze sweep.  Returns a
    :class:`ValidationReport`; missing tools yield ``skipped`` checks,
    so the report only fails on real disagreements or broken exports.
    """
    from repro.apps.workloads import resolve_workload

    workload = resolve_workload(workload)
    toolchain = toolchain or detect_toolchain()
    report = ValidationReport(workload.id)

    spec = workload.spec()
    inputs = dict(workload.default_inputs)
    reference_check = ValidationCheck(workload.id, "kernel", "reference")
    report.checks.append(reference_check)
    try:
        reference = _reference_outputs(spec, inputs, max_steps)
    except ReproError as exc:
        reference_check.status = "error"
        reference_check.detail = str(exc)
        return report
    reference_check.detail = ", ".join(
        f"{name}={_as_int(value)}" for name, value in sorted(reference.items())
    )

    with tempfile.TemporaryDirectory(prefix="repro-validate-") as workdir:
        report.checks.append(
            _validate_c(
                workload.id, workload.spec(), inputs, reference, toolchain,
                workdir,
            )
        )
        report.checks.extend(
            _validate_vhdl_functional(
                workload.id, workload.spec(), inputs, reference, toolchain,
                workdir,
            )
        )
        fresh = workload.spec()
        report.checks.extend(
            _validate_vhdl_refined(
                workload.id, fresh, workload.designs(fresh), models,
                toolchain, workdir,
            )
        )
    return report


def validate_workloads(
    workloads: Optional[Sequence[str]] = None,
    models: Sequence[str] = ("Model1",),
    toolchain: Optional[ToolchainStatus] = None,
    max_steps: int = VALIDATE_MAX_STEPS,
) -> List[ValidationReport]:
    """Validate several workloads (default: medical and pcm_pwm — the
    hand-written case studies the HDL smoke job exercises)."""
    names = list(workloads) if workloads else ["medical", "pcm_pwm"]
    toolchain = toolchain or detect_toolchain()
    return [
        validate_workload(
            name, models=models, toolchain=toolchain, max_steps=max_steps
        )
        for name in names
    ]
