"""C code generation — the paper's "software compilation" hand-off.

Paper §1: "since the refined specification is complete, it can serve as
an input for functional verification, behavioral synthesis or software
compilation tools that may follow hardware-software codesign".  This
backend performs the software half of that hand-off: it compiles a
*sequential* behavior tree (the functional model, or one processor
partition of a refined design) into a standalone C translation unit.

Mapping:

=====================  ==========================================
IR construct           C construct
=====================  ==========================================
IntType(w)             ``int8_t``/``int16_t``/``int32_t``/``int64_t``
BitVectorType(w)       unsigned of the matching width
BoolType               ``int`` (0/1)
EnumType               ``enum`` with ``K_<enum>_<literal>`` constants
ArrayType              C array
variable               file-scope or block-scope object
leaf behavior          ``static void <name>(void)``
sequential composite   function with an explicit arc-following loop
subprogram             ``static void`` function (out params by pointer)
``x := e``             assignment (narrowing casts reproduce wrapping)
``a mod b``            ``im_mod`` helper (VHDL mod follows the divisor)
``a / b``              C ``/`` (both truncate toward zero)
protocol calls         ``bus_read``/``bus_write`` against the bus API
control handshakes     busy-waits on ``volatile`` externs
``wait for n``         ``bus_idle(n)``
=====================  ==========================================

Two emission modes:

* **standalone** (default) — inputs become initialised globals, outputs
  are printed from ``main``; pure functional models compile and run
  as-is, which is how the differential tests validate this backend
  against the discrete-event simulator;
* **partition** (``standalone=False``) — the bus API and handshake
  signals are declared ``extern`` so the integrator links the partition
  against a real bus driver.

Concurrent composites have no sequential C equivalent and are rejected;
export a refined design's *processor partition* (sequential by
construction), not its whole system top.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import RefinementError
from repro.spec.behavior import (
    Behavior,
    CompositeBehavior,
    LeafBehavior,
)
from repro.spec.expr import BinOp, Const, Expr, Index, UnaryOp, VarRef
from repro.spec.specification import Specification
from repro.spec.stmt import (
    Assign,
    Body,
    CallStmt,
    For,
    If,
    Null,
    SignalAssign,
    Stmt,
    Wait,
    While,
)
from repro.spec.subprogram import Direction, Subprogram
from repro.spec.types import (
    ArrayType,
    BitVectorType,
    BoolType,
    DataType,
    EnumType,
    IntType,
)
from repro.spec.variable import Role, StorageClass, Variable

__all__ = ["export_c", "CExportError"]


class CExportError(RefinementError):
    """The specification uses a construct the C backend cannot map."""


_HELPERS = """\
__attribute__((unused))
static int64_t im_mod(int64_t a, int64_t b) {
    /* VHDL 'mod': result takes the sign of the divisor */
    int64_t r = a % b;
    if (r != 0 && ((r < 0) != (b < 0))) {
        r += b;
    }
    return r;
}
"""

_BUS_API_EXTERN = """\
/* Bus API: provided by the platform's bus driver. */
extern int32_t bus_read(uint32_t addr);
extern void bus_write(uint32_t addr, int32_t value);
extern void bus_idle(int cycles);
"""

_PROTOCOL_PREFIXES = ("MST_send_", "MST_receive_", "REMOTE_send_",
                      "REMOTE_receive_")


def _int_ctype(width: int, signed: bool) -> str:
    for bound, name in ((8, "int8_t"), (16, "int16_t"), (32, "int32_t"),
                        (64, "int64_t")):
        if width <= bound:
            return name if signed else "u" + name
    raise CExportError(f"integer width {width} exceeds 64 bits")


class _Emitter:
    def __init__(self, spec: Specification, standalone: bool):
        self.spec = spec
        self.standalone = standalone
        self.lines: List[str] = []
        self._indent = 0
        self._enums: Dict[str, EnumType] = {}
        self._uses_bus = False
        self._extern_signals: Set[str] = set()

    # -- low-level emission --------------------------------------------------

    def emit(self, text: str = "") -> None:
        if text:
            self.lines.append("    " * self._indent + text)
        else:
            self.lines.append("")

    def block(self):
        emitter = self

        class _Block:
            def __enter__(self):
                emitter._indent += 1

            def __exit__(self, *exc):
                emitter._indent -= 1

        return _Block()

    # -- types ------------------------------------------------------------------

    def ctype(self, dtype: DataType) -> str:
        if isinstance(dtype, BoolType):
            return "int"
        if isinstance(dtype, IntType):
            return _int_ctype(dtype.width, dtype.signed)
        if isinstance(dtype, BitVectorType):
            return _int_ctype(max(dtype.width, 8), signed=False)
        if isinstance(dtype, EnumType):
            self._enums[dtype.name] = dtype
            return f"enum {dtype.name}"
        raise CExportError(f"cannot map type {dtype} to C")

    def literal(self, value, dtype: Optional[DataType] = None) -> str:
        if isinstance(value, bool):
            return "1" if value else "0"
        if isinstance(value, int):
            return str(value)
        if isinstance(value, str):
            enum = dtype if isinstance(dtype, EnumType) else None
            if enum is None:
                for candidate in self._enums.values():
                    if value in candidate.literals:
                        enum = candidate
                        break
            if enum is None:
                raise CExportError(f"enum literal {value!r} of unknown enum")
            return f"K_{enum.name}_{value}"
        raise CExportError(f"cannot emit literal {value!r}")

    # -- declarations ----------------------------------------------------------------

    def declare_variable(self, decl: Variable, storage: str = "static") -> None:
        dtype = decl.dtype
        comment = f"  /* {decl.doc} */" if decl.doc else ""
        prefix = f"{storage} " if storage else ""
        if isinstance(dtype, ArrayType):
            element = self.ctype(dtype.element)
            if decl.init is not None:
                values = ", ".join(
                    self.literal(v, dtype.element) for v in decl.init
                )
                init = f" = {{{values}}}"
            else:
                init = " = {0}"  # IR arrays start zeroed in every scope
            self.emit(
                f"{prefix}{element} {decl.name}[{dtype.length}]{init};{comment}"
            )
            return
        ctype = self.ctype(dtype)
        init = ""
        if decl.init is not None:
            init = f" = {self.literal(decl.init, dtype)}"
        elif not storage:
            # block-scope and file-scope objects both get explicit zero
            # (block scope would otherwise be indeterminate)
            init = f" = {self.literal(dtype.default_value(), dtype)}"
        self.emit(f"{prefix}{ctype} {decl.name}{init};{comment}")

    def declare_enums(self) -> None:
        for enum in self._enums.values():
            literals = ", ".join(
                f"K_{enum.name}_{lit} = {i}"
                for i, lit in enumerate(enum.literals)
            )
            self.emit(f"enum {enum.name} {{ {literals} }};")

    # -- expressions --------------------------------------------------------------------

    def expr(self, node: Expr) -> str:
        if isinstance(node, Const):
            return self.literal(node.value)
        if isinstance(node, VarRef):
            return node.name
        if isinstance(node, Index):
            return f"{self.expr(node.base)}[{self.expr(node.index_expr)}]"
        if isinstance(node, UnaryOp):
            operand = self.expr(node.operand)
            if node.op == "not":
                return f"(!{operand})"
            if node.op == "abs":
                return f"({operand} < 0 ? -({operand}) : ({operand}))"
            # parenthesise the operand: a leading '-' (negative literal
            # or nested negation) would otherwise fuse into C's '--'
            return f"(-({operand}))"
        if isinstance(node, BinOp):
            left = self.expr(node.left)
            right = self.expr(node.right)
            op = node.op
            if op == "mod":
                return f"im_mod({left}, {right})"
            if op == "=":
                op = "=="
            elif op == "/=":
                op = "!="
            elif op == "and":
                op = "&&"
            elif op == "or":
                op = "||"
            return f"({left} {op} {right})"
        raise CExportError(f"cannot emit expression {node!r}")

    # -- statements -------------------------------------------------------------------------

    def body(self, stmts: Body, out_params: Set[str]) -> None:
        if not stmts:
            self.emit(";")
            return
        for stmt in stmts:
            self.stmt(stmt, out_params)

    def stmt(self, node: Stmt, out_params: Set[str]) -> None:
        if isinstance(node, Assign):
            target = self.expr(node.target)
            if isinstance(node.target, VarRef) and node.target.name in out_params:
                target = f"*{node.target.name}"
            self.emit(f"{target} = {self.expr(node.value)};")
        elif isinstance(node, SignalAssign):
            name = self.expr(node.target)
            self._extern_signals.add(
                node.target.name if isinstance(node.target, VarRef) else name
            )
            self.emit(f"{name} = {self.expr(node.value)};")
        elif isinstance(node, If):
            self.emit(f"if ({self.expr(node.cond)}) {{")
            with self.block():
                self.body(node.then_body, out_params)
            for cond, arm in node.elifs:
                self.emit(f"}} else if ({self.expr(cond)}) {{")
                with self.block():
                    self.body(arm, out_params)
            if node.else_body:
                self.emit("} else {")
                with self.block():
                    self.body(node.else_body, out_params)
            self.emit("}")
        elif isinstance(node, While):
            self.emit(f"while ({self.expr(node.cond)}) {{")
            with self.block():
                self.body(node.loop_body, out_params)
            self.emit("}")
        elif isinstance(node, For):
            variable = node.variable
            self.emit(
                f"for (int32_t {variable} = {self.expr(node.start)}; "
                f"{variable} <= {self.expr(node.stop)}; {variable}++) {{"
            )
            with self.block():
                self.body(node.loop_body, out_params)
            self.emit("}")
        elif isinstance(node, Wait):
            self._emit_wait(node)
        elif isinstance(node, CallStmt):
            self._emit_call(node, out_params)
        elif isinstance(node, Null):
            self.emit(";")
        else:
            raise CExportError(f"cannot emit statement {node!r}")

    def _emit_wait(self, node: Wait) -> None:
        if node.delay is not None:
            self._uses_bus = True
            self.emit(f"bus_idle({node.delay});")
            return
        if node.until is not None:
            for name in sorted(
                n for n in _free_names(node.until) if self._is_signal(n)
            ):
                self._extern_signals.add(name)
            self.emit(f"while (!({self.expr(node.until)})) {{ /* spin */ }}")
            return
        raise CExportError(
            "'wait on' has no sequential-C equivalent; software partitions "
            "synchronise through 'wait until' handshakes"
        )

    def _is_signal(self, name: str) -> bool:
        found = self.spec.global_variable(name)
        return found is not None and found.kind is StorageClass.SIGNAL

    def _emit_call(self, node: CallStmt, out_params: Set[str]) -> None:
        callee = node.callee
        if callee.startswith(_PROTOCOL_PREFIXES):
            self._uses_bus = True
            addr = self.expr(node.args[0])
            if "receive" in callee.split("_"):
                target = self.expr(node.args[1])
                if (
                    isinstance(node.args[1], VarRef)
                    and node.args[1].name in out_params
                ):
                    target = f"*{node.args[1].name}"
                self.emit(f"{target} = bus_read((uint32_t)({addr}));")
            else:
                self.emit(
                    f"bus_write((uint32_t)({addr}), "
                    f"(int32_t)({self.expr(node.args[1])}));"
                )
            return
        sub = self.spec.subprograms.get(callee)
        if sub is None:
            raise CExportError(f"call to unknown subprogram {callee!r}")
        rendered = []
        for param, arg in zip(sub.params, node.args):
            if param.direction in (Direction.OUT, Direction.INOUT):
                rendered.append(f"&{self.expr(arg)}")
            else:
                rendered.append(self.expr(arg))
        self.emit(f"{callee}({', '.join(rendered)});")

    # -- subprograms ------------------------------------------------------------------------------

    def subprogram(self, sub: Subprogram) -> None:
        params = []
        out_params: Set[str] = set()
        for param in sub.params:
            ctype = self.ctype(param.dtype)
            if param.direction in (Direction.OUT, Direction.INOUT):
                params.append(f"{ctype} *{param.name}")
                out_params.add(param.name)
            else:
                params.append(f"{ctype} {param.name}")
        signature = ", ".join(params) or "void"
        if sub.doc:
            self.emit(f"/* {sub.doc} */")
        self.emit(f"static void {sub.name}({signature}) {{")
        with self.block():
            for decl in sub.decls:
                self.declare_variable(decl, storage="")
            self.body(sub.stmt_body, out_params)
        self.emit("}")
        self.emit()

    # -- behaviors ----------------------------------------------------------------------------------

    def behavior(self, node: Behavior) -> None:
        if isinstance(node, LeafBehavior):
            if node.doc:
                self.emit(f"/* {node.doc} */")
            self.emit(f"static void beh_{node.name}(void) {{")
            with self.block():
                for decl in node.decls:
                    if decl.kind is StorageClass.SIGNAL:
                        raise CExportError(
                            f"leaf {node.name!r} declares a signal; signals "
                            "must be globals for the C hand-off"
                        )
                    self.declare_variable(decl, storage="")
                self.body(node.stmt_body, set())
            self.emit("}")
            self.emit()
            return
        if not isinstance(node, CompositeBehavior):
            raise CExportError(f"unknown behavior {node!r}")
        if node.is_concurrent:
            raise CExportError(
                f"composite {node.name!r} is concurrent; export a single "
                "sequential partition, not the system top"
            )
        for sub in node.subs:
            self.behavior(sub)
        self._sequential_driver(node)

    def _sequential_driver(self, node: CompositeBehavior) -> None:
        """The arc-following loop of a sequential composite."""
        names = [sub.name for sub in node.subs]
        if node.doc:
            self.emit(f"/* {node.doc} */")
        self.emit(f"static void beh_{node.name}(void) {{")
        with self.block():
            for decl in node.decls:
                self.declare_variable(decl, storage="")
            self.emit(f"int state = S_{node.initial};")
            self.emit("for (;;) {")
            with self.block():
                self.emit("switch (state) {")
                for name in names:
                    self.emit(f"case S_{name}:")
                    with self.block():
                        self.emit(f"beh_{name}();")
                        arcs = node.transitions_from(name)
                        if not arcs:
                            self.emit("return;")
                            self.emit("break;")
                            continue
                        chain_open = False
                        for arc in arcs:
                            action = (
                                "return;"
                                if arc.target is None
                                else f"state = S_{arc.target};"
                            )
                            if arc.condition is None:
                                if chain_open:
                                    self.emit(f"else {{ {action} }}")
                                else:
                                    self.emit(action)
                                chain_open = False
                                break
                            keyword = "else if" if chain_open else "if"
                            self.emit(
                                f"{keyword} ({self.expr(arc.condition)}) "
                                f"{{ {action} }}"
                            )
                            chain_open = True
                        else:
                            # no unconditional arc: completion when
                            # nothing matches
                            self.emit("else { return; }")
                        self.emit("break;")
                self.emit("default: return;")
                self.emit("}")
            self.emit("}")
        self.emit("}")
        self.emit()


def _free_names(expr: Expr):
    from repro.spec.expr import free_variables

    return free_variables(expr)


def _state_constants(top: Behavior) -> List[str]:
    out: List[str] = []
    seen: Set[str] = set()
    for node in top.iter_tree():
        if isinstance(node, CompositeBehavior):
            for sub in node.subs:
                if sub.name not in seen:
                    seen.add(sub.name)
                    out.append(sub.name)
    return out


def export_c(
    spec: Specification,
    top: Optional[Behavior] = None,
    standalone: bool = True,
    inputs: Optional[Dict[str, object]] = None,
) -> str:
    """Generate a C translation unit for ``spec``.

    ``top`` selects the behavior tree to compile (default the
    specification's top — use a component's partition subtree when
    exporting one side of a refined design).  ``standalone=True`` emits
    a runnable program: ports become initialised globals (``inputs``
    overrides the initial values of role-INPUT ports) and ``main``
    prints every output as ``name=value``.

    Width caveat: integer widths map to the next standard C width
    (e.g. 24-bit to ``int32_t``), so wrap-around behaviour differs at
    the extremes for non-standard widths.
    """
    top = top or spec.top
    inputs = dict(inputs or {})
    if inputs:
        spec = spec.copy()
        top = spec.top if top is None else spec.find_behavior(top.name)
        for name, value in inputs.items():
            decl = spec.global_variable(name)
            if decl is None or decl.role is not Role.INPUT:
                raise CExportError(f"{name!r} is not an input port")
            decl.init = decl.dtype.coerce(value)
    emitter = _Emitter(spec, standalone)

    # first pass over types so enum declarations come out before use
    for _, decl in spec.all_declared_variables():
        dtype = decl.dtype.element if isinstance(decl.dtype, ArrayType) else decl.dtype
        if isinstance(dtype, EnumType):
            emitter._enums[dtype.name] = dtype
    for sub in spec.subprograms.values():
        for param in sub.params:
            if isinstance(param.dtype, EnumType):
                emitter._enums[param.dtype.name] = param.dtype

    body_emitter = _Emitter(spec, standalone)
    body_emitter._enums = emitter._enums

    # subprograms that are not intercepted protocol wrappers
    for sub in spec.subprograms.values():
        if sub.name.startswith(_PROTOCOL_PREFIXES) or sub.name.startswith(
            ("SLV_send_", "SLV_receive_", "MST_send_b", "MST_receive_b")
        ):
            continue
        body_emitter.subprogram(sub)
    body_emitter.behavior(top)

    # -- assemble the unit ---------------------------------------------------
    out = _Emitter(spec, standalone)
    out._enums = body_emitter._enums
    out.emit(f"/* Generated by repro from specification {spec.name!r}.")
    out.emit(f" * Behavior tree: {top.name} ({'standalone' if standalone else 'partition'} mode).")
    out.emit(" */")
    out.emit("#include <stdint.h>")
    if standalone:
        out.emit("#include <stdio.h>")
    out.emit()
    out.declare_enums()
    if out._enums:
        out.emit()

    states = _state_constants(top)
    if states:
        for index, name in enumerate(states):
            out.emit(f"#define S_{name} {index}")
        out.emit()

    out.emit(_HELPERS)
    if body_emitter._uses_bus:
        out.emit(_BUS_API_EXTERN)
        out.emit()

    for decl in spec.variables:
        if decl.kind is StorageClass.SIGNAL:
            if decl.name in body_emitter._extern_signals:
                out.emit(
                    f"extern volatile {out.ctype(decl.dtype)} {decl.name};"
                )
            continue
        if not standalone and decl.role is not Role.INTERNAL:
            out.emit(f"extern {out.ctype(decl.dtype)} {decl.name};")
            continue
        # file-scope definitions are deliberately non-static: ports stay
        # linkable, and unused inputs don't trip -Wunused-variable
        out.declare_variable(decl, storage="")
    out.emit()

    out.lines.extend(body_emitter.lines)

    if standalone:
        out.emit("int main(void) {")
        with out.block():
            out.emit(f"beh_{top.name}();")
            for decl in spec.outputs():
                out.emit(
                    f'printf("{decl.name}=%lld\\n", (long long){decl.name});'
                )
            out.emit("return 0;")
        out.emit("}")
    else:
        # the partition's linkable entry point (everything else is static)
        out.emit(f"void run_{top.name}(void) {{")
        with out.block():
            out.emit(f"beh_{top.name}();")
        out.emit("}")
    return "\n".join(out.lines) + "\n"
