"""VHDL code generation — the "behavioral synthesis" hand-off.

The paper positions the refined specification as "input for functional
verification, behavioral synthesis or software compilation tools".
This backend emits the hardware half: a behavioral VHDL-93 entity +
architecture for a specification (the functional model, or one ASIC
partition of a refined design).

Mapping:

======================  =============================================
IR construct            VHDL construct
======================  =============================================
INPUT/OUTPUT variable   entity port (``in`` / ``buffer``)
IntType(w)              ``signed(w-1 downto 0)`` semantics via
                        ``integer range``-constrained subtypes
BitVectorType(w)        ``integer range 0 to 2**w-1`` subtype
BoolType                ``boolean``
EnumType                VHDL enumeration type
ArrayType               constrained array type
signal                  architecture signal
plain global variable   ``shared variable`` (VHDL-93)
leaf behavior           one procedure called by its driver process
sequential composite    an arc-following loop with a state variable
concurrent composite    one process per child (top level only)
subprogram              procedure declared in the process that calls it
``x := e`` / ``s <= e`` variable / signal assignment
``wait until`` / for    VHDL wait statements
======================  =============================================

Multi-driver note: a refined *system* drives bus signals from several
processes and would need resolved/tri-state types; this backend targets
the per-partition hand-off the paper describes (one ASIC partition =
one process), where every signal has one driver inside the entity and
handshake peers are ports.  Exporting a whole refined system top is
supported for documentation purposes but flagged with a comment header
listing the signals that would need resolution.

There is no VHDL simulator in the test environment, so this backend is
validated structurally (balanced constructs, declared-before-use,
fidelity of the statement mapping) rather than by co-simulation — the
C backend covers executable differential testing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.errors import RefinementError
from repro.spec.behavior import (
    Behavior,
    CompositeBehavior,
    LeafBehavior,
)
from repro.spec.expr import BinOp, Const, Expr, Index, UnaryOp, VarRef
from repro.spec.specification import Specification
from repro.spec.stmt import (
    Assign,
    Body,
    CallStmt,
    For,
    If,
    Null,
    SignalAssign,
    Stmt,
    Wait,
    While,
)
from repro.spec.subprogram import Direction, Subprogram
from repro.spec.types import (
    ArrayType,
    BitVectorType,
    BoolType,
    DataType,
    EnumType,
    IntType,
)
from repro.spec.variable import Role, StorageClass

__all__ = ["export_vhdl", "VhdlExportError"]


class VhdlExportError(RefinementError):
    """The specification uses a construct the VHDL backend cannot map."""


_KEYWORDS = {
    "in", "out", "signal", "variable", "process", "begin", "end", "entity",
    "architecture", "is", "of", "wait", "loop", "if", "then", "else",
    "case", "when", "others", "type", "range", "to", "downto", "shared",
    "procedure", "buffer", "port", "map", "use", "library", "abs", "mod",
}


def _ident(name: str) -> str:
    """Escape identifiers that collide with VHDL keywords."""
    return f"\\{name}\\" if name.lower() in _KEYWORDS else name


class _VhdlEmitter:
    def __init__(self, spec: Specification):
        self.spec = spec
        self.lines: List[str] = []
        self._indent = 0
        self._array_types: Dict[str, ArrayType] = {}
        self._enums: Dict[str, EnumType] = {}
        #: output ports are VHDL signals whose writes would only land a
        #: delta later, breaking the IR's immediate-update reads.  Each
        #: written output port gets a shared-variable shadow: reads and
        #: writes use the shadow, and every write also drives the port.
        self.output_ports: Set[str] = {
            v.name
            for v in spec.variables
            if v.role is Role.OUTPUT and v.kind is StorageClass.VARIABLE
        }

    def emit(self, text: str = "") -> None:
        self.lines.append(("  " * self._indent + text) if text else "")

    def block(self):
        emitter = self

        class _Block:
            def __enter__(self):
                emitter._indent += 1

            def __exit__(self, *exc):
                emitter._indent -= 1

        return _Block()

    # -- types -------------------------------------------------------------

    def vhdl_type(self, dtype: DataType, owner: str = "") -> str:
        if isinstance(dtype, BoolType):
            return "boolean"
        if isinstance(dtype, IntType):
            return f"integer range {dtype.min_value} to {dtype.max_value}"
        if isinstance(dtype, BitVectorType):
            return f"integer range 0 to {(1 << dtype.width) - 1}"
        if isinstance(dtype, EnumType):
            self._enums[dtype.name] = dtype
            return _ident(dtype.name)
        if isinstance(dtype, ArrayType):
            key = f"{owner}_array_t" if owner else f"arr{len(self._array_types)}_t"
            existing = next(
                (
                    name
                    for name, candidate in self._array_types.items()
                    if candidate == dtype
                ),
                None,
            )
            if existing:
                return existing
            self._array_types[key] = dtype
            return key
        raise VhdlExportError(f"cannot map type {dtype} to VHDL")

    def literal(self, value, dtype: Optional[DataType] = None) -> str:
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, int):
            return str(value)
        if isinstance(value, str):
            return _ident(value)
        if isinstance(value, tuple):
            return "(" + ", ".join(self.literal(v) for v in value) + ")"
        raise VhdlExportError(f"cannot emit literal {value!r}")

    # -- expressions ---------------------------------------------------------

    def expr(self, node: Expr) -> str:
        if isinstance(node, Const):
            return self.literal(node.value)
        if isinstance(node, VarRef):
            if node.name in self.output_ports:
                return f"{_ident(node.name)}_var"
            return _ident(node.name)
        if isinstance(node, Index):
            return f"{self.expr(node.base)}({self.expr(node.index_expr)})"
        if isinstance(node, UnaryOp):
            operand = self.expr(node.operand)
            return f"({node.op} {operand})"
        if isinstance(node, BinOp):
            left = self.expr(node.left)
            right = self.expr(node.right)
            return f"({left} {node.op} {right})"
        raise VhdlExportError(f"cannot emit expression {node!r}")

    def _condition(self, node: Expr) -> str:
        """Conditions comparing 1-bit bus lines read naturally because
        bit vectors are integer subtypes here."""
        return self.expr(node)

    # -- statements --------------------------------------------------------------

    def body(self, stmts: Body) -> None:
        if not stmts:
            self.emit("null;")
            return
        for stmt in stmts:
            self.stmt(stmt)

    def stmt(self, node: Stmt) -> None:
        if isinstance(node, Assign):
            from repro.spec.stmt import lvalue_name

            target_name = lvalue_name(node.target)
            self.emit(
                f"{self.expr(node.target)} := {self.expr(node.value)};"
            )
            if target_name in self.output_ports:
                # the shadow holds the immediate value; drive the port
                self.emit(f"{_ident(target_name)} <= {_ident(target_name)}_var;")
        elif isinstance(node, SignalAssign):
            self.emit(f"{self.expr(node.target)} <= {self.expr(node.value)};")
        elif isinstance(node, If):
            self.emit(f"if {self._condition(node.cond)} then")
            with self.block():
                self.body(node.then_body)
            for cond, arm in node.elifs:
                self.emit(f"elsif {self._condition(cond)} then")
                with self.block():
                    self.body(arm)
            if node.else_body:
                self.emit("else")
                with self.block():
                    self.body(node.else_body)
            self.emit("end if;")
        elif isinstance(node, While):
            self.emit(f"while {self._condition(node.cond)} loop")
            with self.block():
                self.body(node.loop_body)
            self.emit("end loop;")
        elif isinstance(node, For):
            self.emit(
                f"for {_ident(node.variable)} in {self.expr(node.start)} "
                f"to {self.expr(node.stop)} loop"
            )
            with self.block():
                self.body(node.loop_body)
            self.emit("end loop;")
        elif isinstance(node, Wait):
            if node.until is not None:
                self.emit(f"wait until {self._condition(node.until)};")
            elif node.on:
                self.emit(f"wait on {', '.join(_ident(n) for n in node.on)};")
            else:
                self.emit(f"wait for {node.delay} ns;")
        elif isinstance(node, CallStmt):
            args = ", ".join(self.expr(a) for a in node.args)
            self.emit(f"{_ident(node.callee)}({args});")
        elif isinstance(node, Null):
            self.emit("null;")
        else:
            raise VhdlExportError(f"cannot emit statement {node!r}")

    # -- subprograms ----------------------------------------------------------------

    def subprogram(self, sub: Subprogram, signals: Set[str]) -> None:
        """Emit a procedure.  Signals it assigns must be visible at the
        declaration point (we declare procedures inside the process, so
        architecture signals are assignable through the process's
        drivers)."""
        params = []
        for param in sub.params:
            mode = {
                Direction.IN: "in",
                Direction.OUT: "out",
                Direction.INOUT: "inout",
            }[param.direction]
            params.append(
                f"{_ident(param.name)} : {mode} {self.vhdl_type(param.dtype)}"
            )
        signature = f"({'; '.join(params)})" if params else ""
        if sub.doc:
            self.emit(f"-- {sub.doc}")
        self.emit(f"procedure {_ident(sub.name)}{signature} is")
        with self.block():
            for decl in sub.decls:
                self.emit(
                    f"variable {_ident(decl.name)} : "
                    f"{self.vhdl_type(decl.dtype, decl.name)};"
                )
        self.emit("begin")
        with self.block():
            self.body(sub.stmt_body)
        self.emit(f"end procedure {_ident(sub.name)};")
        self.emit()


def _subprograms_used_by(spec: Specification, top: Behavior) -> List[Subprogram]:
    """Transitive closure of subprogram calls reachable from ``top``."""
    from repro.spec.visitor import walk_statements

    used: List[str] = []
    seen: Set[str] = set()

    def visit_body(stmts):
        for stmt in walk_statements(stmts):
            if isinstance(stmt, CallStmt) and stmt.callee not in seen:
                seen.add(stmt.callee)
                sub = spec.subprograms.get(stmt.callee)
                if sub is not None:
                    visit_body(sub.stmt_body)
                    used.append(stmt.callee)

    for node in top.iter_tree():
        if isinstance(node, LeafBehavior):
            visit_body(node.stmt_body)
    # dependency order: callees come out first because of post-order
    return [spec.subprograms[name] for name in used]


def _behavior_process(
    emitter: _VhdlEmitter,
    spec: Specification,
    node: Behavior,
    signals: Set[str],
) -> None:
    """One VHDL process executing ``node``'s tree sequentially."""
    emitter.emit(f"{_ident(node.name)}_proc : process")
    with emitter.block():
        for sub in _subprograms_used_by(spec, node):
            emitter.subprogram(sub, signals)
        # every declaration in the subtree becomes a process variable
        for behavior in node.iter_tree():
            for decl in behavior.decls:
                if decl.kind is StorageClass.SIGNAL:
                    continue
                init = (
                    f" := {emitter.literal(decl.initial_value)}"
                )
                emitter.emit(
                    f"variable {_ident(decl.name)} : "
                    f"{emitter.vhdl_type(decl.dtype, decl.name)}{init};"
                )
        composites = [
            b for b in node.iter_tree() if isinstance(b, CompositeBehavior)
        ]
        for composite in composites:
            if composite.is_concurrent and composite is not node:
                raise VhdlExportError(
                    f"nested concurrency in {composite.name!r}: flatten or "
                    "export per partition"
                )
        # leaf bodies become procedures so the sequencer can call them
        for behavior in node.iter_tree():
            if isinstance(behavior, LeafBehavior):
                if behavior.doc:
                    emitter.emit(f"-- {behavior.doc}")
                emitter.emit(f"procedure beh_{_ident(behavior.name)} is")
                emitter.emit("begin")
                with emitter.block():
                    emitter.body(behavior.stmt_body)
                emitter.emit(f"end procedure beh_{_ident(behavior.name)};")
                emitter.emit()
        for composite in reversed(composites):
            if composite.is_sequential:
                _sequencer_procedure(emitter, composite)
    emitter.emit("begin")
    with emitter.block():
        if isinstance(node, LeafBehavior):
            emitter.emit(f"beh_{_ident(node.name)};")
        else:
            emitter.emit(f"beh_{_ident(node.name)};")
        emitter.emit("wait;  -- behavior completed")
    emitter.emit(f"end process {_ident(node.name)}_proc;")


def _sequencer_procedure(
    emitter: _VhdlEmitter, composite: CompositeBehavior
) -> None:
    """The arc-following loop of a sequential composite, as a procedure
    calling its children's procedures."""
    names = [sub.name for sub in composite.subs]
    if composite.doc:
        emitter.emit(f"-- {composite.doc}")
    emitter.emit(f"procedure beh_{_ident(composite.name)} is")
    with emitter.block():
        emitter.emit(
            "type state_t is (" + ", ".join(f"S_{n}" for n in names)
            + ", S_done);"
        )
        emitter.emit(f"variable state : state_t := S_{composite.initial};")
    emitter.emit("begin")
    with emitter.block():
        emitter.emit("while state /= S_done loop")
        with emitter.block():
            emitter.emit("case state is")
            with emitter.block():
                for name in names:
                    emitter.emit(f"when S_{name} =>")
                    with emitter.block():
                        emitter.emit(f"beh_{_ident(name)};")
                        arcs = composite.transitions_from(name)
                        if not arcs:
                            emitter.emit("state := S_done;")
                            continue
                        first = True
                        closed = False
                        for arc in arcs:
                            target = (
                                "S_done" if arc.target is None
                                else f"S_{arc.target}"
                            )
                            if arc.condition is None:
                                if first:
                                    emitter.emit(f"state := {target};")
                                else:
                                    emitter.emit("else")
                                    with emitter.block():
                                        emitter.emit(f"state := {target};")
                                    emitter.emit("end if;")
                                closed = True
                                break
                            keyword = "if" if first else "elsif"
                            emitter.emit(
                                f"{keyword} {emitter.expr(arc.condition)} then"
                            )
                            with emitter.block():
                                emitter.emit(f"state := {target};")
                            first = False
                        if not closed and not first:
                            emitter.emit("else")
                            with emitter.block():
                                emitter.emit("state := S_done;")
                            emitter.emit("end if;")
                emitter.emit("when S_done =>")
                with emitter.block():
                    emitter.emit("null;")
            emitter.emit("end case;")
        emitter.emit("end loop;")
    emitter.emit(f"end procedure beh_{_ident(composite.name)};")
    emitter.emit()


def export_vhdl(
    spec: Specification,
    top: Optional[Behavior] = None,
    entity_name: Optional[str] = None,
) -> str:
    """Generate a behavioral VHDL-93 entity + architecture.

    ``top`` selects the behavior tree (default the specification's
    top).  A concurrent ``top`` maps each child to its own process —
    appropriate for a refined system where single-driver discipline
    holds per partition; a multi-driver warning header is emitted when
    several processes assign the same signal.
    """
    top = top or spec.top
    entity = entity_name or spec.name
    emitter = _VhdlEmitter(spec)

    # discover types up front
    for _, decl in spec.all_declared_variables():
        emitter.vhdl_type(decl.dtype, decl.name)
    for sub in spec.subprograms.values():
        for param in sub.params:
            emitter.vhdl_type(param.dtype, param.name)
        for decl in sub.decls:
            emitter.vhdl_type(decl.dtype, decl.name)

    processes: List[Behavior]
    if isinstance(top, CompositeBehavior) and top.is_concurrent:
        processes = list(top.subs)
    else:
        processes = [top]

    multi_driver = _multi_driver_signals(spec, processes)

    out = _VhdlEmitter(spec)
    out._array_types = emitter._array_types
    out._enums = emitter._enums
    out.emit(f"-- Generated by repro from specification {spec.name!r}")
    out.emit(f"-- Behavior tree: {top.name}")
    if multi_driver:
        out.emit("-- WARNING: the following signals are driven by more than")
        out.emit("-- one process and need a resolved/tri-state realisation")
        out.emit(f"-- before synthesis: {', '.join(sorted(multi_driver))}")
    out.emit()

    # -- entity -------------------------------------------------------------
    ports = [v for v in spec.variables if v.role is not Role.INTERNAL
             and v.kind is StorageClass.VARIABLE]
    out.emit(f"entity {_ident(entity)} is")
    if ports:
        with out.block():
            out.emit("port (")
            with out.block():
                rendered = []
                for port in ports:
                    mode = "in" if port.role is Role.INPUT else "buffer"
                    rendered.append(
                        f"{_ident(port.name)} : {mode} "
                        f"{out.vhdl_type(port.dtype, port.name)}"
                    )
                for index, line in enumerate(rendered):
                    suffix = ";" if index < len(rendered) - 1 else ""
                    out.emit(line + suffix)
            out.emit(");")
    out.emit(f"end entity {_ident(entity)};")
    out.emit()

    # -- architecture ----------------------------------------------------------
    out.emit(f"architecture behavioral of {_ident(entity)} is")
    with out.block():
        for name, enum in out._enums.items():
            literals = ", ".join(_ident(lit) for lit in enum.literals)
            out.emit(f"type {_ident(name)} is ({literals});")
        for name, array_type in out._array_types.items():
            out.emit(
                f"type {name} is array (0 to {array_type.length - 1}) of "
                f"{out.vhdl_type(array_type.element)};"
            )
        # shadow variables for written output ports
        for decl in spec.variables:
            if decl.name in out.output_ports:
                out.emit(
                    f"shared variable {_ident(decl.name)}_var : "
                    f"{out.vhdl_type(decl.dtype, decl.name)}"
                    f" := {out.literal(decl.initial_value)};"
                )
        for decl in spec.variables:
            if decl.role is not Role.INTERNAL:
                continue
            type_text = out.vhdl_type(decl.dtype, decl.name)
            init = f" := {out.literal(decl.initial_value)}"
            if decl.kind is StorageClass.SIGNAL:
                out.emit(
                    f"signal {_ident(decl.name)} : {type_text}{init};"
                )
            else:
                out.emit(
                    f"shared variable {_ident(decl.name)} : {type_text}{init};"
                )
        # behavior-declared signals live at architecture level too
        for behavior in top.iter_tree():
            for decl in behavior.decls:
                if decl.kind is StorageClass.SIGNAL:
                    out.emit(
                        f"signal {_ident(decl.name)} : "
                        f"{out.vhdl_type(decl.dtype, decl.name)}"
                        f" := {out.literal(decl.initial_value)};"
                    )
    out.emit("begin")
    with out.block():
        signal_names = {
            v.name for v in spec.variables if v.kind is StorageClass.SIGNAL
        }
        for process in processes:
            _behavior_process(out, spec, process, signal_names)
            out.emit()
    out.emit("end architecture behavioral;")
    return "\n".join(out.lines) + "\n"


def _multi_driver_signals(
    spec: Specification, processes: Sequence[Behavior]
) -> Set[str]:
    """Signals assigned from more than one process (need resolution)."""
    from repro.spec.expr import free_variables
    from repro.spec.stmt import lvalue_name
    from repro.spec.visitor import walk_statements

    signal_names = {
        v.name for v in spec.variables if v.kind is StorageClass.SIGNAL
    }

    def assigned_signals(node: Behavior) -> Set[str]:
        out: Set[str] = set()
        bodies = []
        for behavior in node.iter_tree():
            if isinstance(behavior, LeafBehavior):
                bodies.append(behavior.stmt_body)
        # calls may assign signals through subprograms
        for sub in _subprograms_used_by(spec, node):
            bodies.append(sub.stmt_body)
        for stmts in bodies:
            for stmt in walk_statements(stmts):
                if isinstance(stmt, SignalAssign):
                    out.add(lvalue_name(stmt.target))
        return out & signal_names

    drivers: Dict[str, int] = {}
    for process in processes:
        for name in assigned_signals(process):
            drivers[name] = drivers.get(name, 0) + 1
    return {name for name, count in drivers.items() if count > 1}
