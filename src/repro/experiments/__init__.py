"""The paper's evaluation harness (§5): Figures 9 and 10, reference
data, and table rendering."""

from repro.experiments.figure9 import (
    Figure9Cell,
    Figure9Result,
    default_allocation,
    run_figure9,
)
from repro.experiments.explore import (
    DesignPoint,
    ExploreResult,
    ParetoFrontier,
    QualityCache,
    QualityEvaluator,
    StopReport,
    explore_allocations,
    run_explore,
    validate_explore_report,
)
from repro.experiments.figure10 import Figure10Cell, Figure10Result, run_figure10
from repro.experiments.fuzzing import (
    FuzzReport,
    SliceStats,
    replay_corpus,
    run_fuzz,
)
from repro.experiments.paperdata import (
    PAPER_FIGURE9,
    PAPER_FIGURE10_LINES,
    PAPER_FIGURE10_SECONDS,
    PAPER_ORIGINAL_LINES,
    PAPER_SPEC_STATS,
)
from repro.experiments.profiling import ProfileReport, run_profile
from repro.experiments.robustness import (
    RobustnessCell,
    RobustnessResult,
    default_scenarios,
    run_robustness,
)
from repro.experiments.sweep import SweepCell, SweepResult, run_sweep
from repro.experiments.tables import render_table

__all__ = [
    "ProfileReport",
    "run_profile",
    "RobustnessCell",
    "RobustnessResult",
    "default_scenarios",
    "run_robustness",
    "Figure9Cell",
    "Figure9Result",
    "default_allocation",
    "run_figure9",
    "Figure10Cell",
    "Figure10Result",
    "run_figure10",
    "FuzzReport",
    "SliceStats",
    "replay_corpus",
    "run_fuzz",
    "SweepCell",
    "SweepResult",
    "run_sweep",
    "DesignPoint",
    "ExploreResult",
    "ParetoFrontier",
    "QualityCache",
    "QualityEvaluator",
    "StopReport",
    "explore_allocations",
    "run_explore",
    "validate_explore_report",
    "PAPER_FIGURE9",
    "PAPER_FIGURE10_LINES",
    "PAPER_FIGURE10_SECONDS",
    "PAPER_ORIGINAL_LINES",
    "PAPER_SPEC_STATS",
    "render_table",
]
