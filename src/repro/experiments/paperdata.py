"""The paper's published evaluation numbers (Figures 9 and 10).

Kept verbatim so the reproduction can report paper-vs-measured side by
side and check the *shape* claims (who wins, where the hot spots are)
without asserting absolute equality — our substrate is a simulator and
a synthetic reconstruction of the medical system, not the authors'
SPARC5 toolchain.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = [
    "PAPER_FIGURE9",
    "PAPER_FIGURE10_LINES",
    "PAPER_FIGURE10_SECONDS",
    "PAPER_ORIGINAL_LINES",
    "PAPER_SPEC_STATS",
]

#: Figure 9 — bus transfer rates in Mbit/s, per design and model, in the
#: bus order of Figure 3 (Model2: b1, b2, b3; Model3: b1..b6; Model4:
#: b1, b2=b3=b4, b5 — the triple is one reported number).
PAPER_FIGURE9: Dict[str, Dict[str, List[float]]] = {
    "Design1": {
        "Model1": [3636],
        "Model2": [853, 2030, 753],
        "Model3": [853, 480, 179, 640, 731, 753],
        "Model4": [1333, 910, 1393],
    },
    "Design2": {
        "Model1": [3636],
        "Model2": [853, 1580, 1203],
        "Model3": [853, 179, 480, 281, 640, 1202],
        "Model4": [1352, 800, 1484],
    },
    "Design3": {
        "Model1": [3636],
        "Model2": [42, 3576, 18],
        "Model3": [42, 480, 990, 640, 1466, 18],
        "Model4": [522, 2456, 658],
    },
}

#: Figure 10 — refined specification sizes in source lines.
PAPER_FIGURE10_LINES: Dict[str, Dict[str, int]] = {
    "Design1": {"Model1": 3057, "Model2": 2815, "Model3": 2630, "Model4": 3377},
    "Design2": {"Model1": 3057, "Model2": 2743, "Model3": 2630, "Model4": 2985},
    "Design3": {"Model1": 3057, "Model2": 3032, "Model3": 2635, "Model4": 4324},
}

#: Figure 10 — refinement CPU seconds on a SPARC5 workstation.
PAPER_FIGURE10_SECONDS: Dict[str, Dict[str, int]] = {
    "Design1": {"Model1": 37, "Model2": 35, "Model3": 33, "Model4": 37},
    "Design2": {"Model1": 37, "Model2": 34, "Model3": 33, "Model4": 37},
    "Design3": {"Model1": 37, "Model2": 37, "Model3": 37, "Model4": 39},
}

#: The medical system's input specification size (paper §5).
PAPER_ORIGINAL_LINES = 226

#: The medical system's published structural statistics.
PAPER_SPEC_STATS = {"behaviors": 16, "variables": 14, "channels": 52}
