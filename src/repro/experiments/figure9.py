"""Figure 9 reproduction: bus transfer rates for 3 designs x 4 models.

Pipeline per design (exactly the paper's §5 procedure):

1. profile the original medical specification under the design's
   partition (behavior lifetimes + dynamic access counts);
2. compute every channel's transfer rate (bits moved / accessor
   lifetime, ref [13]);
3. for each implementation model, build its topology plan and sum the
   channel rates over the buses each access traverses.

The result object renders the paper's table (Mbit/s per bus, Model4's
equal interface triple reported once as ``b2=b3=b4``) and carries the
raw per-bus numbers for the shape assertions in the test suite.

Each cell is additionally *measured*, not just estimated: the refined
design is executed with a :class:`repro.sim.metrics.SimMetrics`
attached, so every bus transaction the kernel actually scheduled is
counted (``Figure9Cell.counted_transfers``).  The activity table
(:meth:`Figure9Result.render_activity`) reports those counts next to
the kernel's activation/delta-cycle totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.arch.allocation import Allocation
from repro.arch.components import asic, processor
from repro.estimate.profile import ProfileResult, profile_specification
from repro.estimate.rates import BusRateReport, bus_transfer_rates, channel_rates
from repro.graph.access_graph import AccessGraph
from repro.graph.analysis import classify_variables
from repro.models.impl_models import ALL_MODELS
from repro.experiments.paperdata import PAPER_FIGURE9
from repro.experiments.tables import render_table
from repro.sim.metrics import SimMetrics
from repro.spec.specification import Specification

__all__ = ["Figure9Result", "run_figure9", "default_allocation"]


def default_allocation() -> Allocation:
    """The paper's Figure 1b allocation: an Intel8086-class processor
    and a 10k-gate / 75-pin ASIC."""
    return Allocation(
        [
            processor("PROC", cpu="Intel8086", clock_hz=10e6),
            asic("ASIC", gates=10000, pins=75, clock_hz=25e6),
        ],
        name="medical",
    )


@dataclass
class Figure9Cell:
    """One (design, model) cell: per-bus Mbit/s in bus order."""

    design: str
    model: str
    report: BusRateReport
    #: kernel counters from executing the refined design (None when the
    #: sweep ran with ``count_transfers=False``)
    metrics: Optional[SimMetrics] = field(default=None, compare=False)

    @property
    def rates_mbits(self) -> Dict[str, float]:
        return self.report.as_row()

    @property
    def counted_transfers(self) -> Optional[int]:
        """Bus transactions the kernel actually scheduled while
        executing this cell's refined design (``None`` if unmeasured)."""
        return self.metrics.bus_transactions if self.metrics else None

    @property
    def max_mbits(self) -> float:
        return self.report.max_rate / 1e6

    def paper_style_cells(self) -> List[float]:
        """Bus rates the way the paper prints them: Model4's equal
        interface triple collapses to one number."""
        rates = self.rates_mbits
        if self.model != "Model4":
            return [rates[name] for name in self.report.plan.buses]
        from repro.models.plan import BusRole

        plan = self.report.plan
        out: List[float] = []
        triple_done = False
        for name, bus in plan.buses.items():
            if bus.role in (BusRole.IFACE, BusRole.INTERCHANGE):
                if not triple_done:
                    out.append(rates[name])
                    triple_done = True
                continue
            out.append(rates[name])
        return out


class Figure9Result:
    """All twelve cells plus the context to interrogate them."""

    def __init__(
        self,
        spec: Specification,
        graph: AccessGraph,
        profiles: Dict[str, ProfileResult],
    ):
        self.spec = spec
        self.graph = graph
        self.profiles = profiles
        self.cells: Dict[str, Dict[str, Figure9Cell]] = {}
        self.ratio_labels: Dict[str, str] = {}

    def cell(self, design: str, model: str) -> Figure9Cell:
        return self.cells[design][model]

    def counted_transfers(self, design: str) -> Dict[str, Optional[int]]:
        """Measured bus transactions per model for ``design``."""
        return {
            model: cell.counted_transfers
            for model, cell in self.cells[design].items()
        }

    def render_activity(self) -> str:
        """Measured kernel activity per cell: counted bus transactions,
        process activations and delta cycles from executing each refined
        design (blank when the sweep ran ``count_transfers=False``)."""
        headers = ["Design", "Model", "bus transfers", "activations", "delta cycles"]
        rows: List[List[str]] = []
        for design, by_model in self.cells.items():
            for model, cell in by_model.items():
                m = cell.metrics
                rows.append(
                    [design, model]
                    + (
                        [str(m.bus_transactions), str(m.activations), str(m.delta_cycles)]
                        if m is not None
                        else ["-", "-", "-"]
                    )
                )
        return render_table(
            headers,
            rows,
            title="Figure 9 activity: counted kernel events per refined design",
        )

    def render(self, include_paper: bool = True) -> str:
        """The Figure 9 table, optionally with the paper's numbers."""
        headers = ["Design", "Model1", "Model2", "Model3", "Model4"]
        rows: List[List[str]] = []
        for design in self.cells:
            row = [f"{design} ({self.ratio_labels[design]})"]
            for model in ("Model1", "Model2", "Model3", "Model4"):
                cells = self.cell(design, model).paper_style_cells()
                row.append(", ".join(f"{value:.0f}" for value in cells))
            rows.append(row)
            # paper reference rows exist only for the medical designs;
            # other workloads print the measured row alone
            if include_paper and design in PAPER_FIGURE9:
                paper_row = ["  (paper)"]
                for model in ("Model1", "Model2", "Model3", "Model4"):
                    paper_row.append(
                        ", ".join(str(v) for v in PAPER_FIGURE9[design][model])
                    )
                rows.append(paper_row)
        return render_table(
            headers,
            rows,
            title="Figure 9: bus transfer rates (Mbit/s) per design and model",
        )


def run_figure9(
    spec: Optional[Specification] = None,
    inputs: Optional[Dict[str, int]] = None,
    allocation: Optional[Allocation] = None,
    count_transfers: bool = True,
    engine=None,
    workload=None,
) -> Figure9Result:
    """Run the full Figure 9 sweep on a registry workload.

    ``workload`` names a :mod:`repro.apps.workloads` registry entry
    (default ``medical``); it supplies the specification, the design
    set and the default stimulus, and its id lands in every job's
    cache key.  An explicit ``spec``/``inputs`` overrides the
    workload's (the designs still come from the workload's catalog,
    built against that spec).

    With ``count_transfers`` (the default) each cell's refined design is
    also *executed* with a :class:`repro.sim.metrics.SimMetrics`
    attached, so the table is backed by counted bus transactions rather
    than bookkeeping alone; pass ``False`` to skip the twelve extra
    simulations.

    The rate analytics (profiling, channel rates, topology plans) stay
    in-process — they cost milliseconds.  The twelve refine+execute
    measurements are dispatched as ``figure9-cell`` jobs through
    ``engine`` (an :class:`repro.exec.ExecutionEngine`; default: the
    serial, uncached reference), so a process executor parallelises
    them and a result cache makes warm re-runs free.
    """
    from repro.apps.workloads import resolve_workload
    from repro.exec import ExecutionEngine, Job, canonical_partition
    from repro.exec import canonical_spec_text

    workload = resolve_workload(workload)
    spec = spec or workload.spec()
    spec.validate()
    inputs = dict(inputs if inputs is not None else workload.default_inputs)
    allocation = allocation or default_allocation()
    graph = AccessGraph.from_specification(spec)
    designs = workload.designs(spec)
    engine = engine if engine is not None else ExecutionEngine()

    result = Figure9Result(spec, graph, {})
    jobs = []
    if count_transfers:
        spec_text = canonical_spec_text(spec)
        jobs = [
            Job(
                "figure9-cell",
                {
                    "workload": workload.id,
                    "spec": spec_text,
                    "partition": canonical_partition(partition),
                    "design": design_name,
                    "model": model.name,
                    "inputs": inputs,
                },
                label=f"figure9:{design_name}:{model.name}",
            )
            for design_name, partition in designs.items()
            for model in ALL_MODELS
        ]
    measured = iter(engine.run(jobs))

    for design_name, partition in designs.items():
        profile = profile_specification(
            spec, partition, allocation, inputs=inputs, graph=graph
        )
        result.profiles[design_name] = profile
        result.ratio_labels[design_name] = classify_variables(
            graph, partition
        ).ratio_label()
        rates = channel_rates(graph, profile)
        result.cells[design_name] = {}
        for model in ALL_MODELS:
            plan = model.build_plan(spec, partition, graph=graph)
            report = bus_transfer_rates(plan, graph, profile, rates=rates)
            metrics: Optional[SimMetrics] = None
            if count_transfers:
                payload = next(measured).require()
                metrics = SimMetrics.from_dict(payload["metrics"])
            result.cells[design_name][model.name] = Figure9Cell(
                design_name, model.name, report, metrics
            )
    return result
