"""Robustness campaign: fault scenarios x designs x models.

The paper's correctness argument is that every refined model stays
functionally equivalent to the original specification.  This campaign
stresses that claim the way silicon gets stressed: inject faults into
the refined model's buses and daemons and check that

* faults the timeout-and-retry protocol is designed to absorb (a
  dropped or delayed acknowledge, a transiently stalled memory server)
  leave the refined design *equivalent* — recovery;
* faults beyond the protocol's reach (corrupted data words, a killed
  memory daemon) are *detected* — the run deadlocks, trips a kernel
  limit, or mismatches the golden original — rather than silently
  producing wrong answers that look right.

Every cell runs the same seeded :class:`repro.sim.faults.FaultInjector`
recipe, so the whole campaign is deterministic: identical seeds produce
a byte-identical table.  The table deliberately carries no wall-clock
timing for the same reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.allocation import Allocation
from repro.errors import (
    DeadlockError,
    FaultConfigError,
    SimulationError,
    SimulationLimitExceeded,
)
from repro.experiments.figure9 import default_allocation
from repro.experiments.tables import render_table
from repro.models.impl_models import ALL_MODELS
from repro.sim.equivalence import check_equivalence
from repro.sim.faults import FaultInjector, FaultScenario
from repro.sim.interpreter import DEFAULT_TIME_UNIT
from repro.sim.kernel import KernelLimits
from repro.spec.specification import Specification

__all__ = [
    "DEFAULT_SCENARIOS",
    "RobustnessCell",
    "RobustnessResult",
    "default_scenarios",
    "run_robustness",
]

# Outcomes that count as the run *detecting* an unabsorbed fault.
_DETECTED = frozenset({"deadlock", "limit", "sim-error", "mismatch"})


def default_scenarios() -> List[FaultScenario]:
    """The campaign's scenario catalog.

    Targets are glob patterns over *refined* signal/process names, so
    one catalog covers every design and model: ``b*_done`` matches the
    per-bus handshake acknowledges (``b1_done``, ``b2_done``, ...)
    without also matching control-refinement signals like
    ``Acquire_done``, which no protocol machinery guards.

    Time fields (``delay``) are in *protocol ticks* (one ``wait for
    1``); the runner scales them to kernel seconds.  Recoverable stalls
    and delays must stay under the protocol's 16-tick poll window — a
    server that wakes up *after* its master gave up serves a phantom
    transaction the retry logic cannot absorb (it absorbs losses, not
    desyncs), which is itself a finding the campaign documents via the
    ``expect="detect"`` scenarios.
    """
    return [
        FaultScenario(
            name="drop-done", kind="drop", target="b*_done", count=1,
            expect="recover",
        ),
        FaultScenario(
            name="delay-done", kind="delay", target="b*_done", count=1,
            delay=5.0, expect="recover",
        ),
        FaultScenario(
            name="drop-grant", kind="drop", target="b*_ack_*", count=1,
            expect="recover",
        ),
        FaultScenario(
            name="stall-memory", kind="stall", target="?mem*", count=1,
            delay=8.0, expect="recover",
        ),
        FaultScenario(
            name="corrupt-data", kind="flip_bit", target="b*_data", count=1,
            bit=0, expect="detect",
        ),
        FaultScenario(
            name="kill-memory", kind="kill", target="?mem*", count=1,
            expect="detect",
        ),
    ]


DEFAULT_SCENARIOS: Tuple[FaultScenario, ...] = tuple(default_scenarios())


@dataclass
class RobustnessCell:
    """One (design, model, scenario) run of the campaign."""

    design: str
    model: str
    scenario: FaultScenario
    outcome: str          # recovered | mismatch | deadlock | limit | sim-error | no-fault
    fired: int            # fault events actually injected
    detail: str = ""

    @property
    def vacuous(self) -> bool:
        """The scenario never matched anything in this cell (e.g. a bus
        fault on a model whose plan has no such bus)."""
        return self.fired == 0

    @property
    def as_expected(self) -> bool:
        if self.vacuous:
            return True
        if self.scenario.expect == "recover":
            return self.outcome == "recovered"
        return self.outcome in _DETECTED

    def label(self) -> str:
        if self.vacuous:
            return "-"
        return self.outcome if self.as_expected else f"{self.outcome} !"


class RobustnessResult:
    """The full campaign, indexed ``cells[design][scenario][model]``."""

    def __init__(self, seed: int, protocol: str):
        self.seed = seed
        self.protocol = protocol
        self.cells: Dict[str, Dict[str, Dict[str, RobustnessCell]]] = {}

    def add(self, cell: RobustnessCell) -> None:
        self.cells.setdefault(cell.design, {}).setdefault(
            cell.scenario.name, {}
        )[cell.model] = cell

    def all_cells(self) -> List[RobustnessCell]:
        return [
            cell
            for by_scenario in self.cells.values()
            for by_model in by_scenario.values()
            for cell in by_model.values()
        ]

    def unexpected(self) -> List[RobustnessCell]:
        return [cell for cell in self.all_cells() if not cell.as_expected]

    def recovered_scenarios(self, design: str) -> List[str]:
        """Scenario names with at least one recovering cell in ``design``."""
        return sorted(
            name
            for name, by_model in self.cells.get(design, {}).items()
            if any(c.outcome == "recovered" and not c.vacuous
                   for c in by_model.values())
        )

    def render(self) -> str:
        model_names = sorted(
            {cell.model for cell in self.all_cells()},
        )
        headers = ["Design", "Scenario", "Expect"] + model_names
        rows = []
        for design in sorted(self.cells):
            for scenario_name in sorted(self.cells[design]):
                by_model = self.cells[design][scenario_name]
                any_cell = next(iter(by_model.values()))
                rows.append(
                    [design, scenario_name, any_cell.scenario.expect]
                    + [
                        by_model[m].label() if m in by_model else "-"
                        for m in model_names
                    ]
                )
        total = [c for c in self.all_cells() if not c.vacuous]
        ok = [c for c in total if c.as_expected]
        lines = [
            render_table(
                headers,
                rows,
                title=(
                    "Robustness campaign: fault scenario outcomes "
                    f"(protocol={self.protocol}, seed={self.seed})"
                ),
            ),
            "",
            "legend: recovered = fault absorbed, refined stays equivalent;",
            "        mismatch/deadlock/limit/sim-error = fault detected;",
            "        '-' = scenario matched nothing in this cell;",
            "        '!' = outcome contradicts the scenario's expectation",
            "",
            f"non-vacuous cells: {len(total)}, as expected: {len(ok)}, "
            f"unexpected: {len(total) - len(ok)}",
        ]
        return "\n".join(lines)


def _classify(refined, inputs, scenario, seed, limits) -> RobustnessCell:
    # scenario time fields are in protocol ticks; the kernel runs in
    # seconds, one tick = DEFAULT_TIME_UNIT
    injector = FaultInjector([scenario.scaled(DEFAULT_TIME_UNIT)], seed=seed)
    detail = ""
    try:
        report = check_equivalence(
            refined,
            inputs=inputs,
            limits=limits,
            injector=injector,
            require_completion=True,
        )
    except DeadlockError as exc:
        outcome = "deadlock"
        detail = str(exc).splitlines()[0]
    except SimulationLimitExceeded as exc:
        outcome = "limit"
        detail = f"limit={exc.limit}"
    except SimulationError as exc:
        outcome = "sim-error"
        detail = str(exc).splitlines()[0]
    else:
        outcome = "recovered" if report.equivalent else "mismatch"
    return RobustnessCell(
        design="",
        model="",
        scenario=scenario,
        outcome=outcome,
        fired=len(injector.events),
        detail=detail,
    )


def run_robustness(
    spec: Optional[Specification] = None,
    allocation: Optional[Allocation] = None,
    inputs: Optional[Dict[str, int]] = None,
    scenarios: Optional[Sequence[FaultScenario]] = None,
    seed: int = 1996,
    protocol: str = "handshake-timeout",
    limits: Optional[KernelLimits] = None,
    designs: Optional[Sequence[str]] = None,
    models: Optional[Sequence[str]] = None,
    engine=None,
    workload=None,
) -> RobustnessResult:
    """Sweep ``scenarios`` x a workload's designs x all four models.

    ``workload`` names a :mod:`repro.apps.workloads` registry entry
    (default ``medical``) supplying the specification, design catalog
    and default stimulus; its id lands in every job's cache key.

    Each cell refines once (per design x model) and re-simulates per
    scenario with a fresh single-scenario :class:`FaultInjector` seeded
    from ``seed``, so cells are independent and the whole campaign is
    reproducible.  ``designs``/``models`` restrict the sweep (names like
    ``"Design1"`` / ``"Model4"``).

    One ``robustness-cell`` job covers one (design, model) — the refine
    plus every scenario run against it — dispatched through ``engine``
    (an :class:`repro.exec.ExecutionEngine`; default: the serial,
    uncached reference).  The report carries no wall-clock, so serial
    and parallel campaigns render byte-identically.
    """
    from repro.exec import ExecutionEngine, Job, canonical_partition
    from repro.exec import canonical_spec_text
    from repro.exec.campaigns import (
        allocation_to_params,
        limits_to_params,
        scenario_to_params,
    )

    from repro.apps.workloads import resolve_workload

    workload = resolve_workload(workload)
    spec = spec or workload.spec()
    spec.validate()
    allocation = allocation or default_allocation()
    inputs = dict(inputs if inputs is not None else workload.default_inputs)
    scenarios = list(scenarios if scenarios is not None else default_scenarios())
    limits = limits or KernelLimits()
    engine = engine if engine is not None else ExecutionEngine()

    catalog = workload.designs(spec)
    if designs is not None:
        unknown = sorted(set(designs) - set(catalog))
        if unknown:
            raise FaultConfigError(
                f"unknown design(s) {unknown}; choose from {sorted(catalog)}"
            )
    known_models = {model.name for model in ALL_MODELS}
    if models is not None:
        unknown = sorted(set(models) - known_models)
        if unknown:
            raise FaultConfigError(
                f"unknown model(s) {unknown}; choose from {sorted(known_models)}"
            )

    spec_text = canonical_spec_text(spec)
    allocation_data = allocation_to_params(allocation)
    scenario_data = [scenario_to_params(s) for s in scenarios]
    by_name = {scenario.name: scenario for scenario in scenarios}
    grid = [
        (design_name, partition, model)
        for design_name, partition in catalog.items()
        if designs is None or design_name in designs
        for model in ALL_MODELS
        if models is None or model.name in models
    ]
    jobs = [
        Job(
            "robustness-cell",
            {
                "workload": workload.id,
                "spec": spec_text,
                "partition": canonical_partition(partition),
                "design": design_name,
                "model": model.name,
                "allocation": allocation_data,
                "protocol": protocol,
                "seed": seed,
                "limits": limits_to_params(limits),
                "scenarios": scenario_data,
                "inputs": inputs,
            },
            label=f"robustness:{design_name}:{model.name}",
        )
        for design_name, partition, model in grid
    ]

    result = RobustnessResult(seed=seed, protocol=protocol)
    for (design_name, _, model), job_result in zip(grid, engine.run(jobs)):
        payload = job_result.require()
        for item in payload["cells"]:
            result.add(
                RobustnessCell(
                    design=design_name,
                    model=model.name,
                    scenario=by_name[item["scenario"]],
                    outcome=item["outcome"],
                    fired=item["fired"],
                    detail=item["detail"],
                )
            )
    return result
