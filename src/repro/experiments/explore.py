"""``repro explore``: multi-objective design-space exploration with
quality-seeded caching and dominance-based early stopping.

The campaign searches allocation x partitioner x model x protocol and
keeps a Pareto frontier over three minimised objectives:

* **traffic** — bus transactions of the refined design under the
  baseline stimulus (the Figure 9 counted-transfer metric);
* **refined lines** — printed size of the refined specification
  (Figure 10's complexity axis);
* **cost** — the :func:`repro.estimate.estimate_design_point` price of
  the planned topology (buses, memories, interfaces, bandwidth).

The search is layered rather than exhaustive:

1. **seed layer** — greedy descent plus one seeded annealing walk per
   ``anneal_seeds`` entry, for every allocation;
2. **KL layer** — Kernighan-Lin refinement *seeded from the quality
   cache*: only the top-K candidates of the previous layer (per
   allocation) earn a KL pass;
3. **re-anneal layer** — annealing restarted *from Pareto-frontier
   members* (capped per allocation), one walk per ``reanneal_seeds``
   entry.

Every distinct (allocation, partition, model, protocol) design point
becomes one content-addressed ``explore-cell`` job through the
:mod:`repro.exec` engine, so cells parallelise and warm caches make
re-runs free.  Duplicate design points (e.g. KL converging onto the
greedy winner) are recognised in the driver and never dispatched.

After each seeded layer the frontier is checked: a layer that adds no
new non-dominated point stops the campaign (``frontier-converged``).
A ``max_cells`` budget stops it deterministically mid-grid
(``cell-budget``).  Either way the report states why it stopped and
how many cells the equivalent exhaustive grid would have evaluated.

The rendered report carries no wall-clock, so serial, parallel and
warm-cache runs are byte-identical for the same arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.experiments.tables import render_table
from repro.models.impl_models import ALL_MODELS
from repro.obs.events import (
    NULL_JOURNAL,
    bind_request_id,
    current_request_id,
    new_request_id,
)
from repro.obs.metrics import NULL_REGISTRY
from repro.sim.kernel import KernelLimits
from repro.spec.specification import Specification

__all__ = [
    "DesignPoint",
    "ParetoFrontier",
    "QualityEvaluator",
    "QualityCache",
    "StopReport",
    "ExploreResult",
    "explore_allocations",
    "run_explore",
    "validate_explore_report",
]

DEFAULT_PROTOCOLS = ("handshake",)
#: seeds of the layer-1 annealing walks (one candidate per seed)
DEFAULT_ANNEAL_SEEDS = (1996, 2023)
#: seeds of the layer-3 re-annealing walks from frontier members
DEFAULT_REANNEAL_SEEDS = (7,)
#: quality-cache width: candidates per allocation that seed KL
DEFAULT_TOP_K = 2
#: frontier members per allocation that seed re-annealing
DEFAULT_FRONTIER_SEED_CAP = 2
LAYERS_TOTAL = 3


def explore_allocations() -> Dict[str, object]:
    """The named allocation alternatives the campaign searches over.

    ``paper`` is the medical system's PROC+ASIC pair (Figure 9's
    setting); ``dual-asic`` adds a second, smaller ASIC so three-way
    partitions enter the space.
    """
    from repro.arch.allocation import Allocation
    from repro.arch.components import asic, processor

    return {
        "paper": Allocation(
            [
                processor("PROC", cpu="Intel8086", clock_hz=10e6),
                asic("ASIC", gates=10000, pins=75, clock_hz=25e6),
            ],
            name="paper",
        ),
        "dual-asic": Allocation(
            [
                processor("PROC", cpu="Intel8086", clock_hz=10e6),
                asic("ASIC", gates=10000, pins=75, clock_hz=25e6),
                asic("ASIC2", gates=4000, pins=40, clock_hz=20e6),
            ],
            name="dual-asic",
        ),
    }


@dataclass
class DesignPoint:
    """One evaluated (allocation, partition recipe, model, protocol)
    candidate with its objective vector and quality score."""

    allocation: str
    recipe: str
    model: str
    protocol: str
    traffic: int
    refined_lines: int
    cost: float
    quality: float = 0.0
    layer: int = 0

    def objectives(self) -> Tuple[float, float, float]:
        """The minimised vector: (traffic, refined lines, cost)."""
        return (float(self.traffic), float(self.refined_lines), self.cost)

    def as_dict(self) -> Dict[str, object]:
        return {
            "allocation": self.allocation,
            "recipe": self.recipe,
            "model": self.model,
            "protocol": self.protocol,
            "traffic": self.traffic,
            "refined_lines": self.refined_lines,
            "cost": self.cost,
            "quality": self.quality,
            "layer": self.layer,
        }


def _dominates(a: Tuple[float, ...], b: Tuple[float, ...]) -> bool:
    """Pareto dominance for minimisation: ``a`` is no worse everywhere
    and strictly better somewhere."""
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


class ParetoFrontier:
    """The mutually non-dominated design points seen so far.

    ``add`` keeps the frontier invariant: a dominated candidate is
    rejected, an accepted candidate evicts every point it dominates.
    A candidate whose objective vector ties an existing member exactly
    is rejected too (first-seen wins), which keeps the frontier — and
    therefore the report — deterministic in evaluation order.
    """

    def __init__(self):
        self.points: List[DesignPoint] = []

    def add(self, point: DesignPoint) -> bool:
        objectives = point.objectives()
        for existing in self.points:
            held = existing.objectives()
            if held == objectives or _dominates(held, objectives):
                return False
        self.points = [
            p for p in self.points if not _dominates(objectives, p.objectives())
        ]
        self.points.append(point)
        return True

    def __len__(self) -> int:
        return len(self.points)

    def sorted_points(self) -> List[DesignPoint]:
        """Report order: by objective vector, then labels."""
        return sorted(
            self.points,
            key=lambda p: (
                p.objectives(), p.allocation, p.recipe, p.model, p.protocol,
            ),
        )


class QualityEvaluator:
    """Scalar quality of a candidate relative to the first-evaluated
    baseline point.

    The score is the inverse of the mean objective ratio against the
    baseline — 1.0 for the baseline itself, above 1.0 for candidates
    that beat it on balance.  Scoring happens in the driver in grid
    order, so it is identical for serial, parallel and cached runs.
    """

    def __init__(self):
        self.baseline: Optional[Tuple[float, float, float]] = None

    def score(self, point: DesignPoint) -> float:
        objectives = tuple(max(value, 1e-9) for value in point.objectives())
        if self.baseline is None:
            self.baseline = objectives
        ratio = sum(
            value / base for value, base in zip(objectives, self.baseline)
        ) / len(objectives)
        return round(1.0 / max(ratio, 1e-9), 4)


class QualityCache:
    """Top-K candidate partitions per allocation, ranked by quality.

    One entry per recipe (a recipe's best quality across its model x
    protocol evaluations counts); ``winners`` returns the ``top_k``
    best, tie-broken by recipe name so seeding is deterministic.
    These winners seed the next search layer.
    """

    def __init__(self, top_k: int = DEFAULT_TOP_K):
        self.top_k = top_k
        self._entries: Dict[str, Dict[str, Tuple[float, object]]] = {}

    def offer(
        self, allocation: str, recipe: str, quality: float, partition
    ) -> None:
        entries = self._entries.setdefault(allocation, {})
        held = entries.get(recipe)
        if held is None or quality > held[0]:
            entries[recipe] = (quality, partition)

    def winners(self, allocation: str) -> List[Tuple[str, object]]:
        entries = self._entries.get(allocation, {})
        ranked = sorted(
            entries.items(), key=lambda item: (-item[1][0], item[0])
        )
        return [
            (recipe, partition)
            for recipe, (_, partition) in ranked[: self.top_k]
        ]


@dataclass
class StopReport:
    """Why the campaign stopped: structured, not prose-only."""

    reason: str  # "layers-exhausted" | "frontier-converged" | "cell-budget"
    layer: int
    detail: str

    def as_dict(self) -> Dict[str, object]:
        return {"reason": self.reason, "layer": self.layer,
                "detail": self.detail}


@dataclass
class ExploreResult:
    """Everything ``repro explore`` reports."""

    frontier: ParetoFrontier
    evaluated: List[DesignPoint] = field(default_factory=list)
    cells_evaluated: int = 0
    dedup_skipped: int = 0
    exhaustive_cells: int = 0
    layers_run: int = 0
    layers_total: int = LAYERS_TOTAL
    stop: StopReport = field(
        default_factory=lambda: StopReport("layers-exhausted", 0, "")
    )

    def render(self) -> str:
        headers = ["Allocation", "Recipe", "Model", "Protocol",
                   "traffic", "lines", "cost", "quality"]
        rows = [
            [
                point.allocation, point.recipe, point.model, point.protocol,
                str(point.traffic), str(point.refined_lines),
                f"{point.cost:.1f}", f"{point.quality:.4f}",
            ]
            for point in self.frontier.sorted_points()
        ]
        lines = [
            render_table(
                headers, rows,
                title="Explore: Pareto frontier over "
                      "(traffic, refined lines, cost)",
            ),
            "",
            f"cells evaluated: {self.cells_evaluated} "
            f"(exhaustive grid: {self.exhaustive_cells}), "
            f"duplicates skipped: {self.dedup_skipped}",
            f"layers run: {self.layers_run} of {self.layers_total}",
            f"frontier size: {len(self.frontier)}",
            f"stopped: {self.stop.reason} - {self.stop.detail}",
        ]
        return "\n".join(lines)

    def as_json(self) -> str:
        import json

        return json.dumps(
            {
                "frontier": [
                    point.as_dict()
                    for point in self.frontier.sorted_points()
                ],
                "evaluated": [point.as_dict() for point in self.evaluated],
                "cells_evaluated": self.cells_evaluated,
                "dedup_skipped": self.dedup_skipped,
                "exhaustive_cells": self.exhaustive_cells,
                "layers_run": self.layers_run,
                "layers_total": self.layers_total,
                "stop": self.stop.as_dict(),
            },
            indent=2,
            sort_keys=True,
        )


def validate_explore_report(data: Dict[str, object]) -> None:
    """Schema check of a parsed ``repro explore --json`` report — the
    CI smoke job and the tests call this.  Raises :class:`ReproError`
    on the first violation."""
    def fail(message: str):
        raise ReproError(f"explore report: {message}")

    for key in ("frontier", "evaluated", "cells_evaluated", "dedup_skipped",
                "exhaustive_cells", "layers_run", "layers_total", "stop"):
        if key not in data:
            fail(f"missing key {key!r}")
    for key in ("cells_evaluated", "dedup_skipped", "exhaustive_cells",
                "layers_run", "layers_total"):
        if not isinstance(data[key], int) or data[key] < 0:
            fail(f"{key} must be a non-negative integer")
    stop = data["stop"]
    if not isinstance(stop, dict):
        fail("stop must be an object")
    if stop.get("reason") not in (
        "layers-exhausted", "frontier-converged", "cell-budget"
    ):
        fail(f"unknown stop reason {stop.get('reason')!r}")
    if not isinstance(stop.get("detail"), str):
        fail("stop.detail must be a string")
    if not isinstance(data["frontier"], list) or not isinstance(
        data["evaluated"], list
    ):
        fail("frontier and evaluated must be lists")
    point_keys = {"allocation", "recipe", "model", "protocol", "traffic",
                  "refined_lines", "cost", "quality", "layer"}
    for where in ("frontier", "evaluated"):
        for point in data[where]:
            if not isinstance(point, dict) or set(point) != point_keys:
                fail(f"malformed design point in {where!r}: {point!r}")
    if data["cells_evaluated"] > data["exhaustive_cells"]:
        fail("cells_evaluated exceeds the exhaustive grid")
    if data["cells_evaluated"] != len(data["evaluated"]):
        fail("cells_evaluated disagrees with the evaluated list")
    vectors = {
        (p["traffic"], p["refined_lines"], p["cost"])
        for p in data["frontier"]
    }
    for a in vectors:
        for b in vectors:
            if a != b and _dominates(
                tuple(map(float, a)), tuple(map(float, b))
            ):
                fail(f"frontier member {b} is dominated by {a}")


# -- the campaign driver -----------------------------------------------------


def _candidate_key(allocation: str, pairs, model: str, protocol: str):
    return (allocation, tuple(tuple(pair) for pair in pairs), model, protocol)


def run_explore(
    spec: Optional[Specification] = None,
    allocations: Optional[Sequence[str]] = None,
    models: Optional[Sequence[str]] = None,
    protocols: Optional[Sequence[str]] = None,
    inputs: Optional[Dict[str, int]] = None,
    anneal_seeds: Sequence[int] = DEFAULT_ANNEAL_SEEDS,
    reanneal_seeds: Sequence[int] = DEFAULT_REANNEAL_SEEDS,
    top_k: int = DEFAULT_TOP_K,
    frontier_seed_cap: int = DEFAULT_FRONTIER_SEED_CAP,
    max_cells: Optional[int] = None,
    balance_weight: float = 0.35,
    limits: Optional[KernelLimits] = None,
    engine=None,
    batch: bool = False,
    workload=None,
) -> ExploreResult:
    """Run the layered exploration campaign; see the module docstring.

    ``workload`` names a :mod:`repro.apps.workloads` registry entry
    (default ``medical``) supplying the specification and the default
    stimulus; its id lands in every job's cache key.

    ``allocations`` names entries of :func:`explore_allocations`
    (default: all of them); ``models``/``protocols`` default to all
    four models and the plain handshake.  Partitioners run in the
    driver (they are cheap and deterministic); every distinct design
    point becomes one ``explore-cell`` job through ``engine``.

    With ``batch=True`` a layer's points sharing one (allocation,
    recipe) candidate are grouped into a single ``explore-batch`` job
    that profiles the candidate once and prices every model x protocol
    against that shared profile — same payloads, fewer simulations.
    """
    from repro.exec import ExecutionEngine, Job
    from repro.exec import canonical_partition, canonical_spec_text
    from repro.exec.campaigns import allocation_to_params, limits_to_params
    from repro.graph.access_graph import AccessGraph
    from repro.partition.auto import (
        annealed_partition,
        greedy_partition,
        kl_partition,
    )

    from repro.apps.workloads import resolve_workload

    workload = resolve_workload(workload)
    spec = spec or workload.spec()
    spec.validate()
    inputs = dict(inputs if inputs is not None else workload.default_inputs)
    engine = engine if engine is not None else ExecutionEngine()

    catalog = explore_allocations()
    allocation_names = list(allocations) if allocations else sorted(catalog)
    unknown = sorted(set(allocation_names) - set(catalog))
    if unknown:
        raise ReproError(
            f"unknown allocation(s) {unknown}; choose from {sorted(catalog)}"
        )
    known_models = {model.name for model in ALL_MODELS}
    model_names = list(models) if models else sorted(known_models)
    unknown = sorted(set(model_names) - known_models)
    if unknown:
        raise ReproError(
            f"unknown model(s) {unknown}; choose from {sorted(known_models)}"
        )
    protocol_names = list(protocols) if protocols else list(DEFAULT_PROTOCOLS)
    if top_k < 1:
        raise ReproError(f"--top-k must be >= 1, got {top_k}")
    if max_cells is not None and max_cells < 1:
        raise ReproError(f"--max-cells must be >= 1, got {max_cells}")

    graph = AccessGraph.from_specification(spec)
    spec_text = canonical_spec_text(spec)
    limits_data = limits_to_params(limits)
    allocation_data = {
        name: allocation_to_params(catalog[name])
        for name in allocation_names
    }
    components = {
        name: list(catalog[name].components) for name in allocation_names
    }

    journal = getattr(engine, "journal", NULL_JOURNAL)
    registry = getattr(engine, "registry", NULL_REGISTRY)
    cells_total = registry.counter(
        "repro_explore_cells_total",
        "Explore design points by outcome (evaluated vs deduplicated).",
        ("outcome",),
    )
    layers_total_counter = registry.counter(
        "repro_explore_layers_total",
        "Explore search layers dispatched.",
    )
    frontier_gauge = registry.gauge(
        "repro_explore_frontier_size",
        "Pareto-frontier size after the most recent explore campaign.",
    )
    run_id = current_request_id()
    if not run_id and journal.enabled:
        run_id = "explore-" + new_request_id()

    # the exhaustive reference grid this layered search is measured
    # against: every layer-1 candidate gets a KL pass (no top-K
    # narrowing) and every candidate of layers 1+2 gets every
    # re-annealing walk (no frontier capping, no early stop, no dedup)
    layer1_width = 1 + len(anneal_seeds)
    exhaustive_recipes = (
        layer1_width + layer1_width
        + 2 * layer1_width * len(reanneal_seeds)
    )
    exhaustive_cells = (
        exhaustive_recipes * len(allocation_names)
        * len(model_names) * len(protocol_names)
    )

    frontier = ParetoFrontier()
    evaluator = QualityEvaluator()
    quality_cache = QualityCache(top_k)
    result = ExploreResult(frontier, exhaustive_cells=exhaustive_cells)
    seen_keys = set()
    partitions: Dict[Tuple[str, str], object] = {}  # (alloc, recipe) -> Partition
    budget_hit = False

    def evaluate_layer(layer: int, candidates) -> int:
        """Dispatch one layer; returns how many frontier members the
        layer added.  ``candidates`` is [(allocation, recipe,
        partition)] in deterministic order."""
        nonlocal budget_hit
        points = []  # (alloc, recipe, model, protocol, pairs)
        for alloc, recipe, partition in candidates:
            partitions[(alloc, recipe)] = partition
            pairs = canonical_partition(partition)
            for model in model_names:
                for protocol in protocol_names:
                    key = _candidate_key(alloc, pairs, model, protocol)
                    if key in seen_keys:
                        result.dedup_skipped += 1
                        cells_total.labels("deduplicated").inc()
                        continue
                    seen_keys.add(key)
                    points.append((alloc, recipe, model, protocol, pairs))
        if max_cells is not None:
            room = max_cells - result.cells_evaluated
            if len(points) > room:
                points = points[:room]
                budget_hit = True

        if batch:
            groups: List[Tuple[Tuple[str, str], List]] = []
            for point in points:
                group_key = (point[0], point[1])
                if not groups or groups[-1][0] != group_key:
                    groups.append((group_key, []))
                groups[-1][1].append(point)
            jobs = [
                Job(
                    "explore-batch",
                    {
                        "workload": workload.id,
                        "spec": spec_text,
                        "partition": group[0][4],
                        "design": recipe,
                        "allocation": allocation_data[alloc],
                        "points": [
                            {"model": model, "protocol": protocol}
                            for _, _, model, protocol, _ in group
                        ],
                        "inputs": inputs,
                        "limits": limits_data,
                    },
                    label=f"explore:{alloc}:{recipe}:x{len(group)}",
                )
                for (alloc, recipe), group in groups
            ]
        else:
            jobs = [
                Job(
                    "explore-cell",
                    {
                        "workload": workload.id,
                        "spec": spec_text,
                        "partition": pairs,
                        "design": recipe,
                        "allocation": allocation_data[alloc],
                        "model": model,
                        "protocol": protocol,
                        "inputs": inputs,
                        "limits": limits_data,
                    },
                    label=f"explore:{alloc}:{recipe}:{model}:{protocol}",
                )
                for alloc, recipe, model, protocol, pairs in points
            ]

        with bind_request_id(run_id):
            journal.emit(
                "explore-layer-start", layer=layer, jobs=len(jobs),
                points=len(points),
            )
            job_results = engine.run(jobs)
        layers_total_counter.inc()

        payloads = []
        if batch:
            grouped = iter(job_results)
            for _, group in groups:
                payload = next(grouped).require()
                payloads.extend(payload["points"])
        else:
            payloads = [job_result.require() for job_result in job_results]

        added = 0
        for (alloc, recipe, model, protocol, _), payload in zip(
            points, payloads
        ):
            point = DesignPoint(
                allocation=alloc,
                recipe=recipe,
                model=model,
                protocol=protocol,
                traffic=payload["traffic"],
                refined_lines=payload["refined_lines"],
                cost=payload["cost"],
                layer=layer,
            )
            point.quality = evaluator.score(point)
            quality_cache.offer(
                alloc, recipe, point.quality, partitions[(alloc, recipe)]
            )
            result.evaluated.append(point)
            result.cells_evaluated += 1
            cells_total.labels("evaluated").inc()
            if frontier.add(point):
                added += 1
        journal.emit(
            "explore-layer-complete", request_id=run_id, layer=layer,
            evaluated=len(points), frontier=len(frontier), added=added,
        )
        result.layers_run = layer
        return added

    with bind_request_id(run_id):
        journal.emit(
            "campaign-start", campaign="explore",
            allocations=len(allocation_names), models=len(model_names),
            protocols=len(protocol_names),
            exhaustive_cells=exhaustive_cells,
        )

    def finish(stop: StopReport) -> ExploreResult:
        result.stop = stop
        frontier_gauge.set(len(frontier))
        journal.emit(
            "campaign-complete", request_id=run_id, campaign="explore",
            cells=result.cells_evaluated, frontier=len(frontier),
            layers=result.layers_run, stop=stop.reason,
        )
        return result

    # -- layer 1: greedy + seeded annealing per allocation ------------------
    layer1 = []
    for alloc in allocation_names:
        comps = components[alloc]
        layer1.append((
            alloc, "greedy",
            greedy_partition(
                spec, comps, graph=graph, balance_weight=balance_weight
            ),
        ))
        for seed in anneal_seeds:
            layer1.append((
                alloc, f"annealed@{seed}",
                annealed_partition(
                    spec, comps, graph=graph,
                    balance_weight=balance_weight, seed=seed,
                ),
            ))
    evaluate_layer(1, layer1)
    if budget_hit:
        return finish(StopReport(
            "cell-budget", 1,
            f"max-cells budget of {max_cells} reached during layer 1",
        ))

    # -- layer 2: KL seeded from the quality-cache winners -------------------
    layer2 = []
    for alloc in allocation_names:
        comps = components[alloc]
        for recipe, partition in quality_cache.winners(alloc):
            layer2.append((
                alloc, f"kl<{recipe}",
                kl_partition(
                    spec, comps, graph=graph,
                    balance_weight=balance_weight, seed_partition=partition,
                ),
            ))
    added = evaluate_layer(2, layer2)
    if budget_hit:
        return finish(StopReport(
            "cell-budget", 2,
            f"max-cells budget of {max_cells} reached during layer 2",
        ))
    if added == 0:
        return finish(StopReport(
            "frontier-converged", 2,
            "KL layer added no non-dominated point; skipping re-annealing",
        ))

    # -- layer 3: re-anneal the frontier members -----------------------------
    layer3 = []
    for alloc in allocation_names:
        comps = components[alloc]
        members = [
            point for point in frontier.sorted_points()
            if point.allocation == alloc
        ][:frontier_seed_cap]
        for member in members:
            seed_partition = partitions[(alloc, member.recipe)]
            for seed in reanneal_seeds:
                layer3.append((
                    alloc, f"reanneal@{seed}<{member.recipe}",
                    annealed_partition(
                        spec, comps, graph=graph,
                        balance_weight=balance_weight, seed=seed,
                        seed_partition=seed_partition,
                    ),
                ))
    added = evaluate_layer(3, layer3)
    if budget_hit:
        return finish(StopReport(
            "cell-budget", 3,
            f"max-cells budget of {max_cells} reached during layer 3",
        ))
    if added == 0:
        return finish(StopReport(
            "frontier-converged", 3,
            "re-annealing layer added no non-dominated point",
        ))
    return finish(StopReport(
        "layers-exhausted", LAYERS_TOTAL,
        "all scheduled search layers completed",
    ))
