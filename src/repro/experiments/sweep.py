"""``repro sweep``: a cross-product campaign over designs x models x
protocols x seeds.

Each cell refines one (design, model, protocol) combination and
co-simulates it against the original under a seeded input stimulus
(seed 0 is the baseline vector; other seeds re-roll every data input
deterministically — see :func:`repro.exec.campaigns.sweep_inputs`).
The grid runs through the :mod:`repro.exec` engine, so ``--executor
process`` parallelises it and a result cache makes warm re-runs free.

The rendered table carries no wall-clock, so any executor produces a
byte-identical report for the same grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.experiments.tables import render_table
from repro.models.impl_models import ALL_MODELS
from repro.obs.events import (
    NULL_JOURNAL,
    bind_request_id,
    current_request_id,
    new_request_id,
)
from repro.sim.kernel import KernelLimits
from repro.spec.specification import Specification

__all__ = ["SweepCell", "SweepResult", "run_sweep"]

DEFAULT_PROTOCOLS = ("handshake",)
DEFAULT_SEEDS = (0,)


@dataclass
class SweepCell:
    """One (design, model, protocol, seed) point of the sweep."""

    design: str
    model: str
    protocol: str
    seed: int
    refined_lines: int
    steps: int
    equivalent: bool
    #: which simulation kernel produced this cell's verdict
    #: ("compiled" for sweep-cell jobs, "batched" for batch-cell lanes)
    kernel: str = "compiled"


@dataclass
class SweepResult:
    """All cells, in grid order (design, model, protocol, seed)."""

    cells: List[SweepCell] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(cell.equivalent for cell in self.cells)

    def failures(self) -> List[SweepCell]:
        return [cell for cell in self.cells if not cell.equivalent]

    def render(self) -> str:
        headers = ["Design", "Model", "Protocol", "Seed",
                   "refined lines", "steps", "equivalent"]
        rows = [
            [
                cell.design, cell.model, cell.protocol, str(cell.seed),
                str(cell.refined_lines), str(cell.steps),
                "OK" if cell.equivalent else "MISMATCH",
            ]
            for cell in self.cells
        ]
        failed = len(self.failures())
        lines = [
            render_table(
                headers, rows,
                title="Sweep: designs x models x protocols x seeds",
            ),
            "",
            f"cells: {len(self.cells)}, equivalent: "
            f"{len(self.cells) - failed}, mismatched: {failed}",
        ]
        return "\n".join(lines)

    def kernel_counts(self) -> Dict[str, int]:
        """How many cells each kernel variant produced — the audit
        trail for mixed batched/serial (or cache-hit) campaigns."""
        counts: Dict[str, int] = {}
        for cell in self.cells:
            counts[cell.kernel] = counts.get(cell.kernel, 0) + 1
        return counts

    def as_json(self) -> str:
        """The machine-readable report (``repro sweep --json``): every
        cell with its kernel variant, plus per-variant counts.  The
        cell list is byte-identical between serial and batched runs
        except for the ``kernel`` tags themselves."""
        import json

        return json.dumps(
            {
                "cells": [
                    {
                        "design": cell.design,
                        "model": cell.model,
                        "protocol": cell.protocol,
                        "seed": cell.seed,
                        "refined_lines": cell.refined_lines,
                        "steps": cell.steps,
                        "equivalent": cell.equivalent,
                        "kernel": cell.kernel,
                    }
                    for cell in self.cells
                ],
                "kernels": self.kernel_counts(),
                "equivalent": len(self.cells) - len(self.failures()),
                "mismatched": len(self.failures()),
            },
            indent=2,
            sort_keys=True,
        )


def run_sweep(
    spec: Optional[Specification] = None,
    designs: Optional[Sequence[str]] = None,
    models: Optional[Sequence[str]] = None,
    protocols: Optional[Sequence[str]] = None,
    seeds: Optional[Sequence[int]] = None,
    inputs: Optional[Dict[str, int]] = None,
    limits: Optional[KernelLimits] = None,
    engine=None,
    batch: bool = False,
    lanes: int = 8,
    workload=None,
) -> SweepResult:
    """Cross-product sweep; every cell is one ``sweep-cell`` job.

    ``workload`` names a :mod:`repro.apps.workloads` registry entry
    (default ``medical``) supplying the specification, design catalog
    and baseline stimulus; its id lands in every job's cache key.
    ``designs``/``models``/``protocols``/``seeds`` default to all of
    the workload's designs, all four models, the plain handshake
    protocol and the baseline stimulus (seed 0).  Jobs are dispatched
    through ``engine`` (an :class:`repro.exec.ExecutionEngine`;
    default: the serial, uncached reference).

    With ``batch=True`` the grid's seeds are grouped per (design,
    model, protocol) cell-family into ``batch-cell`` jobs of up to
    ``lanes`` seeds each — one refinement and one batched
    co-simulation per job instead of one per seed.  The resulting
    cells (and the rendered table) are byte-identical to the serial
    sweep; only the :attr:`SweepCell.kernel` tags differ.
    """
    from repro.exec import ExecutionEngine, Job, canonical_partition
    from repro.exec import canonical_spec_text
    from repro.exec.campaigns import limits_to_params

    from repro.apps.workloads import resolve_workload

    workload = resolve_workload(workload)
    spec = spec or workload.spec()
    spec.validate()
    inputs = dict(inputs if inputs is not None else workload.default_inputs)
    engine = engine if engine is not None else ExecutionEngine()

    catalog = workload.designs(spec)
    design_names = list(designs) if designs else sorted(catalog)
    unknown = sorted(set(design_names) - set(catalog))
    if unknown:
        raise ReproError(
            f"unknown design(s) {unknown}; choose from {sorted(catalog)}"
        )
    known_models = {model.name for model in ALL_MODELS}
    model_names = list(models) if models else sorted(known_models)
    unknown = sorted(set(model_names) - known_models)
    if unknown:
        raise ReproError(
            f"unknown model(s) {unknown}; choose from {sorted(known_models)}"
        )
    protocol_names = list(protocols) if protocols else list(DEFAULT_PROTOCOLS)
    seed_list = list(seeds) if seeds is not None else list(DEFAULT_SEEDS)

    spec_text = canonical_spec_text(spec)
    limits_data = limits_to_params(limits)

    # Campaign correlation: reuse the bound request ID when running
    # inside a daemon request, else mint a "sweep-" run ID so the
    # grid's job events and campaign events share one spine.
    journal = getattr(engine, "journal", NULL_JOURNAL)
    run_id = current_request_id()
    if not run_id and journal.enabled:
        run_id = "sweep-" + new_request_id()

    def _dispatch(jobs):
        with bind_request_id(run_id):
            journal.emit(
                "campaign-start", campaign="sweep", jobs=len(jobs),
                designs=len(design_names), models=len(model_names),
                protocols=len(protocol_names), seeds=len(seed_list),
            )
            return engine.run(jobs)

    def _finish(result: SweepResult) -> SweepResult:
        journal.emit(
            "campaign-complete", request_id=run_id, campaign="sweep",
            cells=len(result.cells), mismatched=len(result.failures()),
        )
        return result

    if batch:
        if lanes < 1:
            raise ReproError(f"--lanes must be >= 1, got {lanes}")
        families = [
            (design, model, protocol)
            for design in design_names
            for model in model_names
            for protocol in protocol_names
        ]
        chunks = [
            seed_list[i : i + lanes]
            for i in range(0, len(seed_list), lanes)
        ]
        jobs = [
            Job(
                "batch-cell",
                {
                    "workload": workload.id,
                    "spec": spec_text,
                    "partition": canonical_partition(catalog[design]),
                    "design": design,
                    "model": model,
                    "protocol": protocol,
                    "seeds": chunk,
                    "inputs": inputs,
                    "limits": limits_data,
                },
                label=(
                    f"sweep:{design}:{model}:{protocol}:"
                    f"s{chunk[0]}-s{chunk[-1]}x{len(chunk)}"
                ),
            )
            for design, model, protocol in families
            for chunk in chunks
        ]
        result = SweepResult()
        job_results = iter(_dispatch(jobs))
        for design, model, protocol in families:
            for chunk in chunks:
                payload = next(job_results).require()
                for seed, cell in zip(chunk, payload["cells"]):
                    if "error" in cell:
                        raise ReproError(
                            f"sweep:{design}:{model}:{protocol}:s{seed} "
                            f"failed: {cell['error']}"
                        )
                    result.cells.append(
                        SweepCell(
                            design=design,
                            model=model,
                            protocol=protocol,
                            seed=seed,
                            refined_lines=cell["refined_lines"],
                            steps=cell["steps"],
                            equivalent=cell["equivalent"],
                            kernel=cell["kernel"],
                        )
                    )
        return _finish(result)

    grid = [
        (design, model, protocol, seed)
        for design in design_names
        for model in model_names
        for protocol in protocol_names
        for seed in seed_list
    ]
    jobs = [
        Job(
            "sweep-cell",
            {
                "workload": workload.id,
                "spec": spec_text,
                "partition": canonical_partition(catalog[design]),
                "design": design,
                "model": model,
                "protocol": protocol,
                "seed": seed,
                "inputs": inputs,
                "limits": limits_data,
            },
            label=f"sweep:{design}:{model}:{protocol}:s{seed}",
        )
        for design, model, protocol, seed in grid
    ]

    result = SweepResult()
    for (design, model, protocol, seed), job_result in zip(
        grid, _dispatch(jobs)
    ):
        payload = job_result.require()
        result.cells.append(
            SweepCell(
                design=design,
                model=model,
                protocol=protocol,
                seed=seed,
                refined_lines=payload["refined_lines"],
                steps=payload["steps"],
                equivalent=payload["equivalent"],
                kernel=payload.get("kernel", "compiled"),
            )
        )
    return _finish(result)
