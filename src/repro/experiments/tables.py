"""Plain-text table rendering for the experiment harnesses."""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["render_table"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table (monospace, +-| borders)."""
    cells = [[str(h) for h in headers]] + [
        [str(value) for value in row] for row in rows
    ]
    widths = [
        max(len(row[column]) for row in cells)
        for column in range(len(headers))
    ]

    def line(row: Sequence[str]) -> str:
        return (
            "| "
            + " | ".join(value.ljust(width) for value, width in zip(row, widths))
            + " |"
        )

    separator = "+-" + "-+-".join("-" * width for width in widths) + "-+"
    out: List[str] = []
    if title:
        out.append(title)
    out.append(separator)
    out.append(line(cells[0]))
    out.append(separator)
    for row in cells[1:]:
        out.append(line(row))
    out.append(separator)
    return "\n".join(out)
