"""The instrumented refine → simulate → verify pipeline (``repro profile``).

Runtime-validation work (Jain & Manolios, PAPERS.md) treats the
simulator as a measurement instrument: kernel counters are evidence
about a refined design, not just progress indicators.  This module runs
the full pipeline for one (design, model) cell with
:class:`repro.sim.metrics.SimMetrics` attached to each run and a
:class:`repro.sim.metrics.PhaseTimer` around each phase, and renders the
result as a human table or JSON — the backing for the ``repro profile``
CLI subcommand.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.apps.medical import MEDICAL_INPUTS
from repro.experiments.tables import render_table
from repro.models import resolve_model
from repro.obs.metrics import MetricsRegistry
from repro.refine.refiner import Refiner
from repro.sim.equivalence import check_equivalence
from repro.sim.interpreter import Simulator
from repro.sim.metrics import PhaseTimer, SimMetrics
from repro.spec.specification import Specification

__all__ = ["ProfileReport", "run_profile"]

#: Phase names in pipeline order.
PHASES = ("refine", "simulate-original", "simulate-refined", "verify")


class ProfileReport:
    """Everything one instrumented pipeline run measured.

    ``original_metrics`` / ``refined_metrics`` are the kernel counters
    of the two simulation phases; ``phases`` carries wall-clock per
    pipeline phase; ``equivalent`` is the verify phase's verdict.
    """

    def __init__(
        self,
        spec: Specification,
        design: str,
        model: str,
        protocol: str,
        inputs: Dict[str, object],
    ):
        self.spec = spec
        self.design = design
        self.model = model
        self.protocol = protocol
        self.inputs = dict(inputs)
        self.phases = PhaseTimer()
        self.original_metrics = SimMetrics()
        self.refined_metrics = SimMetrics()
        self.equivalent: Optional[bool] = None
        #: source lines of the original / refined specification
        self.original_lines: int = 0
        self.refined_lines: int = 0
        #: simulated seconds of the refined run
        self.simulated_time: float = 0.0
        #: the refine phase decomposed per refinement procedure
        self.procedure_seconds: Dict[str, float] = {}
        #: registry snapshot — the same counters as above, but in the
        #: shape ``GET /metrics`` / ``/v1/stats`` use (see
        #: :meth:`repro.obs.metrics.MetricsRegistry.snapshot`)
        self.telemetry: Dict[str, object] = {}

    # -- reporting ------------------------------------------------------------

    def render(self) -> str:
        """Counters and phase timings as aligned text tables."""
        rows: List[List[str]] = [
            [label, str(getattr(self.original_metrics, name)),
             str(getattr(self.refined_metrics, name))]
            for name, label in SimMetrics.FIELDS
        ]
        counters = render_table(
            ["counter", "original", "refined"],
            rows,
            title=(
                f"repro profile: {self.spec.name} {self.design} "
                f"{self.model} ({self.protocol})"
            ),
        )
        timing = render_table(
            ["phase", "seconds"],
            [
                [name, f"{seconds:.4f}"]
                for name, seconds in self.phases.as_dict().items()
            ]
            + [["total", f"{self.phases.total:.4f}"]],
        )
        if self.procedure_seconds:
            timing += "\n" + render_table(
                ["refine procedure", "ms"],
                [
                    [name, f"{seconds * 1e3:.2f}"]
                    for name, seconds in self.procedure_seconds.items()
                ],
            )
        verdict = (
            "verify: not run"
            if self.equivalent is None
            else f"verify: {'EQUIVALENT' if self.equivalent else 'MISMATCH'}"
        )
        growth = (
            f"lines: {self.original_lines} -> {self.refined_lines}  "
            f"simulated time: {self.simulated_time:g}s"
        )
        return "\n".join([counters, "", timing, "", verdict, growth])

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (what ``repro profile -o`` writes)."""
        return {
            "spec": self.spec.name,
            "design": self.design,
            "model": self.model,
            "protocol": self.protocol,
            "inputs": self.inputs,
            "equivalent": self.equivalent,
            "original_lines": self.original_lines,
            "refined_lines": self.refined_lines,
            "simulated_time": self.simulated_time,
            "phases_seconds": self.phases.as_dict(),
            "refine_procedure_seconds": dict(self.procedure_seconds),
            "original_metrics": self.original_metrics.as_dict(),
            "refined_metrics": self.refined_metrics.as_dict(),
            "telemetry": self.telemetry,
        }

    def as_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)


def run_profile(
    spec: Specification,
    partition,
    model: str = "Model1",
    protocol: str = "handshake",
    design: str = "",
    inputs: Optional[Dict[str, object]] = None,
    limits=None,
    max_steps: Optional[int] = None,
    verify: bool = True,
    registry: Optional[MetricsRegistry] = None,
) -> ProfileReport:
    """Run refine → simulate → verify once, fully instrumented.

    ``spec`` must already be validated; ``partition`` assigns behaviors
    to components (``design`` is just the label reported).  ``inputs``
    defaults to the medical stimulus when the spec defines those ports,
    else to no inputs.  ``verify=False`` skips the co-simulation phase.

    ``registry`` is an optional :class:`repro.obs.metrics.MetricsRegistry`
    the run publishes into (kernel counters per run, phase seconds).  A
    private registry is used when none is given, so
    :attr:`ProfileReport.telemetry` is always populated.
    """
    if inputs is None:
        input_names = {v.name for v in spec.variables}
        inputs = {
            name: value
            for name, value in MEDICAL_INPUTS.items()
            if name in input_names
        }
    report = ProfileReport(spec, design, model, protocol, inputs)
    report.original_lines = spec.line_count()
    phases = report.phases

    with phases.phase("refine"):
        # sharing the phase timer's tracer nests the per-procedure
        # refinement spans under the "refine" phase span
        refined = Refiner(
            spec, partition, resolve_model(model), protocol=protocol,
            tracer=phases.tracer,
        ).run()
    report.refined_lines = refined.spec.line_count()
    report.procedure_seconds = dict(refined.procedure_seconds)

    with phases.phase("simulate-original"):
        Simulator(spec).run(
            inputs=dict(inputs),
            limits=limits,
            max_steps=max_steps,
            metrics=report.original_metrics,
        )
    with phases.phase("simulate-refined"):
        run = Simulator(refined.spec).run(
            inputs=dict(inputs),
            limits=limits,
            max_steps=max_steps,
            metrics=report.refined_metrics,
        )
    report.simulated_time = run.time

    if verify:
        with phases.phase("verify"):
            outcome = check_equivalence(
                refined, inputs=dict(inputs), limits=limits, max_steps=max_steps
            )
        report.equivalent = outcome.equivalent

    registry = registry if registry is not None else MetricsRegistry()
    report.original_metrics.publish(registry, run="original")
    report.refined_metrics.publish(registry, run="refined")
    phase_gauge = registry.gauge(
        "repro_profile_phase_seconds",
        "Wall-clock seconds per pipeline phase of the last profile run.",
        ("phase",),
    )
    for name, seconds in phases.as_dict().items():
        phase_gauge.labels(name).set(seconds)
    report.telemetry = registry.snapshot()
    return report
