"""Differential fuzzing campaign: generated cases x oracle stack.

The campaign interleaves three deterministic *slices* so one run
exercises every oracle-compatible feature mix:

* ``default`` — the full refinable grammar; every oracle runs
  (round-trip, walker parity, refinement equivalence per model);
* ``signals`` — signal declarations, ``<=`` assignments and waits;
  round-trip + parity only (signal collapsing is schedule-dependent,
  so refinement equivalence is not a sound oracle there);
* ``div-zero`` — ``/`` and ``mod`` right operands are sometimes the
  literal zero; round-trip + parity only (exercises error-message
  parity between the compiled and walker evaluators).

Each case's generator seed is derived from the campaign seed and the
case index, so ``run_fuzz(seed=0, count=200)`` is byte-reproducible:
the rendered report contains no wall-clock and no machine state.

The regression corpus under ``tests/corpus/`` is replayed by
:func:`replay_corpus` (also part of the CI gate): every persisted
find must stay fixed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.experiments.tables import render_table
from repro.fuzz.generator import GeneratorConfig
from repro.fuzz.oracle import (
    DEFAULT_MAX_STEPS,
    OracleFailure,
    check_refinement,
    check_roundtrip,
    check_walker_parity,
)
from repro.fuzz.shrink import CorpusEntry, iter_corpus
from repro.models import ALL_MODELS, ImplementationModel, resolve_model
from repro.obs.events import (
    NULL_JOURNAL,
    bind_request_id,
    current_request_id,
    new_request_id,
)

__all__ = [
    "DEFAULT_CORPUS_DIR",
    "FuzzReport",
    "SliceStats",
    "replay_corpus",
    "run_fuzz",
]

DEFAULT_CORPUS_DIR = "tests/corpus"

#: Case-index cycle of feature slices.  Index 0, 1, 2, ... maps onto
#: this ring, so any prefix of a longer campaign runs the same cases.
_SLICE_RING = (
    "default", "default", "default", "default", "signals",
    "default", "default", "default", "default", "div-zero",
)

#: Multiplier that spreads the campaign seed across case indexes
#: (a large odd constant, so distinct campaign seeds do not overlap).
_SEED_STRIDE = 1_000_003


def _slice_config(slice_name: str, budget: Optional[int]) -> GeneratorConfig:
    config = GeneratorConfig()
    if slice_name == "signals":
        config = replace(config, signals=True, waits=True)
    elif slice_name == "div-zero":
        config = replace(config, div_zero_probability=0.3)
    if budget is not None:
        config = replace(config, budget=budget)
    return config


@dataclass
class SliceStats:
    """Aggregate verdicts for one feature slice of the campaign."""

    name: str
    cases: int = 0
    checks: int = 0
    failures: int = 0


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign (or corpus replay)."""

    seed: int
    count: int
    models: List[str]
    slices: List[SliceStats] = field(default_factory=list)
    failures: List[OracleFailure] = field(default_factory=list)
    #: generator seed of every case that produced at least one failure
    failing_seeds: List[int] = field(default_factory=list)
    corpus_entries: int = 0
    corpus_failures: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures and self.corpus_failures == 0

    @property
    def checks(self) -> int:
        return sum(s.checks for s in self.slices)

    def render(self) -> str:
        rows = [
            [stats.name, stats.cases, stats.checks, stats.failures]
            for stats in self.slices
        ]
        rows.append(
            ["total", sum(s.cases for s in self.slices), self.checks,
             len(self.failures)]
        )
        lines = [
            f"fuzz campaign: seed={self.seed} count={self.count} "
            f"models={','.join(self.models)}",
            "",
            render_table(["slice", "cases", "checks", "failures"], rows),
        ]
        if self.corpus_entries:
            lines.append("")
            lines.append(
                f"corpus replay: {self.corpus_entries} entries, "
                f"{self.corpus_failures} failures"
            )
        if self.failures:
            lines.append("")
            lines.append(f"FAILURES ({len(self.failures)}):")
            for failure in self.failures:
                lines.append(f"  {failure.describe()}")
            lines.append("")
            lines.append(
                "failing generator seeds: "
                + ", ".join(str(s) for s in self.failing_seeds)
            )
        else:
            lines.append("")
            lines.append("all oracles passed")
        return "\n".join(lines)

    def as_json(self) -> str:
        payload = {
            "seed": self.seed,
            "count": self.count,
            "models": self.models,
            "slices": [
                {"name": s.name, "cases": s.cases, "checks": s.checks,
                 "failures": s.failures}
                for s in self.slices
            ],
            "checks": self.checks,
            "failures": [
                {"oracle": f.oracle, "detail": f.detail, "model": f.model,
                 "inputs": f.inputs}
                for f in self.failures
            ],
            "failing_seeds": self.failing_seeds,
            "corpus_entries": self.corpus_entries,
            "corpus_failures": self.corpus_failures,
            "ok": self.ok,
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def _resolve_models(
    models: Optional[Sequence[object]],
) -> List[ImplementationModel]:
    if not models:
        return list(ALL_MODELS)
    return [resolve_model(m) for m in models]


def run_fuzz(
    seed: int = 0,
    count: int = 50,
    models: Optional[Sequence[object]] = None,
    budget: Optional[int] = None,
    vectors: int = 3,
    max_steps: int = DEFAULT_MAX_STEPS,
    corpus: Optional[str] = DEFAULT_CORPUS_DIR,
    tracer=None,
    engine=None,
    batch: bool = False,
    lanes: int = 8,
) -> FuzzReport:
    """Run ``count`` generated cases through every applicable oracle.

    ``models`` accepts model instances or names (``"Model1"``...);
    ``budget`` overrides the generator's statement budget; ``corpus``
    names a regression-corpus directory to replay first (``None``
    skips it).  Same arguments, same report — byte for byte.

    ``batch=True`` adds the batch-parity oracle to every generated
    case (each case's vectors advance as lanes of one batched run and
    must match their single-lane runs bit for bit); ``lanes`` caps the
    lanes per batch.  The ``batch_lanes`` parameter is only added to
    job params when batching is on, so existing cached ``fuzz-case``
    results keep their keys.

    Each corpus entry and each generated case is one job (``fuzz-corpus``
    / ``fuzz-case``) dispatched through ``engine`` (an
    :class:`repro.exec.ExecutionEngine`; default: serial, uncached).
    The report is assembled in grid order — corpus entries first, then
    case indexes ascending — regardless of executor completion order,
    so serial and parallel campaigns render byte-identically.
    ``tracer`` (when no explicit ``engine`` is passed) attaches a
    :class:`repro.obs.trace.SpanTracer` that receives one span per job.
    """
    from repro.exec import ExecutionEngine, Job

    resolved = _resolve_models(models)
    if engine is None:
        engine = ExecutionEngine(tracer=tracer)
    model_names = [m.name for m in resolved]
    report = FuzzReport(seed=seed, count=count, models=model_names)
    by_slice: Dict[str, SliceStats] = {}

    jobs: List[Job] = []
    entries = iter_corpus(corpus) if corpus is not None else []
    report.corpus_entries = len(entries)
    for entry in entries:
        jobs.append(
            Job(
                "fuzz-corpus",
                {
                    "name": entry.name,
                    "bug": entry.bug,
                    "spec_text": entry.spec_text,
                    "partition": entry.partition,
                    "input_vectors": entry.input_vectors,
                    "models": model_names,
                    "max_steps": max_steps,
                },
                label=f"corpus:{entry.name}",
            )
        )
    case_plan = []
    for index in range(count):
        slice_name = _SLICE_RING[index % len(_SLICE_RING)]
        case_seed = seed * _SEED_STRIDE + index
        case_plan.append((slice_name, case_seed))
        params = {
            "slice": slice_name,
            "budget": budget,
            "case_seed": case_seed,
            "vectors": vectors,
            "models": model_names,
            "max_steps": max_steps,
        }
        if batch:
            params["batch_lanes"] = lanes
        jobs.append(Job("fuzz-case", params, label=f"case-{case_seed}"))

    # Campaign correlation (same pattern as run_sweep): inherit the
    # bound request ID or mint a "fuzz-" run ID for the whole grid.
    journal = getattr(engine, "journal", NULL_JOURNAL)
    run_id = current_request_id()
    if not run_id and journal.enabled:
        run_id = "fuzz-" + new_request_id()
    with bind_request_id(run_id):
        journal.emit(
            "campaign-start", campaign="fuzz", jobs=len(jobs),
            corpus_entries=len(entries), cases=count,
        )
        results = engine.run(jobs)
    corpus_results = results[: len(entries)]
    case_results = results[len(entries):]

    for job_result in corpus_results:
        found = _failures_from_params(job_result.require()["failures"])
        report.corpus_failures += len(found)
        report.failures += found

    for (slice_name, case_seed), job_result in zip(case_plan, case_results):
        stats = by_slice.get(slice_name)
        if stats is None:
            stats = by_slice[slice_name] = SliceStats(slice_name)
            report.slices.append(stats)
        payload = job_result.require()
        failures = _failures_from_params(payload["failures"])
        stats.cases += 1
        stats.checks += payload["checks"]
        stats.failures += len(failures)
        report.failures += failures
        if failures:
            report.failing_seeds.append(case_seed)

    report.slices.sort(key=lambda s: s.name)
    journal.emit(
        "campaign-complete", request_id=run_id, campaign="fuzz",
        checks=report.checks, failures=len(report.failures),
        corpus_failures=report.corpus_failures,
    )
    return report


def _failures_from_params(items: Sequence[Dict[str, object]]) -> List[OracleFailure]:
    """Rebuild :class:`OracleFailure` objects from a job payload."""
    return [
        OracleFailure(
            oracle=item["oracle"],
            detail=item["detail"],
            spec_text=item.get("spec_text") or "",
            inputs=item.get("inputs"),
            model=item.get("model"),
        )
        for item in items
    ]


def replay_corpus_entry(
    entry: CorpusEntry,
    models: Sequence[ImplementationModel] = ALL_MODELS,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> List[OracleFailure]:
    """Re-judge one persisted regression case with every oracle its
    directives support (round-trip and parity always; refinement when
    the entry pins a partition)."""
    try:
        spec = entry.load_spec()
    except ReproError as exc:
        return [
            OracleFailure(
                "corpus",
                f"{entry.name}: stored spec does not load: "
                f"{type(exc).__name__}: {exc}",
                spec_text=entry.spec_text,
            )
        ]
    vectors = entry.input_vectors or [{}]
    failures = list(check_roundtrip(spec))
    failures += check_walker_parity(spec, vectors, max_steps)
    partition = entry.load_partition(spec)
    if partition is not None:
        failures += check_refinement(spec, partition, vectors, models,
                                     max_steps)
    for failure in failures:
        failure.detail = f"{entry.name}: {failure.detail}"
    return failures


def replay_corpus(
    directory: str = DEFAULT_CORPUS_DIR,
    models: Sequence[ImplementationModel] = ALL_MODELS,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> List[OracleFailure]:
    """Replay every entry in the regression corpus; [] means all the
    persisted bugs stay fixed."""
    failures: List[OracleFailure] = []
    for entry in iter_corpus(directory):
        failures += replay_corpus_entry(entry, models, max_steps)
    return failures
