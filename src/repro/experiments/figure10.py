"""Figure 10 reproduction: refined-specification size and refinement
CPU time for 3 designs x 4 models.

The paper measures "# lines in the refined specification / CPU time for
the refinement" on a SPARC5, observing refined specs 11-19x the
226-line original and times of 33-39 s.  We run the same sweep with our
refiner; absolute CPU seconds differ by three decades of hardware, so
the claims under test are the *relative* ones: every refined model is
an order of magnitude larger than the input (the 10x productivity
argument), Model4 is the largest for global-heavy designs (interfaces
and their protocol machinery), and the refinement itself is fast and
roughly model-independent.

Each cell's refined specification is validated, and optionally
co-simulated against the original for functional equivalence — the
paper's correctness argument, checkable here because the refined model
is executable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.arch.allocation import Allocation
from repro.experiments.figure9 import default_allocation
from repro.experiments.paperdata import (
    PAPER_FIGURE10_LINES,
    PAPER_FIGURE10_SECONDS,
    PAPER_ORIGINAL_LINES,
)
from repro.experiments.tables import render_table
from repro.models.impl_models import ALL_MODELS
from repro.refine.refiner import RefinedDesign
from repro.spec.specification import Specification

__all__ = ["Figure10Cell", "Figure10Result", "run_figure10"]


@dataclass
class Figure10Cell:
    """One (design, model) cell of Figure 10.

    ``procedure_seconds`` carries the per-procedure breakdown of
    ``refinement_seconds``; ``refined`` holds the full
    :class:`RefinedDesign` only when the cell was computed in-process
    (a job dispatched to a worker or answered from the result cache
    returns measurements, not the refined object).
    """

    design: str
    model: str
    refined_lines: int
    refinement_seconds: float
    ratio: float
    equivalent: Optional[bool]
    procedure_seconds: Dict[str, float] = field(default_factory=dict)
    refined: Optional[RefinedDesign] = None


class Figure10Result:
    """The full sweep plus the original size it is measured against."""

    def __init__(self, original_lines: int):
        self.original_lines = original_lines
        self.cells: Dict[str, Dict[str, Figure10Cell]] = {}

    def cell(self, design: str, model: str) -> Figure10Cell:
        return self.cells[design][model]

    def min_ratio(self) -> float:
        return min(
            cell.ratio for row in self.cells.values() for cell in row.values()
        )

    def max_ratio(self) -> float:
        return max(
            cell.ratio for row in self.cells.values() for cell in row.values()
        )

    def render(self, include_paper: bool = True) -> str:
        headers = ["Design", "Model1", "Model2", "Model3", "Model4"]
        rows = []
        for design, row in self.cells.items():
            cells = []
            for model in ("Model1", "Model2", "Model3", "Model4"):
                cell = row[model]
                eq = ""
                if cell.equivalent is not None:
                    eq = " OK" if cell.equivalent else " MISMATCH"
                cells.append(
                    f"{cell.refined_lines}/{cell.refinement_seconds * 1e3:.0f}ms"
                    f" ({cell.ratio:.1f}x){eq}"
                )
            rows.append([design] + cells)
            # paper reference rows exist only for the medical designs
            if include_paper and design in PAPER_FIGURE10_LINES:
                rows.append(
                    ["  (paper)"]
                    + [
                        f"{PAPER_FIGURE10_LINES[design][m]}/"
                        f"{PAPER_FIGURE10_SECONDS[design][m]}s "
                        f"({PAPER_FIGURE10_LINES[design][m] / PAPER_ORIGINAL_LINES:.1f}x)"
                        for m in ("Model1", "Model2", "Model3", "Model4")
                    ]
                )
        title = (
            "Figure 10: refined spec size / refinement CPU time "
            f"(original: {self.original_lines} lines; "
            f"paper original: {PAPER_ORIGINAL_LINES})"
        )
        return render_table(headers, rows, title=title)

    def render_breakdown(self) -> str:
        """The refinement CPU time of every cell decomposed per
        refinement procedure (the provenance of the Figure 10
        seconds)."""
        procedures: list = []
        for row in self.cells.values():
            for cell in row.values():
                for name in cell.procedure_seconds:
                    if name not in procedures:
                        procedures.append(name)
        if not procedures:
            return "no per-procedure timings recorded"
        headers = ["Design / Model"] + procedures + ["total"]
        rows = []
        for design, row in self.cells.items():
            for model in ("Model1", "Model2", "Model3", "Model4"):
                cell = row[model]
                seconds = cell.procedure_seconds
                total = sum(seconds.values())
                rows.append(
                    [f"{design} {model}"]
                    + [f"{seconds.get(p, 0.0) * 1e3:.2f}" for p in procedures]
                    + [f"{total * 1e3:.2f}"]
                )
        return render_table(
            headers,
            rows,
            title="Figure 10 breakdown: refinement milliseconds per procedure",
        )


def run_figure10(
    spec: Optional[Specification] = None,
    allocation: Optional[Allocation] = None,
    check_equivalence: bool = False,
    inputs: Optional[Dict[str, int]] = None,
    engine=None,
    workload=None,
) -> Figure10Result:
    """Run the full Figure 10 sweep.

    ``workload`` names a :mod:`repro.apps.workloads` registry entry
    (default ``medical``) supplying the specification, design set and
    default stimulus; its id lands in every job's cache key.

    ``check_equivalence=True`` additionally co-simulates each refined
    design against the original (slower; used by the test suite and the
    benchmark harness rather than quick looks).

    The twelve cells are dispatched as ``figure10-cell`` jobs through
    ``engine`` (an :class:`repro.exec.ExecutionEngine`; default: the
    serial, uncached reference).  Note the report embeds wall-clock
    refinement times, so two *cold* runs differ in the timing digits;
    byte-reproducibility across executors comes from a shared result
    cache (the second run replays the first run's measurements).
    """
    from repro.exec import ExecutionEngine, Job, canonical_partition
    from repro.exec import canonical_spec_text
    from repro.exec.campaigns import allocation_to_params

    from repro.apps.workloads import resolve_workload

    workload = resolve_workload(workload)
    spec = spec or workload.spec()
    spec.validate()
    allocation = allocation or default_allocation()
    inputs = dict(inputs if inputs is not None else workload.default_inputs)
    original_lines = spec.line_count()
    engine = engine if engine is not None else ExecutionEngine()

    spec_text = canonical_spec_text(spec)
    allocation_data = allocation_to_params(allocation)
    designs = workload.designs(spec)
    jobs = [
        Job(
            "figure10-cell",
            {
                "workload": workload.id,
                "spec": spec_text,
                "partition": canonical_partition(partition),
                "design": design_name,
                "model": model.name,
                "allocation": allocation_data,
                "check_equivalence": bool(check_equivalence),
                "inputs": inputs,
            },
            label=f"figure10:{design_name}:{model.name}",
        )
        for design_name, partition in designs.items()
        for model in ALL_MODELS
    ]
    measured = iter(engine.run(jobs))

    result = Figure10Result(original_lines)
    for design_name in designs:
        result.cells[design_name] = {}
        for model in ALL_MODELS:
            payload = next(measured).require()
            result.cells[design_name][model.name] = Figure10Cell(
                design=design_name,
                model=model.name,
                refined_lines=payload["refined_lines"],
                refinement_seconds=payload["refinement_seconds"],
                ratio=payload["refined_lines"] / max(original_lines, 1),
                equivalent=payload["equivalent"],
                procedure_seconds=dict(payload["procedure_seconds"]),
            )
    return result
