"""repro — Model Refinement for Hardware-Software Codesign.

A from-scratch Python reproduction of Gong, Gajski & Bakshi's model
refinement system (UCI TR ICS-95-14 / DATE 1996): a SpecCharts-like
specification model, access-graph analysis, allocation and partitioning,
four communication implementation models, the control-, data- and
architecture-related refinement procedures, a discrete-event simulator
for functional-equivalence checking, and the paper's evaluation
harness.

Quickstart::

    from repro import refine_specification
    from repro.apps.figures import figure1_specification
    from repro.models import MODEL1

    spec = figure1_specification()
    refined = refine_specification(
        spec,
        partition={"A": "PROC", "C": "PROC", "B": "ASIC1", "x": "ASIC1"},
        model=MODEL1,
    )
    print(refined.spec.line_count(), "lines after refinement")
"""

__version__ = "1.0.0"

from repro.errors import (
    EquivalenceError,
    ParseError,
    PartitionError,
    RefinementError,
    ReproError,
    ScopeError,
    SimulationError,
    SpecError,
)

__all__ = [
    "__version__",
    "EquivalenceError",
    "ParseError",
    "PartitionError",
    "RefinementError",
    "ReproError",
    "ScopeError",
    "SimulationError",
    "SpecError",
    "refine_specification",
]


def refine_specification(spec, partition, model, **kwargs):
    """Convenience wrapper around :class:`repro.refine.Refiner`.

    ``partition`` may be a :class:`repro.partition.Partition` or a plain
    ``{object_name: component_name}`` mapping; ``model`` may be an
    :class:`repro.models.ImplementationModel` or its name (``"Model1"``
    .. ``"Model4"``).  Returns a :class:`repro.refine.RefinedDesign`.
    """
    from repro.models import resolve_model
    from repro.partition import Partition
    from repro.refine import Refiner

    if isinstance(partition, dict):
        partition = Partition.from_mapping(spec, partition)
    return Refiner(spec, partition, resolve_model(model), **kwargs).run()
