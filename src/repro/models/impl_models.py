"""The four implementation models of paper §3 (Figure 3).

Each model decides three things (the paper's three parameters): the
number of memory ports, the mapping of variables to local or global
memories, and — through the plan it emits — which buses exist and which
buses each access traverses.

========  =========================================  ==================
Model     Topology (p partitions)                    Max buses
========  =========================================  ==================
Model1    single-port global memories on one bus     1
Model2    local memories + single-port global        p + 1
          memories on one shared global bus
Model3    local memories + p-port global memories,   p + p*p
          one dedicated bus per (component, global
          memory) pair
Model4    local memories + bus interfaces            2p + 1
          (message passing)
========  =========================================  ==================

Bus numbering follows the paper's Figure 3 for two partitions:
Model2 -> b1 local(P1), b2 global, b3 local(P2); Model3 -> b1 local(P1),
b2..b5 dedicated (P1->G1, P1->G2, P2->G1, P2->G2), b6 local(P2);
Model4 -> b1 local(P1), b2 iface(P1), b3 interchange, b4 iface(P2),
b5 local(P2).

Model4 routing note: a cross-partition access traverses the accessor's
interface bus (behavior -> bus interface), the interchange (interface
-> interface) and the *owner's* interface bus (interface -> local
memory's second port).  Every cross access therefore loads all three
interface-path buses equally — which is why the paper reports one
number for ``b2=b3=b4``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import RefinementError
from repro.graph.access_graph import AccessGraph
from repro.graph.analysis import VariableClassification, classify_variables
from repro.models.plan import BusPlan, BusRole, MemoryPlan, ModelPlan
from repro.partition.partition import Partition
from repro.spec.specification import Specification

__all__ = [
    "ImplementationModel",
    "Model1",
    "Model2",
    "Model3",
    "Model4",
    "MODEL1",
    "MODEL2",
    "MODEL3",
    "MODEL4",
    "ALL_MODELS",
    "resolve_model",
]


class ImplementationModel:
    """Base class: builds a :class:`ModelPlan` for a partitioned spec."""

    #: Registry name ("Model1" .. "Model4").
    name: str = "abstract"
    #: Human description (paper §3 headline).
    description: str = ""

    def max_buses(self, p: int) -> int:
        """The paper's worst-case bus-count formula."""
        raise NotImplementedError

    def build_plan(
        self,
        spec: Specification,
        partition: Partition,
        classification: Optional[VariableClassification] = None,
        graph: Optional[AccessGraph] = None,
    ) -> ModelPlan:
        """Plan memories, buses, placement and routing."""
        if classification is None:
            if graph is None:
                graph = AccessGraph.from_specification(spec)
            classification = classify_variables(graph, partition)
        plan = ModelPlan(self.name, spec, partition, classification)
        self._populate(plan)
        plan.assign_addresses()
        return plan

    def _populate(self, plan: ModelPlan) -> None:
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------------

    @staticmethod
    def _component_index(plan: ModelPlan) -> Dict[str, int]:
        return {c: i + 1 for i, c in enumerate(plan.partition.components())}

    @staticmethod
    def _vars_homed(plan: ModelPlan, component: str) -> List[str]:
        """All partitionable variables homed on ``component``, in
        specification declaration order (stable addresses)."""
        home = plan.classification.home
        return [
            v.name
            for v in plan.spec.variables
            if v.name in home and home[v.name] == component
        ]

    @staticmethod
    def _locals_homed(plan: ModelPlan, component: str) -> List[str]:
        local = set(plan.classification.local.get(component, ()))
        return [
            v.name for v in plan.spec.variables if v.name in local
        ]

    @staticmethod
    def _globals_homed(plan: ModelPlan, component: str) -> List[str]:
        home = plan.classification.home
        global_set = set(plan.classification.global_vars)
        return [
            v.name
            for v in plan.spec.variables
            if v.name in global_set and home[v.name] == component
        ]

    def __repr__(self) -> str:
        return f"<{self.name}: {self.description}>"


class Model1(ImplementationModel):
    """Single-port global memory only.

    All variables live in global memories (one per home partition); all
    behaviors reach them over one shared bus, which therefore carries
    the design's entire data traffic (the 3636 Mbit/s column of
    Figure 9).
    """

    name = "Model1"
    description = "single-port global memory only"

    def max_buses(self, p: int) -> int:
        return 1

    def _populate(self, plan: ModelPlan) -> None:
        bus = plan.new_bus(BusRole.GLOBAL)
        index = self._component_index(plan)
        for component in plan.partition.components():
            homed = self._vars_homed(plan, component)
            if not homed:
                continue
            memory = plan.new_memory(
                f"Gmem{index[component]}", "global", None, homed
            )
            memory.port_buses.append(bus.name)

        def route(accessor_component: str, variable: str) -> List[str]:
            return [bus.name]

        plan.set_router(route)


class Model2(ImplementationModel):
    """Local memory + single-port global memory.

    Local variables move into per-component local memories on private
    buses; global variables stay in global memories on one shared
    global bus — the shared-memory scheme whose global bus becomes the
    hot spot when globals dominate (Design3 in Figure 9).
    """

    name = "Model2"
    description = "local memory + single-port global memory"

    def max_buses(self, p: int) -> int:
        return p + 1

    def _populate(self, plan: ModelPlan) -> None:
        components = plan.partition.components()
        index = self._component_index(plan)
        local_bus: Dict[str, str] = {}
        global_bus: Optional[BusPlan] = None
        any_globals = bool(plan.classification.global_vars)

        for position, component in enumerate(components):
            locals_here = self._locals_homed(plan, component)
            if locals_here:
                bus = plan.new_bus(BusRole.LOCAL, component=component)
                local_bus[component] = bus.name
                memory = plan.new_memory(
                    f"Lmem{index[component]}", "local", component, locals_here
                )
                memory.port_buses.append(bus.name)
            if position == 0 and any_globals:
                global_bus = plan.new_bus(BusRole.GLOBAL)

        if any_globals and global_bus is None:
            global_bus = plan.new_bus(BusRole.GLOBAL)
        for component in components:
            globals_here = self._globals_homed(plan, component)
            if globals_here:
                memory = plan.new_memory(
                    f"Gmem{index[component]}", "global", None, globals_here
                )
                memory.port_buses.append(global_bus.name)

        classification = plan.classification

        def route(accessor_component: str, variable: str) -> List[str]:
            if classification.is_global(variable):
                return [global_bus.name]
            return [local_bus[classification.home[variable]]]

        plan.set_router(route)


class Model3(ImplementationModel):
    """Local memory + multiple-port global memory.

    Like Model2 but every global memory gets one port (and one
    dedicated bus) per partition, spreading global traffic across
    p*p buses — the flattest profile in Figure 9.
    """

    name = "Model3"
    description = "local memory + multiple-port global memory"

    def max_buses(self, p: int) -> int:
        return p + p * p

    def _populate(self, plan: ModelPlan) -> None:
        components = plan.partition.components()
        index = self._component_index(plan)
        local_bus: Dict[str, str] = {}
        dedicated: Dict[tuple, str] = {}

        # global memories exist per home partition holding globals
        global_homes = [
            c for c in components if self._globals_homed(plan, c)
        ]
        memories: Dict[str, MemoryPlan] = {}

        # paper bus order for p=2: b1 = local(P1), b2..b5 dedicated,
        # b6 = local(P2)
        first = components[0]
        locals_first = self._locals_homed(plan, first)
        if locals_first:
            bus = plan.new_bus(BusRole.LOCAL, component=first)
            local_bus[first] = bus.name
            memory = plan.new_memory(
                f"Lmem{index[first]}", "local", first, locals_first
            )
            memory.port_buses.append(bus.name)

        # dedicated buses in paper order: component-major, memory-minor
        for home in global_homes:
            memories[home] = plan.new_memory(
                f"Gmem{index[home]}", "global", None,
                self._globals_homed(plan, home),
            )
        for component in components:
            for home in global_homes:
                bus = plan.new_bus(
                    BusRole.DEDICATED,
                    component=component,
                    memory=memories[home].name,
                )
                dedicated[(component, memories[home].name)] = bus.name
                memories[home].port_buses.append(bus.name)

        # trailing local buses for the remaining components (paper's b6)
        for component in components[1:]:
            locals_here = self._locals_homed(plan, component)
            if locals_here:
                bus = plan.new_bus(BusRole.LOCAL, component=component)
                local_bus[component] = bus.name
                memory = plan.new_memory(
                    f"Lmem{index[component]}", "local", component, locals_here
                )
                memory.port_buses.append(bus.name)

        classification = plan.classification
        placement = plan.placement

        def route(accessor_component: str, variable: str) -> List[str]:
            if classification.is_global(variable):
                return [dedicated[(accessor_component, placement[variable])]]
            return [local_bus[classification.home[variable]]]

        plan.set_router(route)


class Model4(ImplementationModel):
    """Local memory + bus interface (message passing).

    Every variable lives in its home partition's local memory.
    Resident accesses use the component's local bus; a remote access is
    a message: accessor -> own bus interface (iface bus), interface ->
    owner's interface (interchange), owner's interface -> local
    memory's second port (owner's iface bus).  All three interface-path
    buses therefore carry exactly the cross-partition traffic — the
    paper's ``b2=b3=b4``.
    """

    name = "Model4"
    description = "local memory + bus interface"

    def max_buses(self, p: int) -> int:
        return 2 * p + 1

    def _populate(self, plan: ModelPlan) -> None:
        components = plan.partition.components()
        index = self._component_index(plan)
        local_bus: Dict[str, str] = {}
        iface_bus: Dict[str, str] = {}
        interchange: Optional[BusPlan] = None
        # remote traffic exists when any variable is global
        any_cross = bool(plan.classification.global_vars)

        # memories first (ports attached after the buses exist)
        memories: Dict[str, MemoryPlan] = {}
        for component in components:
            homed = self._vars_homed(plan, component)
            if homed:
                memories[component] = plan.new_memory(
                    f"Lmem{index[component]}", "local", component, homed
                )

        # paper bus order for p=2: b1 local(P1), b2 iface(P1),
        # b3 interchange, b4 iface(P2), b5 local(P2)
        for position, component in enumerate(components):
            if position == 0 and component in memories:
                local_bus[component] = plan.new_bus(
                    BusRole.LOCAL, component=component
                ).name
            if any_cross:
                iface_bus[component] = plan.new_bus(
                    BusRole.IFACE, component=component
                ).name
            if position == 0 and any_cross:
                interchange = plan.new_bus(BusRole.INTERCHANGE)
            if position > 0 and component in memories:
                local_bus[component] = plan.new_bus(
                    BusRole.LOCAL, component=component
                ).name

        # port order: behaviors' port (local bus) first, then the bus
        # interface's port (iface bus)
        for component, memory in memories.items():
            memory.port_buses.append(local_bus[component])
            if any_cross:
                memory.port_buses.append(iface_bus[component])

        classification = plan.classification

        def route(accessor_component: str, variable: str) -> List[str]:
            home = classification.home[variable]
            if home == accessor_component:
                return [local_bus[home]]
            return [
                iface_bus[accessor_component],
                interchange.name,
                iface_bus[home],
            ]

        plan.set_router(route)


#: Singleton instances, in paper order.
MODEL1 = Model1()
MODEL2 = Model2()
MODEL3 = Model3()
MODEL4 = Model4()

ALL_MODELS = (MODEL1, MODEL2, MODEL3, MODEL4)

_BY_NAME = {m.name: m for m in ALL_MODELS}


def resolve_model(model) -> ImplementationModel:
    """Accept an :class:`ImplementationModel` or its name."""
    if isinstance(model, ImplementationModel):
        return model
    found = _BY_NAME.get(str(model))
    if found is None:
        raise RefinementError(
            f"unknown implementation model {model!r}; available: {sorted(_BY_NAME)}"
        )
    return found
