"""Model plans: the bus/memory topology an implementation model implies.

An :class:`ImplementationModel` (paper §3) turns a partitioned
specification into a :class:`ModelPlan` — the declarative description
of which memories exist, which buses connect what, where each variable
lives, and which buses a given access traverses.  The refiner executes
the plan (generates behaviors, protocols, signals); the estimator maps
channel rates over :meth:`ModelPlan.route` to produce the Figure 9 bus
transfer rates.  Keeping the plan separate from both is what makes the
cross-model comparison apples-to-apples: same profile, same partition,
different plan.

Address map: every partitionable variable receives a *system-wide
unique* address range (arrays occupy one slot per element) assigned
memory-by-memory in canonical order.  System-wide uniqueness lets
Model4's bus interfaces route by address range alone.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import RefinementError
from repro.graph.analysis import VariableClassification
from repro.partition.partition import Partition
from repro.spec.specification import Specification
from repro.spec.types import ArrayType

__all__ = ["BusRole", "BusPlan", "MemoryPlan", "AddressRange", "ModelPlan"]


class BusRole(enum.Enum):
    """Why a bus exists in the topology."""

    #: Component-private bus to a local memory.
    LOCAL = "local"
    #: Shared bus to the global memories (Model1, Model2).
    GLOBAL = "global"
    #: Dedicated component-to-global-memory bus (Model3).
    DEDICATED = "dedicated"
    #: Per-component interface bus: behaviors -> bus interface, and bus
    #: interface -> local memory second port (Model4).
    IFACE = "iface"
    #: The interface-to-interface interchange bus (Model4).
    INTERCHANGE = "interchange"


@dataclass
class BusPlan:
    """One planned bus.

    ``component`` is the owning component for LOCAL/IFACE/DEDICATED
    buses (for DEDICATED it is the *master* side); ``memory`` is the
    global memory a DEDICATED bus reaches.
    """

    name: str
    role: BusRole
    component: Optional[str] = None
    memory: Optional[str] = None
    data_width: int = 16
    addr_width: int = 8


@dataclass
class MemoryPlan:
    """One planned memory module.

    ``port_buses`` lists the buses its ports sit on, in port order.
    """

    name: str
    kind: str  # "local" | "global"
    host: Optional[str]
    variables: List[str] = field(default_factory=list)
    port_buses: List[str] = field(default_factory=list)

    @property
    def port_count(self) -> int:
        return len(self.port_buses)


@dataclass(frozen=True)
class AddressRange:
    """Address slot(s) of one variable: ``[base, base+size)``."""

    base: int
    size: int

    @property
    def last(self) -> int:
        return self.base + self.size - 1


class ModelPlan:
    """The planned topology for (specification, partition, model)."""

    def __init__(
        self,
        model_name: str,
        spec: Specification,
        partition: Partition,
        classification: VariableClassification,
    ):
        self.model_name = model_name
        self.spec = spec
        self.partition = partition
        self.classification = classification
        self.buses: Dict[str, BusPlan] = {}
        self.memories: Dict[str, MemoryPlan] = {}
        #: variable -> memory name
        self.placement: Dict[str, str] = {}
        #: variable -> address range (system-wide unique)
        self.addresses: Dict[str, AddressRange] = {}
        self._bus_counter = 0
        self._router = None

    # -- construction helpers (used by the concrete models) ------------------

    def new_bus(self, role: BusRole, component: str = None, memory: str = None) -> BusPlan:
        """Create the next bus in canonical order (named b1, b2, ...)."""
        self._bus_counter += 1
        bus = BusPlan(f"b{self._bus_counter}", role, component=component, memory=memory)
        self.buses[bus.name] = bus
        return bus

    def new_memory(
        self, name: str, kind: str, host: Optional[str], variables: Sequence[str]
    ) -> MemoryPlan:
        memory = MemoryPlan(name, kind, host, list(variables))
        self.memories[name] = memory
        for variable in variables:
            self.placement[variable] = name
        return memory

    def assign_addresses(self) -> None:
        """Assign a system-wide unique address range to every placed
        variable, memory by memory in creation order."""
        next_addr = 0
        for memory in self.memories.values():
            for name in memory.variables:
                decl = self.spec.global_variable(name)
                if decl is None:
                    raise RefinementError(f"placed unknown variable {name!r}")
                size = (
                    decl.dtype.length if isinstance(decl.dtype, ArrayType) else 1
                )
                self.addresses[name] = AddressRange(next_addr, size)
                next_addr += size
        self._size_buses(next_addr)

    def _size_buses(self, address_space: int) -> None:
        addr_width = max(1, (max(1, address_space - 1)).bit_length())
        for bus in self.buses.values():
            bus.addr_width = addr_width
            bus.data_width = self._data_width_for(bus)

    def _data_width_for(self, bus: BusPlan) -> int:
        widths = [8]
        for memory in self.memories.values():
            if bus.name not in memory.port_buses and not self._routes_through(
                bus, memory
            ):
                continue
            for name in memory.variables:
                decl = self.spec.global_variable(name)
                dtype = decl.dtype
                if isinstance(dtype, ArrayType):
                    dtype = dtype.element
                widths.append(dtype.bit_width)
        return max(widths)

    def _routes_through(self, bus: BusPlan, memory: MemoryPlan) -> bool:
        # interchange / iface buses carry every remotely accessible word
        return bus.role in (BusRole.IFACE, BusRole.INTERCHANGE)

    # -- queries ----------------------------------------------------------------

    def memory_of(self, variable: str) -> MemoryPlan:
        name = self.placement.get(variable)
        if name is None:
            raise RefinementError(f"variable {variable!r} was not placed")
        return self.memories[name]

    def address_of(self, variable: str) -> AddressRange:
        addr = self.addresses.get(variable)
        if addr is None:
            raise RefinementError(f"variable {variable!r} has no address")
        return addr

    def memory_address_span(self, memory: str) -> Tuple[int, int]:
        """Inclusive [lo, hi] address span of one memory's variables."""
        ranges = [
            self.addresses[name] for name in self.memories[memory].variables
        ]
        if not ranges:
            raise RefinementError(f"memory {memory!r} holds no variables")
        return (
            min(r.base for r in ranges),
            max(r.last for r in ranges),
        )

    def component_address_span(self, component: str) -> Tuple[int, int]:
        """Inclusive address span of every variable resident on
        ``component`` (Model4 routing)."""
        ranges = [
            self.addresses[name]
            for name, memory_name in self.placement.items()
            if self.memories[memory_name].host == component
        ]
        if not ranges:
            return (0, -1)  # empty span: no resident variables
        return (
            min(r.base for r in ranges),
            max(r.last for r in ranges),
        )

    def buses_with_role(self, role: BusRole) -> List[BusPlan]:
        return [b for b in self.buses.values() if b.role is role]

    def bus_for(
        self, role: BusRole, component: str = None, memory: str = None
    ) -> BusPlan:
        for bus in self.buses.values():
            if bus.role is not role:
                continue
            if component is not None and bus.component != component:
                continue
            if memory is not None and bus.memory != memory:
                continue
            return bus
        raise RefinementError(
            f"{self.model_name}: no bus with role={role.value} "
            f"component={component} memory={memory}"
        )

    def has_bus(self, role: BusRole, component: str = None, memory: str = None) -> bool:
        try:
            self.bus_for(role, component, memory)
            return True
        except RefinementError:
            return False

    # -- routing -----------------------------------------------------------------------

    def set_router(self, router) -> None:
        """Install the model's access-to-buses mapping (called once by
        the concrete model during plan building)."""
        self._router = router

    def route(self, accessor_component: str, variable: str) -> List[str]:
        """Bus names one access to ``variable`` from a behavior on
        ``accessor_component`` traverses, in path order.

        This is the mapping Figure 9's bus transfer rates sum over.
        """
        if self._router is None:
            raise RefinementError(f"{self.model_name}: route() not configured")
        return self._router(accessor_component, variable)

    def describe(self) -> str:
        lines = [f"plan for {self.model_name} on {self.partition.name}"]
        for bus in self.buses.values():
            owner = f" ({bus.role.value}"
            if bus.component:
                owner += f" of {bus.component}"
            if bus.memory:
                owner += f" -> {bus.memory}"
            owner += ")"
            lines.append(
                f"  {bus.name}{owner}: data {bus.data_width}b, addr {bus.addr_width}b"
            )
        for memory in self.memories.values():
            where = f" on {memory.host}" if memory.host else ""
            lines.append(
                f"  {memory.name} [{memory.kind}]{where}: "
                f"{', '.join(memory.variables) or '-'}"
            )
        return "\n".join(lines)
