"""The four communication implementation models (paper §3)."""

from repro.models.impl_models import (
    ALL_MODELS,
    MODEL1,
    MODEL2,
    MODEL3,
    MODEL4,
    ImplementationModel,
    Model1,
    Model2,
    Model3,
    Model4,
    resolve_model,
)
from repro.models.plan import AddressRange, BusPlan, BusRole, MemoryPlan, ModelPlan

__all__ = [
    "ALL_MODELS",
    "MODEL1",
    "MODEL2",
    "MODEL3",
    "MODEL4",
    "ImplementationModel",
    "Model1",
    "Model2",
    "Model3",
    "Model4",
    "resolve_model",
    "AddressRange",
    "BusPlan",
    "BusRole",
    "MemoryPlan",
    "ModelPlan",
]
