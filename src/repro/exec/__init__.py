"""Parallel, cache-aware campaign execution (`repro.exec`).

Campaigns — the Figure 9/10 sweeps, the robustness matrix, the fuzzing
runs, ``repro sweep`` — are grids of independent jobs.  This package
turns each grid into a declarative job list and runs it through:

* a pluggable **executor** — ``serial`` (the reference) or ``process``
  (a multiprocessing pool with shards, per-job timeouts and graceful
  degradation to serial on worker crash);
* a **content-addressed result cache** keyed by SHA-256 over the
  canonical specification text, partition, model, protocol, seed and a
  code-version salt, so a warm re-run of an unchanged campaign costs
  almost nothing and a stale entry can never be served.

Results always come back in *grid order* (by job identity, not
completion order), which is what makes serial and parallel campaign
reports byte-identical.  See ``docs/EXECUTION.md``.
"""

from repro.exec.cache import (
    DEFAULT_CACHE_DIR,
    CacheStats,
    ResultCache,
    default_cache_dir,
)
from repro.exec.campaigns import get_task, register, task_names
from repro.exec.engine import ExecutionEngine
from repro.exec.executors import (
    ProcessExecutor,
    SerialExecutor,
    resolve_executor,
)
from repro.exec.job import (
    Job,
    JobResult,
    canonical_params,
    canonical_partition,
    canonical_spec_text,
    code_version_salt,
    job_key,
)

__all__ = [
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "ExecutionEngine",
    "Job",
    "JobResult",
    "ProcessExecutor",
    "ResultCache",
    "SerialExecutor",
    "canonical_params",
    "canonical_partition",
    "canonical_spec_text",
    "code_version_salt",
    "default_cache_dir",
    "get_task",
    "job_key",
    "register",
    "resolve_executor",
    "task_names",
]
