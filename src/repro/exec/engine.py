"""The campaign execution engine: grid in, ordered results out.

``ExecutionEngine.run`` takes a job grid (see
:class:`repro.exec.job.Job`), answers what it can from the
content-addressed result cache, hands the misses to the configured
executor, stores fresh results back, and returns one
:class:`repro.exec.job.JobResult` per job **in grid order** — results
are keyed by job identity, never by completion order, which is what
makes serial and parallel campaign reports byte-identical.

Observability plugs into the existing layers:

* an :class:`repro.sim.metrics.ExecMetrics` counts jobs, cache
  hits/misses/evictions, failures and fallbacks;
* a :class:`repro.obs.trace.SpanTracer` receives one ``exec`` span per
  grid and one child span per job (cache hits included, flagged
  ``cached=True``), so ``repro sweep --trace`` / ``repro fuzz --trace``
  show the scheduler's work next to the pipeline spans;
* an :class:`repro.obs.events.EventJournal` receives ``grid-start`` /
  ``job-cache-hit`` / ``job-complete`` / ``grid-complete`` records,
  and a :class:`repro.obs.metrics.MetricsRegistry` job/cache counters
  plus an execution-latency histogram.  Every journal record and span
  carries the request/run correlation ID: the serving layer binds the
  HTTP request's ID (:func:`repro.obs.events.bind_request_id`) before
  calling :meth:`ExecutionEngine.run`; standalone campaigns get a
  generated ``run-...`` ID per grid.  Both default to the shared
  no-op singletons, costing nothing when unused.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.exec.cache import ResultCache
from repro.exec.executors import SerialExecutor
from repro.exec.job import Job, JobResult, code_version_salt
from repro.obs.events import NULL_JOURNAL, current_request_id, new_request_id
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, NULL_REGISTRY
from repro.obs.trace import NULL_TRACER
from repro.sim.metrics import ExecMetrics

__all__ = ["ExecutionEngine"]


class ExecutionEngine:
    """Runs job grids through a cache + executor pair.

    ``executor``
        Any object with ``run(items) -> outcomes`` — see
        :mod:`repro.exec.executors`.  Default: the serial reference.
    ``cache``
        A :class:`repro.exec.cache.ResultCache`, or ``None`` to run
        uncached (the default — campaign drivers opt in).
    ``no_cache``
        Bypass the cache entirely (neither read nor write).
    ``refresh``
        Recompute every job but store the fresh results (a cache
        warm-up that distrusts current contents).
    ``journal`` / ``registry``
        An :class:`repro.obs.events.EventJournal` and a
        :class:`repro.obs.metrics.MetricsRegistry` (both default to
        the no-op singletons; see the module docstring).
    """

    def __init__(
        self,
        executor=None,
        cache: Optional[ResultCache] = None,
        metrics: Optional[ExecMetrics] = None,
        tracer=None,
        no_cache: bool = False,
        refresh: bool = False,
        journal=None,
        registry=None,
    ):
        self.executor = executor if executor is not None else SerialExecutor()
        self.cache = cache
        self.metrics = metrics if metrics is not None else ExecMetrics()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.no_cache = no_cache
        self.refresh = refresh
        self.journal = journal if journal is not None else NULL_JOURNAL
        self.registry = registry if registry is not None else NULL_REGISTRY
        # shared no-ops when the registry is disabled; get-or-create,
        # so engines sharing a registry share these families
        self._jobs_total = self.registry.counter(
            "repro_exec_jobs_total",
            "Engine jobs by final outcome (cache hits count as ok).",
            ("outcome",),
        )
        self._cache_total = self.registry.counter(
            "repro_exec_cache_total",
            "Result-cache lookups by event.",
            ("event",),
        )
        self._job_seconds = self.registry.histogram(
            "repro_exec_job_seconds",
            "Executed (non-cached) job duration in seconds.",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )

    # -- main entry ----------------------------------------------------------

    def run(
        self,
        jobs: Sequence[Job],
        timeout: Optional[float] = None,
        cancel=None,
    ) -> List[JobResult]:
        """Run ``jobs``; see the class docstring.

        ``timeout`` overrides the executor's per-job budget for this
        call only (the serving layer passes a request's remaining
        deadline here); ``cancel`` is a :class:`threading.Event` —
        once set, jobs that have not started yet come back with a
        structured ``cancelled`` error instead of running.  Cache hits
        are always served, even with ``cancel`` set.
        """
        started = time.perf_counter()
        salt = code_version_salt()
        executor_name = getattr(self.executor, "name", "custom")
        use_cache = self.cache is not None and not self.no_cache
        read_cache = use_cache and not self.refresh
        # the correlation ID every event/span of this grid carries:
        # the serving layer's bound request ID when present, else a
        # generated run ID (only worth minting when someone listens)
        run_id = current_request_id()
        if not run_id and self.journal.enabled:
            run_id = "run-" + new_request_id()
        span_id = {"request_id": run_id} if run_id else {}

        results: List[Optional[JobResult]] = [None] * len(jobs)
        pending: List[int] = []
        # explicit None-check: ResultCache defines __len__, so an empty
        # cache is falsy and a bare `if self.cache` would skip accounting
        cache_before = (
            self.cache.stats.snapshot() if self.cache is not None else None
        )

        self.journal.emit(
            "grid-start", request_id=run_id, jobs=len(jobs),
            executor=executor_name,
        )
        with self.tracer.span(
            "exec-grid", category="exec", jobs=len(jobs),
            executor=executor_name, **span_id,
        ) as grid_span:
            for index, job in enumerate(jobs):
                key = job.key(salt)
                if read_cache:
                    payload = self.cache.get(key, task=job.task)
                    if payload is not None:
                        results[index] = JobResult(
                            job=job, key=key, payload=payload,
                            cached=True, executor="cache",
                        )
                        self.tracer.record_span(
                            job.describe(), 0.0, cached=True, **span_id
                        )
                        self._cache_total.labels("hit").inc()
                        self._jobs_total.labels("ok").inc()
                        self.journal.emit(
                            "job-cache-hit", request_id=run_id,
                            task=job.task, key=key,
                        )
                        continue
                    self._cache_total.labels("miss").inc()
                pending.append(index)

            degraded_before = getattr(self.executor, "degraded", 0)
            retries_before = getattr(self.executor, "retries", 0)
            if pending:
                outcomes = self._dispatch(
                    [(jobs[i].task, jobs[i].params) for i in pending],
                    timeout,
                    cancel,
                )
                for index, outcome in zip(pending, outcomes):
                    job = jobs[index]
                    key = job.key(salt)
                    seconds = float(outcome.get("seconds", 0.0))
                    error = outcome.get("error")
                    payload = outcome.get("payload")
                    results[index] = JobResult(
                        job=job, key=key, payload=payload, error=error,
                        cached=False, seconds=seconds, executor=executor_name,
                    )
                    self.tracer.record_span(
                        job.describe(), seconds, cached=False,
                        **({"error": error["kind"]} if error else {}),
                        **span_id,
                    )
                    kind = "ok" if error is None else error.get("kind", "error")
                    self._jobs_total.labels(kind).inc()
                    self._job_seconds.observe(seconds)
                    self.journal.emit(
                        "job-complete", request_id=run_id, task=job.task,
                        key=key, outcome=kind, seconds=round(seconds, 6),
                    )
                    if error is None and use_cache:
                        self.cache.put(key, job.task, payload, salt=salt)

            done = [r for r in results if r is not None]
            self._account(
                jobs, done, cache_before, grid_span,
                degraded_before, retries_before,
            )
        self.journal.emit(
            "grid-complete", request_id=run_id, jobs=len(jobs),
            cache_hits=sum(1 for r in done if r.cached),
            failed=sum(1 for r in done if not r.ok),
            retries=getattr(self.executor, "retries", 0) - retries_before,
            degraded=getattr(self.executor, "degraded", 0) - degraded_before,
            seconds=round(time.perf_counter() - started, 6),
        )
        self.metrics.wall_seconds += time.perf_counter() - started
        return done

    def _dispatch(self, items, timeout, cancel):
        """Hand the cache misses to the executor, forwarding the
        per-call ``timeout``/``cancel`` overrides only when given —
        custom executors with a plain ``run(items)`` keep working."""
        if timeout is None and cancel is None:
            return self.executor.run(items)
        try:
            return self.executor.run(items, timeout=timeout, cancel=cancel)
        except TypeError:
            import inspect

            parameters = inspect.signature(self.executor.run).parameters
            if "timeout" in parameters or "cancel" in parameters:
                raise  # genuine TypeError from inside the executor
            return self.executor.run(items)

    def abort(self) -> None:
        """Best-effort cleanup after an interrupt: tear down any live
        worker pools and remove half-written cache temp files.  The
        campaign CLIs call this on SIGINT/SIGTERM before exiting."""
        terminate = getattr(self.executor, "terminate", None)
        if callable(terminate):
            terminate()
        if self.cache is not None:
            self.cache.remove_temp_files()

    # -- bookkeeping ---------------------------------------------------------

    def _account(
        self, jobs, results, cache_before, grid_span,
        degraded_before, retries_before,
    ) -> None:
        hits = sum(1 for r in results if r.cached)
        failed = sum(1 for r in results if not r.ok)
        executed = len(results) - hits
        self.metrics.jobs += len(jobs)
        self.metrics.executed += executed
        self.metrics.failed += failed
        self.metrics.timeouts += sum(
            1 for r in results if r.error and r.error.get("kind") == "timeout"
        )
        self.metrics.cancelled += sum(
            1 for r in results if r.error and r.error.get("kind") == "cancelled"
        )
        self.metrics.degraded += (
            getattr(self.executor, "degraded", 0) - degraded_before
        )
        self.metrics.retries += (
            getattr(self.executor, "retries", 0) - retries_before
        )
        if cache_before is not None:
            after = self.cache.stats
            self.metrics.cache_hits += after.hits - cache_before.hits
            self.metrics.cache_misses += after.misses - cache_before.misses
            self.metrics.cache_errors += after.errors - cache_before.errors
            self.metrics.cache_evictions += (
                after.evictions - cache_before.evictions
            )
        grid_span.set("cache_hits", hits)
        grid_span.set("executed", executed)
        grid_span.set("failed", failed)

    def describe(self) -> str:
        """The engine's cumulative counters (for CLI stderr summaries)."""
        return self.metrics.describe()
