"""Jobs and content-addressed job keys.

A campaign — a Figure 9 sweep, a robustness matrix, a fuzzing run — is
a *grid* of independent jobs.  Each :class:`Job` names a registered
task (see :mod:`repro.exec.campaigns`) and carries a JSON-serialisable
parameter mapping, so the same job can be executed in-process, shipped
to a worker process, or answered from the on-disk result cache.

The cache key of a job is a SHA-256 digest over the *canonical* form
of everything that determines its result:

* the task name and its parameters (canonical JSON: sorted keys, no
  whitespace) — parameters embed the canonically printed specification
  text, the partition assignment, the model, protocol and seed;
* a **code-version salt**: a digest of every ``repro`` source file.
  Any change to the package silently invalidates every cached result —
  a stale entry can never be returned against new code.

Canonicalisation guarantees the key is invariant under re-printing: a
specification parsed from its own printed text produces the same text
again (the printer is a fixpoint, enforced by the fuzzing oracles), so
``job_key`` sees identical bytes.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

__all__ = [
    "Job",
    "JobResult",
    "canonical_params",
    "canonical_partition",
    "canonical_spec_text",
    "code_version_salt",
    "job_key",
]


def canonical_spec_text(spec_or_text) -> str:
    """The canonical printed form of a specification.

    Accepts a :class:`repro.spec.specification.Specification` or source
    text; either way the result is ``print_specification`` output, so
    two textual variants of the same specification key identically.
    """
    from repro.lang.printer import print_specification

    if isinstance(spec_or_text, str):
        from repro.lang.parser import parse

        return print_specification(parse(spec_or_text))
    return print_specification(spec_or_text)


def canonical_partition(partition) -> List[List[str]]:
    """A partition as an *order-preserving* list of
    ``[object, component]`` pairs (accepts a
    :class:`repro.partition.partition.Partition` or a plain mapping).

    Assignment order is semantically significant — it steers topology
    construction during refinement, so two partitions with equal
    mappings in different orders refine to different designs.  A list
    keeps that order through JSON (and through the sorted-key
    canonical form used for cache keys, which only reorders mappings),
    so such partitions correctly get *different* cache keys.
    """
    assignment = getattr(partition, "assignment", partition)
    return [[name, assignment[name]] for name in assignment]


def canonical_params(params: Mapping) -> str:
    """Parameters as canonical JSON (sorted keys, minimal separators)."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


_SALT_CACHE: Dict[str, str] = {}


def code_version_salt() -> str:
    """A digest of every ``repro`` source file.

    Computed once per process and memoised.  Because the salt is part
    of every job key, editing any module orphans all previous cache
    entries instead of ever serving a result computed by old code; the
    orphans age out through normal capacity eviction.
    """
    cached = _SALT_CACHE.get("salt")
    if cached is not None:
        return cached
    import repro

    digest = hashlib.sha256()
    root = os.path.dirname(os.path.abspath(repro.__file__))
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            digest.update(os.path.relpath(path, root).encode())
            with open(path, "rb") as handle:
                digest.update(handle.read())
    salt = digest.hexdigest()
    _SALT_CACHE["salt"] = salt
    return salt


def job_key(task: str, params: Mapping, salt: Optional[str] = None) -> str:
    """The SHA-256 cache key of one job."""
    if salt is None:
        salt = code_version_salt()
    material = canonical_params({"task": task, "params": params, "salt": salt})
    return hashlib.sha256(material.encode()).hexdigest()


@dataclass(frozen=True)
class Job:
    """One schedulable unit of a campaign grid.

    ``params`` must be JSON-serialisable — it crosses process
    boundaries and is hashed into the cache key.  ``label`` is only
    for humans (progress spans, error reports); it does not affect
    the key.
    """

    task: str
    params: Dict[str, object] = field(default_factory=dict)
    label: str = ""

    def key(self, salt: Optional[str] = None) -> str:
        return job_key(self.task, self.params, salt)

    def describe(self) -> str:
        return self.label or f"{self.task}({canonical_params(self.params)[:60]})"


@dataclass
class JobResult:
    """What the engine hands back for one job, in grid order.

    Exactly one of ``payload``/``error`` is set.  ``error`` is a
    structured mapping — ``{"kind": "timeout"|"crash"|"error",
    "type": ..., "message": ...}`` — never a bare exception, so a
    campaign report can embed it deterministically.
    """

    job: Job
    key: str
    payload: Optional[Dict[str, object]] = None
    error: Optional[Dict[str, object]] = None
    cached: bool = False
    seconds: float = 0.0
    executor: str = "serial"

    @property
    def ok(self) -> bool:
        return self.error is None

    def require(self) -> Dict[str, object]:
        """The payload, or a :class:`repro.errors.ReproError` carrying
        the structured failure."""
        if self.error is not None:
            from repro.errors import ReproError

            raise ReproError(
                f"job {self.job.describe()} failed: "
                f"{self.error.get('kind', 'error')}: "
                f"{self.error.get('message', '')}"
            )
        assert self.payload is not None
        return self.payload
