"""Content-addressed on-disk result cache.

Each entry is one JSON file ``<root>/<key[:2]>/<key>.json`` holding the
job's payload plus enough metadata to detect corruption::

    {"version": 1, "key": ..., "task": ..., "salt": ..., "payload": ...}

Design points:

* **content addressing** — the key (see :func:`repro.exec.job.job_key`)
  digests the canonical spec text, partition, model, protocol, seed and
  a code-version salt, so a lookup can only ever return a result
  computed from identical inputs by identical code;
* **corruption tolerance** — a truncated, unparsable or mislabelled
  entry is deleted and reported as a miss (``stats.errors``), never
  served;
* **atomic writes** — entries are written to a temp file and renamed,
  so a crashed writer leaves no half-entry behind;
* **capacity floor** — when the entry count exceeds ``capacity`` the
  oldest entries (by mtime, name-tiebroken) are evicted *down to
  exactly* ``capacity``: eviction never drops the population below the
  configured floor;
* **pass-through degradation** — an unwritable cache directory
  (read-only filesystem, permissions, a file squatting on the path)
  turns ``put`` into a warned-once no-op instead of failing the
  campaign: reads still serve whatever is already there, writes are
  dropped and counted in ``stats.write_errors``.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["CacheStats", "ResultCache", "DEFAULT_CACHE_DIR", "default_cache_dir"]

#: Entry-file schema version.
_VERSION = 1

#: Default cache location (overridable via ``REPRO_CACHE_DIR``).
DEFAULT_CACHE_DIR = ".repro_cache"


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` or ``.repro_cache`` under the cwd."""
    return os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR


@dataclass
class CacheStats:
    """Cumulative counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    errors: int = 0
    evictions: int = 0
    puts: int = 0
    write_errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "errors": self.errors,
            "evictions": self.evictions,
            "puts": self.puts,
            "write_errors": self.write_errors,
        }

    def snapshot(self) -> "CacheStats":
        return CacheStats(**self.as_dict())


@dataclass
class ResultCache:
    """The on-disk store.  ``capacity`` bounds the number of entries
    (and is the floor eviction never undercuts); ``salt`` is stamped
    into entries for debuggability only — the key already encodes it."""

    root: str
    capacity: int = 4096
    stats: CacheStats = field(default_factory=CacheStats)
    #: set once ``put`` hits an unwritable directory; further puts no-op
    read_only: bool = field(default=False, compare=False)

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {self.capacity}")

    # -- paths ---------------------------------------------------------------

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def entries(self) -> List[str]:
        """Every stored key (unordered)."""
        if not os.path.isdir(self.root):
            return []
        found = []
        for dirpath, _, filenames in os.walk(self.root):
            for filename in filenames:
                if filename.endswith(".json"):
                    found.append(filename[:-5])
        return found

    def __len__(self) -> int:
        return len(self.entries())

    # -- lookup --------------------------------------------------------------

    def get(self, key: str, task: Optional[str] = None) -> Optional[Dict[str, object]]:
        """The payload stored under ``key``, or ``None``.

        A present-but-unusable entry (truncated file, JSON damage, a
        key or task label that does not match its address) is deleted
        and counted in ``stats.errors`` — a corrupt entry degrades to a
        recompute, never to a wrong result.
        """
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, UnicodeDecodeError):
            self._discard(path)
            self.stats.errors += 1
            self.stats.misses += 1
            return None
        if (
            not isinstance(data, dict)
            or data.get("version") != _VERSION
            or data.get("key") != key
            or (task is not None and data.get("task") != task)
            or "payload" not in data
        ):
            self._discard(path)
            self.stats.errors += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return data["payload"]

    # -- store ---------------------------------------------------------------

    def put(
        self,
        key: str,
        task: str,
        payload: Dict[str, object],
        salt: Optional[str] = None,
    ) -> None:
        """Store ``payload`` under ``key`` (atomic), then enforce the
        capacity bound.

        On an unwritable cache directory this *degrades to
        pass-through* instead of raising mid-campaign: the first
        failure warns once on stderr, marks the cache ``read_only``
        and every later ``put`` becomes a counted no-op.  Lookups keep
        working against whatever the directory already holds.
        """
        if self.read_only:
            self.stats.write_errors += 1
            return
        path = self._path(key)
        entry = {
            "version": _VERSION,
            "key": key,
            "task": task,
            "salt": salt,
            "payload": payload,
        }
        tmp = None
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)
            os.replace(tmp, path)
        except OSError as exc:
            if tmp is not None:
                self._discard(tmp)
            self.stats.write_errors += 1
            self.read_only = True
            print(
                f"repro: result cache at {self.root!r} is unwritable "
                f"({exc}); continuing without caching",
                file=sys.stderr,
            )
            return
        except BaseException:
            if tmp is not None:
                self._discard(tmp)
            raise
        self.stats.puts += 1
        self._enforce_capacity()

    # -- eviction ------------------------------------------------------------

    def _aged_entries(self) -> List[Tuple[int, str, str]]:
        """(mtime_ns, key, path) of every entry, oldest first."""
        aged = []
        for key in self.entries():
            path = self._path(key)
            try:
                mtime = os.stat(path).st_mtime_ns
            except OSError:
                continue
            aged.append((mtime, key, path))
        aged.sort()
        return aged

    def _enforce_capacity(self) -> None:
        aged = self._aged_entries()
        excess = len(aged) - self.capacity
        for mtime, key, path in aged[: max(excess, 0)]:
            self._discard(path)
            self.stats.evictions += 1

    def _discard(self, path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass

    def remove_temp_files(self) -> int:
        """Delete abandoned ``.tmp-*`` scratch files (left behind only
        by an interrupted writer); returns how many were removed.  The
        campaign CLIs call this from their SIGINT/SIGTERM cleanup."""
        removed = 0
        if not os.path.isdir(self.root):
            return removed
        for dirpath, _, filenames in os.walk(self.root):
            for filename in filenames:
                if filename.startswith(".tmp-"):
                    self._discard(os.path.join(dirpath, filename))
                    removed += 1
        return removed

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for key in self.entries():
            self._discard(self._path(key))
            removed += 1
        return removed
