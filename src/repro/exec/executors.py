"""Pluggable job executors: ``serial`` (reference) and ``process``.

An executor takes an ordered list of ``(task, params)`` pairs and
returns one *outcome* mapping per job, in the same order::

    {"payload": {...}, "seconds": 0.12}            # success
    {"error": {"kind": ..., "type": ..., "message": ...}, "seconds": ...}

Jobs never raise out of an executor — every failure mode is folded
into a structured error so campaign reports stay deterministic:

``error``
    The task raised; ``type``/``message`` carry the exception.
``timeout``
    The job exceeded the per-job wall-clock budget.  The worker that
    ran it is poisoned (it may still be computing), so the process
    pool is recycled before the remaining jobs continue.
``crash``
    A worker process died mid-job (killed, segfaulted, OOMed).  The
    process executor *degrades gracefully*: the in-flight and
    remaining jobs are recomputed serially in the parent process, so
    a flaky pool can slow a campaign down but never lose results.
``cancelled``
    A caller-supplied cancellation event was set before the job
    started; jobs already running finish normally.

Both executors accept per-call overrides — ``run(items, timeout=...,
cancel=...)`` — which is how the serving layer (:mod:`repro.serve`)
propagates one request's deadline into exactly that request's jobs
without touching the executor's configured default, and
:meth:`ProcessExecutor.terminate` tears down any live pool, which is
what the campaign CLIs call on SIGINT/SIGTERM.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["SerialExecutor", "ProcessExecutor", "resolve_executor"]

Outcome = Dict[str, object]
Item = Tuple[str, Dict[str, object]]


def _structured_error(kind: str, exc: Optional[BaseException], message: str = "") -> Dict[str, object]:
    return {
        "kind": kind,
        "type": type(exc).__name__ if exc is not None else kind,
        "message": message or (str(exc).splitlines()[0] if exc is not None and str(exc) else ""),
    }


def _execute_one(task: str, params: Dict[str, object]) -> Outcome:
    """Run one job to an outcome mapping (never raises)."""
    from repro.exec.campaigns import get_task

    started = time.perf_counter()
    try:
        fn = get_task(task)
        payload = fn(dict(params))
        if not isinstance(payload, dict):
            raise TypeError(
                f"task {task!r} returned {type(payload).__name__}, "
                "expected a JSON-serialisable dict"
            )
        return {"payload": payload, "seconds": time.perf_counter() - started}
    except BaseException as exc:  # noqa: BLE001 — folded into the report
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        return {
            "error": {
                **_structured_error("error", exc),
                "traceback": traceback.format_exc(limit=4),
            },
            "seconds": time.perf_counter() - started,
        }


def _run_shard(shard: List[Item]) -> List[Outcome]:
    """Worker entry point: run a shard of jobs sequentially."""
    return [_execute_one(task, params) for task, params in shard]


def _cancelled_outcome() -> Outcome:
    return {
        "error": _structured_error(
            "cancelled", None, "job cancelled before it started"
        ),
        "seconds": 0.0,
    }


class SerialExecutor:
    """The reference executor: everything in-process, in order.

    ``timeout`` is accepted for interface parity but cannot preempt a
    running job in-process; ``cancel`` (a :class:`threading.Event`)
    skips jobs that have not started yet.
    """

    name = "serial"

    def run(
        self,
        items: Sequence[Item],
        timeout: Optional[float] = None,
        cancel: Optional[threading.Event] = None,
    ) -> List[Outcome]:
        outcomes: List[Outcome] = []
        for task, params in items:
            if cancel is not None and cancel.is_set():
                outcomes.append(_cancelled_outcome())
            else:
                outcomes.append(_execute_one(task, params))
        return outcomes


class ProcessExecutor:
    """A multiprocessing pool with shards, timeouts and degradation.

    ``workers``
        Pool size (default: all schedulable CPUs, capped at 4 so the
        default matches the benchmark gate's configuration).
    ``timeout``
        Per-job wall-clock budget in seconds (``None``: unlimited).
        Shards multiply it by their length.
    ``shard_size``
        Jobs bundled per worker round-trip.  1 (the default) maximises
        load balance; larger shards amortise IPC for very short jobs.
    ``serial_fallback``
        On a worker crash, recompute the unfinished jobs serially in
        the parent instead of raising (default on).

    Instances are reusable; ``degraded``/``timeouts``/``restarts``
    accumulate over runs for the engine's metrics.
    """

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        timeout: Optional[float] = None,
        shard_size: int = 1,
        serial_fallback: bool = True,
        mp_context: Optional[str] = None,
    ):
        if workers is None:
            workers = min(4, _available_cpus())
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        self.workers = workers
        self.timeout = timeout
        self.shard_size = shard_size
        self.serial_fallback = serial_fallback
        self._mp_context = mp_context
        self.degraded = 0
        self.timeouts = 0
        self.retries = 0
        self.restarts = 0
        #: pools currently executing (terminate() reaps them)
        self._live_pools: set = set()
        self._pool_lock = threading.Lock()

    # -- pool plumbing -------------------------------------------------------

    def _context(self):
        if self._mp_context is not None:
            return multiprocessing.get_context(self._mp_context)
        try:
            # fork keeps worker start-up to milliseconds and inherits
            # the task registry (tests register ad-hoc tasks)
            return multiprocessing.get_context("fork")
        except ValueError:
            return multiprocessing.get_context()

    def _new_pool(self):
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(
            max_workers=self.workers, mp_context=self._context()
        )

    @staticmethod
    def _kill_pool(pool) -> None:
        """Tear a pool down *now*, stuck workers included."""
        # _processes is internal, but it is the only way to reap a
        # worker that is still executing an abandoned (timed-out) job;
        # shutdown() alone would block on it.
        try:
            for process in list(getattr(pool, "_processes", {}).values()):
                process.terminate()
        except Exception:
            pass
        pool.shutdown(wait=False, cancel_futures=True)

    def terminate(self) -> None:
        """Kill every live pool *now* (SIGINT/SIGTERM cleanup path).

        Safe to call from a signal handler's aftermath or another
        thread; a run interrupted this way raises out of ``run`` as
        usual, but no worker process is left behind."""
        with self._pool_lock:
            pools = list(self._live_pools)
        for pool in pools:
            self._kill_pool(pool)

    # -- execution -----------------------------------------------------------

    def run(
        self,
        items: Sequence[Item],
        timeout: Optional[float] = None,
        cancel: Optional[threading.Event] = None,
    ) -> List[Outcome]:
        effective = timeout if timeout is not None else self.timeout
        outcomes: Dict[int, Outcome] = {}
        shards = self._make_shards(items)
        pending: List[Tuple[List[int], List[Item]]] = list(shards)
        while pending:
            if cancel is not None and cancel.is_set():
                for indices, _ in pending:
                    for i in indices:
                        outcomes[i] = _cancelled_outcome()
                break
            pending = self._run_wave(pending, outcomes, effective, cancel)
        return [outcomes[i] for i in range(len(items))]

    def _make_shards(
        self, items: Sequence[Item]
    ) -> List[Tuple[List[int], List[Item]]]:
        shards = []
        for start in range(0, len(items), self.shard_size):
            indices = list(range(start, min(start + self.shard_size, len(items))))
            shards.append((indices, [items[i] for i in indices]))
        return shards

    def _run_wave(
        self,
        shards: List[Tuple[List[int], List[Item]]],
        outcomes: Dict[int, Outcome],
        timeout: Optional[float],
        cancel: Optional[threading.Event] = None,
    ) -> List[Tuple[List[int], List[Item]]]:
        """Submit every shard, collect in order; returns shards that
        must be resubmitted (after a timeout recycled the pool)."""
        from concurrent.futures import BrokenExecutor
        from concurrent.futures import TimeoutError as FutureTimeout

        pool = self._new_pool()
        with self._pool_lock:
            self._live_pools.add(pool)
        pool_dead = False
        try:
            futures = [
                (pool.submit(_run_shard, shard), indices, shard)
                for indices, shard in shards
            ]
            requeue: List[Tuple[List[int], List[Item]]] = []
            crashed: List[Tuple[List[int], List[Item]]] = []
            for future, indices, shard in futures:
                if pool_dead:
                    # pool already recycled: salvage finished shards, requeue the rest
                    if future.done() and not future.cancelled():
                        try:
                            self._absorb(future.result(0), indices, outcomes)
                            continue
                        except Exception:
                            pass
                    requeue.append((indices, shard))
                    continue
                budget = None if timeout is None else timeout * len(shard)
                try:
                    self._absorb(future.result(budget), indices, outcomes)
                except FutureTimeout:
                    self.timeouts += 1
                    for i in indices:
                        outcomes[i] = {
                            "error": _structured_error(
                                "timeout",
                                None,
                                f"job exceeded its {timeout}s budget",
                            ),
                            "seconds": budget or 0.0,
                        }
                    # the worker is still grinding on the abandoned job —
                    # recycle the pool so the rest get clean workers
                    self._kill_pool(pool)
                    self.restarts += 1
                    pool_dead = True
                except (BrokenExecutor, EnvironmentError) as exc:
                    crashed.append((indices, shard))
                    self._kill_pool(pool)
                    pool_dead = True
                    if not self.serial_fallback:
                        for i in indices:
                            outcomes[i] = {
                                "error": _structured_error("crash", exc),
                                "seconds": 0.0,
                            }
            if not pool_dead:
                pool.shutdown(wait=True)
        except BaseException:
            # interrupted (KeyboardInterrupt/SIGTERM): never leave
            # worker processes grinding behind the raise
            self._kill_pool(pool)
            raise
        finally:
            with self._pool_lock:
                self._live_pools.discard(pool)
        if crashed and self.serial_fallback:
            # graceful degradation: a worker died mid-job; recompute the
            # in-flight shard and everything still queued in-process
            self.degraded += 1
            for indices, shard in crashed + requeue:
                if cancel is not None and cancel.is_set():
                    for i in indices:
                        outcomes[i] = _cancelled_outcome()
                    continue
                self.retries += len(indices)
                self._absorb(_run_shard(shard), indices, outcomes)
            return []
        return requeue

    @staticmethod
    def _absorb(
        results: List[Outcome], indices: List[int], outcomes: Dict[int, Outcome]
    ) -> None:
        for i, outcome in zip(indices, results):
            outcomes[i] = outcome


def _available_cpus() -> int:
    try:
        import os

        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        import os

        return max(1, os.cpu_count() or 1)


def resolve_executor(name: str, **options):
    """``"serial"`` / ``"process"`` (or an executor instance) to an
    executor object; keyword options feed the constructor."""
    if hasattr(name, "run"):
        return name
    if name == "serial":
        return SerialExecutor()
    if name == "process":
        return ProcessExecutor(**options)
    raise ValueError(f"unknown executor {name!r}; choose serial or process")
