"""Registered campaign tasks — the work a grid job performs.

Every task is a plain function ``params_dict -> payload_dict`` living
behind a string name, so a job can be pickled to a worker process (the
name travels, the registry resolves it on the other side) and its
payload can be stored verbatim in the JSON result cache.  Parameters
and payloads are therefore restricted to JSON-serialisable values;
specifications travel as canonical printed text, partitions as plain
``object -> component`` mappings, allocations and kernel limits as the
small helper encodings below.

The four paper/campaign drivers (:mod:`repro.experiments`) build grids
over these tasks:

=================  ==========================================================
task               one job computes
=================  ==========================================================
``figure9-cell``   refine + execute one (design, model), returning the
                   kernel counters behind the Figure 9 activity table
``figure10-cell``  refine one (design, model): line counts, per-procedure
                   CPU seconds, optional equivalence verdict
``robustness-cell`` refine one (design, model), then classify every fault
                   scenario against it
``fuzz-case``      generate one seeded case and run every applicable oracle
``fuzz-corpus``    replay one persisted regression-corpus entry
``sweep-cell``     refine one (design, model, protocol), derive a seeded
                   stimulus, verify equivalence — ``repro sweep``'s unit
``batch-cell``     refine one (design, model, protocol) once and verify
                   *many* seeds as lanes of one batched co-simulation —
                   ``repro sweep --batch``'s unit; per-seed cells are
                   byte-identical to the ``sweep-cell`` payloads
``simulate-cell``  parse a spec and execute its functional model under a
                   given stimulus — the unit ``repro serve`` clients and
                   the ``repro loadgen`` harness submit; accepts a
                   ``stimuli`` list to batch several vectors in one job
``explore-cell``   evaluate one design point of the ``repro explore``
                   campaign: refine (partition, model, protocol) under an
                   allocation, execute the refined design with kernel
                   counters (the Figure 9 counted-transfer metric), and
                   price it through the estimation chain — returning the
                   (traffic, size, cost) objective vector
``explore-batch``  evaluate several design points sharing one candidate
                   partition as a single job: profile the original once,
                   then refine and price every (model, protocol) against
                   that shared profile — per-point payloads are
                   byte-identical to ``explore-cell``'s
=================  ==========================================================

Payloads that carry simulation results also carry a ``kernel`` tag
naming the variant that produced them (``walker`` / ``compiled`` /
``batched``), so cached results from different kernels stay auditable.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

__all__ = [
    "register",
    "get_task",
    "task_names",
    "allocation_to_params",
    "allocation_from_params",
    "limits_to_params",
    "limits_from_params",
    "scenario_to_params",
    "scenario_from_params",
    "sweep_inputs",
]

_TASKS: Dict[str, Callable[[Dict[str, object]], Dict[str, object]]] = {}


def register(name: str):
    """Decorator: expose a task function to the engine under ``name``."""

    def wrap(fn):
        _TASKS[name] = fn
        return fn

    return wrap


def get_task(name: str):
    """The registered task, or a ``KeyError`` naming the known ones."""
    try:
        return _TASKS[name]
    except KeyError:
        raise KeyError(
            f"unknown task {name!r}; registered: {sorted(_TASKS)}"
        ) from None


def task_names() -> List[str]:
    return sorted(_TASKS)


# -- parameter encodings -----------------------------------------------------

_SPEC_MEMO: Dict[int, object] = {}


def _spec_from_text(text: str):
    """Parse + validate ``text``, memoised per worker process (grids
    repeat the same specification across every job)."""
    key = hash(text)
    spec = _SPEC_MEMO.get(key)
    if spec is None:
        from repro.lang.parser import parse

        spec = parse(text)
        spec.validate()
        _SPEC_MEMO.clear()  # grids share one spec; keep the memo tiny
        _SPEC_MEMO[key] = spec
    return spec


def _spec_from_params(params: Dict[str, object]):
    """The specification a job's params designate.

    ``params["spec"]`` (canonical text) wins when present; otherwise
    ``params["workload"]`` resolves through the default workload
    registry — the form ``repro serve`` clients use to submit jobs
    against a bundled application without shipping spec text.  The
    campaign drivers send both: the text pins the exact spec, the
    workload id lands in the cache key.
    """
    text = params.get("spec")
    if text is not None:
        return _spec_from_text(text)
    workload = params.get("workload")
    if workload is not None:
        from repro.apps.workloads import resolve_workload

        return resolve_workload(workload).spec()
    raise KeyError("job params carry neither 'spec' nor 'workload'")


def _partition_from_params(spec, assignment, name: str):
    """``assignment`` is the order-preserving pair list produced by
    :func:`repro.exec.job.canonical_partition` (a plain mapping is
    accepted too) — order matters, it steers refinement topology."""
    from repro.partition.partition import Partition

    if not isinstance(assignment, dict):
        assignment = {key: value for key, value in assignment}
    return Partition.from_mapping(spec, assignment, name=name)


def _partition_for(spec, params: Dict[str, object]):
    """The partition a job's params designate: an explicit
    ``partition`` assignment, or — for workload-form submissions —
    the named design of the workload's registry entry."""
    assignment = params.get("partition")
    if assignment is None and params.get("workload") is not None:
        from repro.apps.workloads import resolve_workload

        workload = resolve_workload(params["workload"])
        designs = workload.designs(spec)
        design = params.get("design") or workload.default_design
        try:
            return designs[design]
        except KeyError:
            raise KeyError(
                f"workload {workload.id!r} has no design {design!r}; "
                f"choose from {sorted(designs)}"
            ) from None
    return _partition_from_params(spec, assignment, params["design"])


def allocation_to_params(allocation) -> Optional[List[Dict[str, object]]]:
    """An :class:`repro.arch.allocation.Allocation` as JSON data
    (``None`` stays ``None`` — tasks then use the paper default)."""
    if allocation is None:
        return None
    return [
        {
            "name": component.name,
            "kind": component.kind.value,
            "clock_hz": component.clock_hz,
            "attrs": dict(component.attrs),
        }
        for component in allocation.components.values()
    ]


def allocation_from_params(data) :
    if data is None:
        from repro.experiments.figure9 import default_allocation

        return default_allocation()
    from repro.arch.allocation import Allocation
    from repro.arch.components import Component, ComponentKind

    return Allocation(
        [
            Component(
                item["name"],
                ComponentKind(item["kind"]),
                item["clock_hz"],
                dict(item.get("attrs") or {}),
            )
            for item in data
        ],
        name="allocation",
    )


def limits_to_params(limits) -> Optional[Dict[str, object]]:
    if limits is None:
        return None
    return {
        "max_steps": limits.max_steps,
        "max_delta": limits.max_delta,
        "wall_clock": limits.wall_clock,
    }


def limits_from_params(data):
    if data is None:
        return None
    from repro.sim.kernel import KernelLimits

    return KernelLimits(**data)


def scenario_to_params(scenario) -> Dict[str, object]:
    from dataclasses import asdict

    return asdict(scenario)


def scenario_from_params(data: Dict[str, object]):
    from repro.sim.faults import FaultScenario

    return FaultScenario(**data)


# -- figure 9 ----------------------------------------------------------------


@register("figure9-cell")
def figure9_cell(params: Dict[str, object]) -> Dict[str, object]:
    """Refine one (design, model) and execute it with kernel counters
    attached — the measured half of a Figure 9 cell."""
    from repro.models import resolve_model
    from repro.refine.refiner import Refiner
    from repro.sim.interpreter import Simulator
    from repro.sim.metrics import SimMetrics

    spec = _spec_from_params(params)
    partition = _partition_for(spec, params)
    model = resolve_model(params["model"])
    refined = Refiner(spec, partition, model).run()
    metrics = SimMetrics()
    Simulator(refined.spec).run(
        inputs=dict(params["inputs"]), metrics=metrics
    )
    return {"metrics": metrics.as_dict()}


# -- figure 10 ---------------------------------------------------------------


@register("figure10-cell")
def figure10_cell(params: Dict[str, object]) -> Dict[str, object]:
    """Refine one (design, model); measure size, per-procedure CPU time
    and (optionally) functional equivalence."""
    from repro.models import resolve_model
    from repro.refine.refiner import Refiner

    spec = _spec_from_params(params)
    partition = _partition_for(spec, params)
    allocation = allocation_from_params(params.get("allocation"))
    model = resolve_model(params["model"])
    refined = Refiner(spec, partition, model, allocation=allocation).run()
    sizes = refined.line_counts()
    equivalent: Optional[bool] = None
    if params.get("check_equivalence"):
        from repro.sim.equivalence import check_equivalence

        equivalent = check_equivalence(
            refined, inputs=dict(params["inputs"])
        ).equivalent
    return {
        "refined_lines": sizes["refined"],
        "refinement_seconds": refined.refinement_seconds,
        "procedure_seconds": dict(refined.procedure_seconds),
        "equivalent": equivalent,
    }


# -- robustness --------------------------------------------------------------


@register("robustness-cell")
def robustness_cell(params: Dict[str, object]) -> Dict[str, object]:
    """Refine one (design, model) under the campaign protocol and
    classify every fault scenario against it."""
    from repro.experiments.robustness import _classify
    from repro.models import resolve_model
    from repro.refine.refiner import Refiner

    spec = _spec_from_params(params)
    partition = _partition_for(spec, params)
    allocation = allocation_from_params(params.get("allocation"))
    limits = limits_from_params(params.get("limits"))
    refined = Refiner(
        spec,
        partition,
        resolve_model(params["model"]),
        allocation=allocation,
        protocol=params["protocol"],
    ).run()
    cells = []
    for data in params["scenarios"]:
        scenario = scenario_from_params(data)
        cell = _classify(
            refined, dict(params["inputs"]), scenario, params["seed"], limits
        )
        cells.append(
            {
                "scenario": scenario.name,
                "outcome": cell.outcome,
                "fired": cell.fired,
                "detail": cell.detail,
            }
        )
    return {"cells": cells}


# -- fuzzing -----------------------------------------------------------------


def _failures_to_params(failures) -> List[Dict[str, object]]:
    return [
        {
            "oracle": f.oracle,
            "detail": f.detail,
            "spec_text": f.spec_text,
            "inputs": f.inputs,
            "model": f.model,
        }
        for f in failures
    ]


@register("fuzz-case")
def fuzz_case(params: Dict[str, object]) -> Dict[str, object]:
    """Generate one seeded case and run every applicable oracle."""
    from repro.experiments.fuzzing import _slice_config
    from repro.fuzz.generator import generate_case, generate_input_vectors
    from repro.fuzz.oracle import run_all_oracles
    from repro.models import resolve_model

    config = _slice_config(params["slice"], params.get("budget"))
    case_seed = params["case_seed"]
    case = generate_case(case_seed, config)
    inputs = generate_input_vectors(case.spec, case_seed, params["vectors"])
    models = [resolve_model(m) for m in params["models"]]
    result = run_all_oracles(
        case,
        inputs,
        models,
        params["max_steps"],
        batch_lanes=params.get("batch_lanes"),
    )
    return {
        "checks": result.checks,
        "failures": _failures_to_params(result.failures),
    }


@register("fuzz-corpus")
def fuzz_corpus(params: Dict[str, object]) -> Dict[str, object]:
    """Replay one persisted regression-corpus entry."""
    from repro.experiments.fuzzing import replay_corpus_entry
    from repro.fuzz.shrink import CorpusEntry
    from repro.models import resolve_model

    entry = CorpusEntry(
        name=params["name"],
        bug=params["bug"],
        spec_text=params["spec_text"],
        partition=params.get("partition"),
        input_vectors=list(params.get("input_vectors") or []),
    )
    models = [resolve_model(m) for m in params["models"]]
    failures = replay_corpus_entry(entry, models, params["max_steps"])
    return {"failures": _failures_to_params(failures)}


# -- simulate ----------------------------------------------------------------


@register("simulate-cell")
def simulate_cell(params: Dict[str, object]) -> Dict[str, object]:
    """Parse + validate a specification and execute its functional
    model under the given stimulus.  The smallest servable unit: the
    serving layer and the load-generation harness submit these.

    Two forms:

    * ``inputs`` (one stimulus) — a single compiled single-lane run;
    * ``stimuli`` (a list of stimulus dicts) — every vector advances
      as one lane of a :class:`repro.sim.batch.BatchSimulator`; the
      payload carries one entry per lane, byte-identical to what the
      single-stimulus form reports for the same vector.
    """
    from repro.sim.interpreter import Simulator

    spec = _spec_from_params(params)
    limits = limits_from_params(params.get("limits"))
    stimuli = params.get("stimuli")
    if stimuli is not None:
        from repro.sim.batch import BatchSimulator

        batch = BatchSimulator(spec).run_batch(
            [dict(stimulus or {}) for stimulus in stimuli], limits=limits
        )
        batch.raise_first_error()
        return {
            "kernel": "batched",
            "lanes": [
                {
                    "completed": lane.result.completed,
                    "steps": lane.result.steps,
                    "outputs": lane.result.output_values(),
                }
                for lane in batch
            ],
        }
    result = Simulator(spec).run(
        inputs=dict(params.get("inputs") or {}), limits=limits
    )
    return {
        "kernel": "compiled",
        "completed": result.completed,
        "steps": result.steps,
        "outputs": result.output_values(),
    }


# -- sweep -------------------------------------------------------------------


#: Input ports matching these globs keep their baseline value across
#: sweep seeds — they bound iteration (``num_cycles``-style), and a
#: random bound would change the workload size, not just the stimulus.
PINNED_INPUT_PATTERNS = ("*cycles*", "*count*", "*calls*")


def sweep_inputs(
    spec, seed: int, base: Optional[Dict[str, int]] = None
) -> Dict[str, int]:
    """The deterministic stimulus of sweep seed ``seed``.

    Seed 0 is the baseline vector (``base``, e.g. the bundled medical
    stimulus).  Other seeds re-roll every *data* input port from a
    seeded RNG; ports matching :data:`PINNED_INPUT_PATTERNS` keep their
    baseline so runtime stays bounded.
    """
    import random
    from fnmatch import fnmatchcase

    base = dict(base or {})
    if seed == 0:
        return base
    rng = random.Random(seed * 0x5EEDC0DE + 11)
    out: Dict[str, int] = {}
    for port in spec.inputs():
        name = port.name
        if any(fnmatchcase(name, pat) for pat in PINNED_INPUT_PATTERNS):
            out[name] = base.get(name, 1)
        else:
            out[name] = rng.randint(0, 99)
    return out


@register("sweep-cell")
def sweep_cell(params: Dict[str, object]) -> Dict[str, object]:
    """One ``repro sweep`` cell: refine (design, model, protocol),
    derive the seeded stimulus, co-simulate original vs refined."""
    from repro.models import resolve_model
    from repro.refine.refiner import Refiner
    from repro.sim.equivalence import check_equivalence

    spec = _spec_from_params(params)
    partition = _partition_for(spec, params)
    refined = Refiner(
        spec,
        partition,
        resolve_model(params["model"]),
        protocol=params["protocol"],
    ).run()
    inputs = sweep_inputs(spec, params["seed"], params.get("inputs"))
    limits = limits_from_params(params.get("limits"))
    report = check_equivalence(refined, inputs=inputs, limits=limits)
    return {
        "refined_lines": refined.line_counts()["refined"],
        "equivalent": report.equivalent,
        "inputs": inputs,
        "steps": report.refined_run.steps,
        "kernel": "compiled",
    }


@register("batch-cell")
def batch_cell(params: Dict[str, object]) -> Dict[str, object]:
    """Many ``repro sweep`` seeds of one (design, model, protocol)
    cell-family as a single batched job: refine *once*, then verify
    every seed as one lane of a batched original-vs-refined
    co-simulation.

    The payload's ``cells`` list carries, per seed and in seed order,
    exactly the fields a ``sweep-cell`` job reports for that seed
    (plus ``seed`` and the ``batched`` kernel tag).  A lane that
    faults carries an ``error`` entry instead — its text replayed
    through the single-lane kernel, so it reads byte-identically to
    the serial job's failure.
    """
    from repro.models import resolve_model
    from repro.refine.refiner import Refiner
    from repro.sim.batch import BatchSimulator
    from repro.sim.equivalence import compare_runs

    spec = _spec_from_params(params)
    partition = _partition_for(spec, params)
    refined = Refiner(
        spec,
        partition,
        resolve_model(params["model"]),
        protocol=params["protocol"],
    ).run()
    limits = limits_from_params(params.get("limits"))
    seeds = list(params["seeds"])
    vectors = [
        sweep_inputs(spec, seed, params.get("inputs")) for seed in seeds
    ]
    original_batch = BatchSimulator(refined.original).run_batch(
        vectors, limits=limits
    )
    refined_batch = BatchSimulator(refined.spec).run_batch(
        vectors, limits=limits
    )
    refined_lines = refined.line_counts()["refined"]
    cells: List[Dict[str, object]] = []
    for seed, inputs, original, lane in zip(
        seeds, vectors, original_batch, refined_batch
    ):
        faulted = original if not original.ok else lane
        if not faulted.ok:
            cells.append({"seed": seed, "error": faulted.error_text})
            continue
        report = compare_runs(refined, inputs, original.result, lane.result)
        cells.append(
            {
                "seed": seed,
                "refined_lines": refined_lines,
                "equivalent": report.equivalent,
                "inputs": inputs,
                "steps": report.refined_run.steps,
                "kernel": "batched",
            }
        )
    return {"cells": cells}


# -- explore -----------------------------------------------------------------


@register("explore-cell")
def explore_cell(params: Dict[str, object]) -> Dict[str, object]:
    """Evaluate one ``repro explore`` design point.

    Refines (partition, model, protocol) under the given allocation,
    executes the refined design with kernel counters attached (bus
    transactions are the Figure 9 counted-transfer metric) and prices
    the point through :func:`repro.estimate.estimate_design_point`.
    The payload is the candidate's objective vector — bus ``traffic``,
    ``refined_lines`` and estimated ``cost`` — plus the itemised cost
    terms for the report.
    """
    from repro.estimate import estimate_design_point
    from repro.graph.access_graph import AccessGraph
    from repro.models import resolve_model
    from repro.refine.refiner import Refiner
    from repro.sim.interpreter import Simulator
    from repro.sim.metrics import SimMetrics

    spec = _spec_from_params(params)
    partition = _partition_for(spec, params)
    allocation = allocation_from_params(params.get("allocation"))
    model = resolve_model(params["model"])
    graph = AccessGraph.from_specification(spec)
    refined = Refiner(
        spec,
        partition,
        model,
        allocation=allocation,
        protocol=params["protocol"],
    ).run()
    metrics = SimMetrics()
    run = Simulator(refined.spec).run(
        inputs=dict(params["inputs"]),
        limits=limits_from_params(params.get("limits")),
        metrics=metrics,
    )
    cost = estimate_design_point(
        spec,
        partition,
        model,
        allocation=allocation,
        inputs=dict(params["inputs"]),
        graph=graph,
    )
    return {
        "traffic": metrics.bus_transactions,
        "refined_lines": refined.line_counts()["refined"],
        "cost": round(cost.total, 1),
        "cost_detail": cost.as_dict(),
        "steps": run.steps,
        "kernel": "compiled",
    }


@register("explore-batch")
def explore_batch(params: Dict[str, object]) -> Dict[str, object]:
    """Several ``repro explore`` design points sharing one candidate
    partition, as a single job.

    The profiling simulation of the original specification depends
    only on (partition, allocation, inputs), so it runs *once*; every
    (model, protocol) point in ``params["points"]`` then refines,
    executes and prices against that shared profile.  Profiling is
    deterministic, so each entry of the payload's ``points`` list is
    byte-identical to what an ``explore-cell`` job reports for the
    same design point.
    """
    from repro.estimate.cost import design_cost
    from repro.estimate.profile import profile_specification
    from repro.estimate.rates import bus_transfer_rates
    from repro.graph.access_graph import AccessGraph
    from repro.models import resolve_model
    from repro.refine.refiner import Refiner
    from repro.sim.interpreter import Simulator
    from repro.sim.metrics import SimMetrics

    spec = _spec_from_params(params)
    partition = _partition_for(spec, params)
    allocation = allocation_from_params(params.get("allocation"))
    graph = AccessGraph.from_specification(spec)
    limits = limits_from_params(params.get("limits"))
    inputs = dict(params["inputs"])
    profile = profile_specification(
        spec, partition, allocation, inputs=inputs, graph=graph
    )
    points: List[Dict[str, object]] = []
    for point in params["points"]:
        model = resolve_model(point["model"])
        refined = Refiner(
            spec,
            partition,
            model,
            allocation=allocation,
            protocol=point["protocol"],
        ).run()
        metrics = SimMetrics()
        run = Simulator(refined.spec).run(
            inputs=inputs, limits=limits, metrics=metrics
        )
        plan = model.build_plan(spec, partition, graph=graph)
        cost = design_cost(
            plan, rates=bus_transfer_rates(plan, graph, profile)
        )
        points.append(
            {
                "traffic": metrics.bus_transactions,
                "refined_lines": refined.line_counts()["refined"],
                "cost": round(cost.total, 1),
                "cost_detail": cost.as_dict(),
                "steps": run.steps,
                "kernel": "compiled",
            }
        )
    return {"points": points}
