"""Chaos tasks: deliberately hostile jobs for torturing the daemon.

These are the fault injectors behind ``tests/test_serve_chaos.py`` and
the CI ``serve-smoke`` job.  They are **not** registered by default —
a production-ish daemon must not offer a "please SIGKILL your worker"
endpoint — only when the server is started with ``--chaos`` (or a test
calls :func:`register_chaos_tasks` directly).

``chaos-sleep``
    Sleep ``seconds`` then return; occupies a worker slot for a known
    duration (queue-overflow and deadline tests).
``chaos-crash``
    SIGKILL the executing worker process mid-job.  Through a
    :class:`repro.exec.executors.ProcessExecutor` this surfaces as a
    structured ``crash`` outcome; through ``SerialExecutor`` it would
    kill the server itself, which is exactly why the daemon keeps
    serial fallback off.
``chaos-spin``
    Busy-loop forever (ignoring everything); only a per-job timeout
    stops it (deadline-preemption tests).
``chaos-flaky``
    Crash like ``chaos-crash`` while ``os.path.exists(trip_file)``,
    succeed afterwards — lets tests walk a circuit through
    open → half-open → closed.

Every task takes a ``nonce`` parameter it never reads: it exists so
tests can mint fresh content-addressed job keys at will (and defeat
the result cache / circuit breaker when they want a cold run).
"""

from __future__ import annotations

import os
import signal
import time
from typing import Dict

from repro.exec.campaigns import register, task_names

__all__ = ["CHAOS_TASKS", "register_chaos_tasks"]

CHAOS_TASKS = ["chaos-crash", "chaos-flaky", "chaos-sleep", "chaos-spin"]


def _chaos_sleep(params: Dict[str, object]) -> Dict[str, object]:
    seconds = float(params.get("seconds", 0.1))
    time.sleep(seconds)
    return {"slept": seconds, "nonce": params.get("nonce")}


def _chaos_crash(params: Dict[str, object]) -> Dict[str, object]:
    os.kill(os.getpid(), signal.SIGKILL)
    raise AssertionError("unreachable: SIGKILL did not take")  # pragma: no cover


def _chaos_spin(params: Dict[str, object]) -> Dict[str, object]:
    while True:  # pragma: no cover — only ever exits via SIGKILL
        pass


def _chaos_flaky(params: Dict[str, object]) -> Dict[str, object]:
    trip_file = str(params.get("trip_file", ""))
    if trip_file and os.path.exists(trip_file):
        os.kill(os.getpid(), signal.SIGKILL)
    return {"recovered": True, "nonce": params.get("nonce")}


def register_chaos_tasks() -> None:
    """Idempotently add the chaos tasks to the campaign registry."""
    existing = set(task_names())
    for name, fn in (
        ("chaos-sleep", _chaos_sleep),
        ("chaos-crash", _chaos_crash),
        ("chaos-spin", _chaos_spin),
        ("chaos-flaky", _chaos_flaky),
    ):
        if name not in existing:
            register(name)(fn)
