"""A small, retrying client for the ``repro serve`` daemon.

Built on :mod:`http.client` (stdlib only).  The headline behaviour is
*polite* retry: transient outcomes — 429 queue-full, 503
draining/circuit-open, refused/dropped connections — are retried with
jittered exponential backoff, honouring the server's ``Retry-After``
hint (preferring the fractional ``X-Repro-Retry-After`` header when
present, since HTTP's ``Retry-After`` is whole seconds).  Final
outcomes — 200, 400, 404, 500, 504 — are returned to the caller
immediately; retrying a deterministic failure would only add load.

All randomness flows from an injectable seeded ``random.Random`` so a
fleet of clients (see :mod:`repro.serve.loadgen`) behaves reproducibly.

Every logical request carries a correlation ID: the client mints one
(:func:`repro.obs.events.new_request_id`) unless the caller supplies
its own, sends it as ``X-Repro-Request-Id`` on every attempt (retries
share the ID — they are one logical request), and exposes the server's
echo as :attr:`Response.request_id`.  An optional
:class:`repro.obs.events.EventJournal` receives ``client-send`` /
``client-final`` records per logical request, which is what lets a
loadgen request be traced from the client log through the server
journal into engine job events and spans by one ID.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from typing import Dict, List, Optional, Tuple

from repro.obs.events import NULL_JOURNAL, new_request_id

__all__ = ["ClientError", "ReproClient", "Response"]

#: HTTP statuses worth retrying (the server said "later", not "no").
RETRYABLE_STATUS = frozenset({429, 503})


class ClientError(Exception):
    """Raised when retries are exhausted without reaching a final
    outcome (the server stayed unreachable or kept shedding load)."""


class Response:
    """One final HTTP exchange, parsed."""

    __slots__ = ("status", "headers", "body", "attempts", "seconds")

    def __init__(
        self,
        status: int,
        headers: Dict[str, str],
        body: Dict[str, object],
        attempts: int,
        seconds: float,
    ):
        self.status = status
        self.headers = headers
        self.body = body
        #: total HTTP exchanges it took to get this final outcome
        self.attempts = attempts
        #: wall-clock seconds from first attempt to final outcome
        self.seconds = seconds

    @property
    def ok(self) -> bool:
        return self.status == 200

    @property
    def cached(self) -> bool:
        return self.headers.get("x-repro-cached") == "true"

    @property
    def request_id(self) -> str:
        """The correlation ID the server echoed (``""`` if none)."""
        return self.headers.get("x-repro-request-id", "")

    def error_kind(self) -> Optional[str]:
        """The structured error kind, or ``None`` on success."""
        error = self.body.get("error")
        if isinstance(error, dict):
            return str(error.get("kind"))
        return None if self.status == 200 else f"http-{self.status}"

    def __repr__(self) -> str:
        return (
            f"<Response {self.status} kind={self.error_kind()!r} "
            f"attempts={self.attempts}>"
        )


class ReproClient:
    """Talks to one daemon.  Not thread-safe; give each client thread
    its own instance (and its own seeded ``rng``)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8736,
        retries: int = 5,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        timeout: float = 60.0,
        rng: Optional[random.Random] = None,
        clock=time.monotonic,
        sleep=time.sleep,
        journal=None,
    ):
        self.host = host
        self.port = port
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.timeout = timeout
        self.rng = rng or random.Random(0)
        self._clock = clock
        self._sleep = sleep
        #: an :class:`repro.obs.events.EventJournal` receiving
        #: ``client-send``/``client-final`` records (default: no-op)
        self.journal = journal if journal is not None else NULL_JOURNAL

    # -- transport -----------------------------------------------------------

    def _exchange(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        request_id: str = "",
    ) -> Tuple[int, Dict[str, str], Dict[str, object]]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            if request_id:
                headers["X-Repro-Request-Id"] = request_id
            connection.request(method, path, body=body, headers=headers)
            raw = connection.getresponse()
            data = raw.read()
            header_map = {k.lower(): v for k, v in raw.getheaders()}
            try:
                parsed = json.loads(data) if data else {}
            except ValueError:
                parsed = {"raw": data.decode(errors="replace")}
            if not isinstance(parsed, dict):
                parsed = {"value": parsed}
            return raw.status, header_map, parsed
        finally:
            connection.close()

    def _backoff(
        self, attempt: int, headers: Optional[Dict[str, str]]
    ) -> float:
        """Seconds to wait before attempt ``attempt + 1``."""
        hinted = None
        if headers is not None:
            fractional = headers.get("x-repro-retry-after")
            coarse = headers.get("retry-after")
            try:
                hinted = float(fractional if fractional is not None else coarse)
            except (TypeError, ValueError):
                hinted = None
        computed = min(self.backoff_base * (2**attempt), self.backoff_cap)
        base = hinted if hinted is not None else computed
        # full jitter on the computed part keeps a retrying fleet from
        # stampeding the queue in lockstep
        return min(base + self.rng.uniform(0, computed), self.backoff_cap * 2)

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]] = None,
        request_id: Optional[str] = None,
    ) -> Response:
        """One logical request: retries transient outcomes, returns the
        first final one.  Raises :class:`ClientError` if every attempt
        was transient.  ``request_id`` (minted when not given) is sent
        as ``X-Repro-Request-Id`` on every attempt — retries share it,
        because they are the same logical request."""
        body = (
            json.dumps(payload, sort_keys=True).encode()
            if payload is not None
            else None
        )
        rid = request_id or new_request_id()
        started = self._clock()
        last: Optional[Tuple[int, Dict[str, str], Dict[str, object]]] = None
        failure = "no attempts made"
        for attempt in range(self.retries + 1):
            self.journal.emit(
                "client-send", request_id=rid, method=method, path=path,
                attempt=attempt + 1,
            )
            try:
                status, headers, parsed = self._exchange(
                    method, path, body, request_id=rid
                )
            except (ConnectionError, socket.timeout, http.client.HTTPException, OSError) as exc:
                failure = f"{type(exc).__name__}: {exc}"
                last = None
                if attempt < self.retries:
                    self._sleep(self._backoff(attempt, None))
                continue
            if status not in RETRYABLE_STATUS:
                self.journal.emit(
                    "client-final", request_id=rid, method=method,
                    path=path, status=status, attempts=attempt + 1,
                )
                return Response(
                    status, headers, parsed, attempt + 1, self._clock() - started
                )
            failure = f"http {status} ({parsed.get('error')})"
            last = (status, headers, parsed)
            if attempt < self.retries:
                self._sleep(self._backoff(attempt, headers))
        if last is not None:
            # exhausted retries against a live but shedding server:
            # surface the last transient response as the outcome
            status, headers, parsed = last
            self.journal.emit(
                "client-final", request_id=rid, method=method, path=path,
                status=status, attempts=self.retries + 1,
            )
            return Response(
                status, headers, parsed, self.retries + 1, self._clock() - started
            )
        self.journal.emit(
            "client-unreachable", request_id=rid, method=method, path=path,
            attempts=self.retries + 1,
        )
        raise ClientError(
            f"{method} {path} failed after {self.retries + 1} attempts: {failure}"
        )

    # -- convenience ---------------------------------------------------------

    def submit(
        self,
        task: str,
        params: Dict[str, object],
        deadline: Optional[float] = None,
        request_id: Optional[str] = None,
    ) -> Response:
        payload: Dict[str, object] = {"task": task, "params": params}
        if deadline is not None:
            payload["deadline"] = deadline
        return self.request("POST", "/v1/jobs", payload, request_id=request_id)

    def lookup(self, key: str) -> Response:
        return self.request("GET", f"/v1/jobs/{key}")

    def stats(self) -> Dict[str, object]:
        return self.request("GET", "/v1/stats").body

    def metrics_text(self) -> str:
        """The raw Prometheus exposition from ``GET /metrics``
        (``""`` when the daemon runs with telemetry off)."""
        response = self.request("GET", "/metrics")
        raw = response.body.get("raw")
        return raw if isinstance(raw, str) else ""

    def tasks(self) -> List[str]:
        names = self.request("GET", "/v1/tasks").body.get("tasks", [])
        return list(names) if isinstance(names, list) else []

    def healthy(self) -> bool:
        try:
            return self._exchange("GET", "/healthz", None)[0] == 200
        except OSError:
            return False

    def ready(self) -> bool:
        try:
            return self._exchange("GET", "/readyz", None)[0] == 200
        except OSError:
            return False

    def drain(self) -> Response:
        return self.request("POST", "/v1/drain", {})

    def wait_ready(self, timeout: float = 10.0, interval: float = 0.05) -> bool:
        """Poll ``/readyz`` until it answers 200 (or time runs out)."""
        ends = self._clock() + timeout
        while self._clock() < ends:
            if self.ready():
                return True
            self._sleep(interval)
        return False
