"""The ``repro serve`` daemon: refinement-as-a-service over HTTP/JSON.

Built entirely on the stdlib (:mod:`http.server`) and the existing
campaign machinery: every request is a content-addressed
:class:`repro.exec.job.Job` executed through an
:class:`repro.exec.engine.ExecutionEngine`, so identical submissions
from different clients are answered from the shared on-disk
:class:`repro.exec.cache.ResultCache` in microseconds, and a successful
response ``payload`` is byte-identical to the same job run through the
campaign CLIs.

Robustness is the headline:

* **worker isolation** — each of the ``workers`` slots owns a
  single-worker :class:`repro.exec.executors.ProcessExecutor` with
  serial fallback *off*: a job that SIGKILLs its worker produces a
  structured 500 on that request only and is never re-run in the
  server process;
* **deadlines** — a request's ``deadline`` (seconds) is decremented
  through queueing and propagated into the per-job execution timeout;
  exhaustion anywhere yields a structured 504;
* **backpressure** — a bounded admission queue; overflow is an
  immediate 429 with ``Retry-After`` computed from the observed
  (EWMA) service time and current occupancy, never a hang;
* **circuit breaker** — specs that repeatedly crash workers are
  quarantined with a structured 503 (see
  :class:`repro.serve.breaker.CircuitBreaker`) instead of thrashing
  the pool;
* **graceful drain** — SIGTERM/SIGINT stop admission (503
  ``draining``, readiness flips), let in-flight requests finish,
  flush cache scratch files, and exit 0.

Telemetry is unified (see ``docs/OBSERVABILITY.md``): every request
carries a correlation ID — the client's ``X-Repro-Request-Id`` header
when present, a generated one otherwise — which is echoed on the
response, stamped on every journal record the request produces
(admission, queueing, dispatch, completion, rejection), bound via
:func:`repro.obs.events.bind_request_id` around engine execution so
per-job events and spans inherit it, and fed into per-request latency
histograms in the process-wide
:class:`repro.obs.metrics.MetricsRegistry`.  A flight recorder keeps
the most recent journal records in a bounded ring and dumps them to
``flight_dir`` whenever a request ends in a worker crash, deadline
preemption or circuit-open rejection, so every 5xx is diagnosable
after the fact.

Endpoints (see ``docs/SERVICE.md`` for the full contract)::

    GET  /healthz        liveness (200 while the process runs)
    GET  /readyz         readiness (503 while starting or draining)
    GET  /metrics        Prometheus text-format telemetry snapshot
    GET  /v1/stats       serve/exec/cache/breaker/telemetry counters
    GET  /v1/tasks       registered task names
    GET  /v1/trace       merged Chrome trace of recent jobs (--trace)
    GET  /v1/jobs/<key>  cached result lookup by job key
    POST /v1/jobs        submit {"task","params"[,"deadline"]}
    POST /v1/drain       begin graceful drain (as SIGTERM does)
"""

from __future__ import annotations

import json
import math
import queue
import re
import sys
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro.exec import (
    ExecutionEngine,
    Job,
    ProcessExecutor,
    ResultCache,
    SerialExecutor,
    code_version_salt,
    default_cache_dir,
    get_task,
    task_names,
)
from repro.obs.events import (
    EventJournal,
    FlightRecorder,
    NULL_JOURNAL,
    bind_request_id,
    new_request_id,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
)
from repro.obs.stats import Ewma
from repro.obs.trace import SpanTracer
from repro.serve.breaker import CircuitBreaker

__all__ = [
    "ERROR_STATUS",
    "ReproServer",
    "ServeConfig",
    "ServeMetrics",
    "run_server",
]

#: Error-taxonomy kind -> HTTP status.  Every non-200 body is
#: ``{"error": {"kind": <one of these>, "message": ...}}``.
ERROR_STATUS: Dict[str, int] = {
    "bad-request": 400,
    "unknown-task": 400,
    "not-found": 404,
    "method-not-allowed": 405,
    "queue-full": 429,
    "error": 500,
    "crash": 500,
    "internal": 500,
    "circuit-open": 503,
    "draining": 503,
    "cancelled": 503,
    "deadline": 504,
}

#: Outcome kinds that trigger a flight-recorder dump: each represents
#: a request the server could not serve normally and a human will want
#: to reconstruct after the fact.
FLIGHT_DUMP_KINDS = frozenset({"crash", "deadline", "circuit-open"})

_REQUEST_ID_RE = re.compile(r"[A-Za-z0-9._:-]{1,64}$")


def _clean_request_id(value: Optional[str]) -> str:
    """A client-supplied correlation ID, or ``""`` if unusable (too
    long, funny characters — IDs land in filenames and log lines)."""
    if value and _REQUEST_ID_RE.match(value):
        return value
    return ""


@dataclass
class ServeConfig:
    """Everything the daemon is allowed to do, in one place."""

    host: str = "127.0.0.1"
    port: int = 8736
    #: worker slots (= max concurrently executing requests)
    workers: int = 2
    #: admitted requests allowed to wait for a slot before 429
    queue_limit: int = 8
    #: ``process`` (isolated workers; the default) or ``serial``
    #: (in-process; no crash isolation or deadline preemption)
    executor: str = "process"
    #: seconds granted when a request names no deadline
    default_deadline: float = 30.0
    #: hard ceiling any requested deadline is clamped to
    max_deadline: float = 300.0
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    #: result-cache directory; ``None`` = $REPRO_CACHE_DIR/.repro_cache
    cache_dir: Optional[str] = None
    cache_capacity: int = 4096
    #: run without any result cache
    no_cache: bool = False
    #: seconds drain waits for in-flight requests before closing anyway
    drain_grace: float = 30.0
    #: per-slot SpanTracers + the /v1/trace endpoint
    trace: bool = False
    #: accept batched ``simulate-cell`` jobs (a ``stimuli`` list of up
    #: to ``lanes`` vectors advancing as one multi-lane simulation)
    batch: bool = False
    #: max lanes a batched ``simulate-cell`` submission may request
    lanes: int = 8
    #: register the chaos tasks (sleep/crash/spin) — testing only
    chaos: bool = False
    #: access-log lines on stderr
    verbose: bool = False
    #: metrics registry + event journal + ``GET /metrics``; off turns
    #: the whole telemetry layer into shared no-ops
    telemetry: bool = True
    #: JSONL event-journal file (``None`` = ring buffer only)
    journal_path: Optional[str] = None
    #: where flight-recorder dumps land on crash/deadline/circuit-open
    flight_dir: str = "benchmarks/output"
    #: journal records the flight recorder retains
    flight_capacity: int = 512


class ServeMetrics:
    """The serving layer's own counters (engine counters live in each
    slot's :class:`repro.sim.metrics.ExecMetrics`).  All mutation
    happens under the server lock."""

    __slots__ = (
        "requests",
        "ok",
        "cached",
        "errors",
        "rejected",
        "queue_depth",
        "in_flight",
        "peak_queue_depth",
        "peak_in_flight",
        "_service_ewma",
        "started_at",
    )

    #: EWMA smoothing factor for observed service time.
    ALPHA = 0.3

    def __init__(self):
        self.requests = 0
        self.ok = 0
        self.cached = 0
        #: error kind -> count (completed requests that failed)
        self.errors: Dict[str, int] = {}
        #: error kind -> count (requests refused at admission)
        self.rejected: Dict[str, int] = {}
        self.queue_depth = 0
        self.in_flight = 0
        self.peak_queue_depth = 0
        self.peak_in_flight = 0
        self._service_ewma = Ewma(alpha=self.ALPHA)
        self.started_at = time.monotonic()

    @property
    def ewma_service_seconds(self) -> float:
        return self._service_ewma.value

    def note_service(self, seconds: float) -> None:
        self._service_ewma.update(seconds)

    def count_error(self, kind: str, rejected: bool) -> None:
        bucket = self.rejected if rejected else self.errors
        bucket[kind] = bucket.get(kind, 0) + 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "cached": self.cached,
            "errors": dict(sorted(self.errors.items())),
            "rejected": dict(sorted(self.rejected.items())),
            "queue_depth": self.queue_depth,
            "in_flight": self.in_flight,
            "peak_queue_depth": self.peak_queue_depth,
            "peak_in_flight": self.peak_in_flight,
            "ewma_service_seconds": round(self.ewma_service_seconds, 6),
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
        }


class _Slot:
    """One worker slot: an exclusive engine over a one-worker executor.

    Slots circulate through a :class:`queue.Queue`; a request owns at
    most one slot at a time, so each engine (and its tracer) is only
    ever used single-threaded while the *fleet* serves concurrently.
    """

    #: trace roots kept per slot (older spans are trimmed)
    TRACE_KEEP = 256

    def __init__(
        self,
        index: int,
        config: ServeConfig,
        cache: Optional[ResultCache],
        journal=NULL_JOURNAL,
        registry=NULL_REGISTRY,
    ):
        self.index = index
        if config.executor == "process":
            executor = ProcessExecutor(workers=1, serial_fallback=False)
        elif config.executor == "serial":
            executor = SerialExecutor()
        else:
            raise ValueError(
                f"unknown serve executor {config.executor!r}; "
                "choose process or serial"
            )
        self.tracer = SpanTracer() if config.trace else None
        self.engine = ExecutionEngine(
            executor=executor, cache=cache, tracer=self.tracer,
            journal=journal, registry=registry,
        )

    def trim_trace(self) -> None:
        if self.tracer is not None and len(self.tracer.roots) > self.TRACE_KEEP:
            del self.tracer.roots[: -self.TRACE_KEEP]


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # drain handles lifecycle; don't block close on handler threads
    block_on_close = False
    repro: "ReproServer"


class ReproServer:
    """The daemon: construct, :meth:`start`, then :meth:`wait`.

    Usable in-process (tests start it on an ephemeral port and talk to
    ``http://127.0.0.1:{server.port}``) or via ``repro serve``.
    """

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        if self.config.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.config.workers}")
        if self.config.queue_limit < 0:
            raise ValueError(
                f"queue-limit must be >= 0, got {self.config.queue_limit}"
            )
        self.cache: Optional[ResultCache] = None
        if not self.config.no_cache:
            self.cache = ResultCache(
                self.config.cache_dir or default_cache_dir(),
                capacity=self.config.cache_capacity,
            )
        self.metrics = ServeMetrics()
        # -- unified telemetry: registry + journal + flight recorder
        if self.config.telemetry:
            self.registry = MetricsRegistry()
            self.recorder = FlightRecorder(
                capacity=self.config.flight_capacity
            )
            self.journal = EventJournal(
                path=self.config.journal_path, recorder=self.recorder
            )
        else:
            self.registry = NULL_REGISTRY
            self.recorder = None
            self.journal = NULL_JOURNAL
        self._m_requests = self.registry.counter(
            "repro_serve_requests_total",
            "Submissions by final outcome (ok, or the error kind).",
            ("outcome",),
        )
        self._m_request_seconds = self.registry.histogram(
            "repro_serve_request_seconds",
            "Request latency from admission to final outcome, by task.",
            ("task",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self._m_queue_depth = self.registry.gauge(
            "repro_serve_queue_depth", "Admitted requests awaiting a slot."
        )
        self._m_in_flight = self.registry.gauge(
            "repro_serve_in_flight", "Requests currently executing."
        )
        self._m_flight_dumps = self.registry.counter(
            "repro_serve_flight_dumps_total",
            "Flight-recorder dumps written, by trigger reason.",
            ("reason",),
        )
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown,
            journal=self.journal,
        )
        self._slots: "queue.Queue[_Slot]" = queue.Queue()
        self._all_slots: List[_Slot] = []
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._draining = False
        self._drain_reason = ""
        self._drain_requested = threading.Event()
        self._started = False
        self._closed = False
        self._httpd: Optional[_HTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._salt = ""
        self.port = self.config.port

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ReproServer":
        """Bind, spin up the listener thread and the worker slots."""
        if self._started:
            raise RuntimeError("server already started")
        if self.config.chaos:
            from repro.serve.chaos import register_chaos_tasks

            register_chaos_tasks()
        # compute the code salt once, before any request races to
        self._salt = code_version_salt()
        for index in range(self.config.workers):
            slot = _Slot(
                index, self.config, self.cache,
                journal=self.journal, registry=self.registry,
            )
            self._all_slots.append(slot)
            self._slots.put(slot)
        self._httpd = _HTTPServer(
            (self.config.host, self.config.port), _Handler
        )
        self._httpd.repro = self
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-listener",
            daemon=True,
        )
        self._thread.start()
        self._started = True
        return self

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def ready(self) -> bool:
        with self._lock:
            return self._started and not self._draining and not self._closed

    def begin_drain(self, reason: str = "requested") -> None:
        """Stop admitting; in-flight requests keep running.  Safe to
        call from a signal handler or any thread; idempotent."""
        with self._lock:
            if self._draining:
                return
            self._draining = True
            self._drain_reason = reason
        self._drain_requested.set()

    def wait(self, timeout: Optional[float] = None) -> int:
        """Block until a drain is requested, then complete it: wait
        (bounded by ``drain_grace``) for in-flight work, close the
        listener, flush cache scratch files.  Returns the process exit
        code (0 on a clean drain)."""
        # Poll in short slices rather than blocking indefinitely: a
        # process-directed SIGTERM may be delivered to a busy handler
        # thread, and the main thread must keep returning to bytecode
        # for the Python-level signal handler (-> begin_drain) to run.
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._drain_requested.wait(0.2):
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    "no drain requested within the wait timeout"
                )
        grace_ends = time.monotonic() + self.config.drain_grace
        with self._lock:
            while self.metrics.queue_depth > 0 or self.metrics.in_flight > 0:
                remaining = grace_ends - time.monotonic()
                if remaining <= 0:
                    break
                self._idle.wait(min(remaining, 0.2))
            drained = self.metrics.queue_depth == 0 and self.metrics.in_flight == 0
        self.close()
        if not drained:
            print(
                "repro serve: drain grace expired with requests still "
                "in flight",
                file=sys.stderr,
            )
            return 1
        return 0

    def close(self) -> None:
        """Tear the listener down now (after a drain, or in tests)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._draining = True
        self._drain_requested.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        for slot in self._all_slots:
            terminate = getattr(slot.engine.executor, "terminate", None)
            if callable(terminate):
                terminate()
        if self.cache is not None:
            self.cache.remove_temp_files()
        self.journal.emit("server-closed")
        self.journal.close()

    # -- request handling ----------------------------------------------------

    def _error(
        self,
        kind: str,
        message: str,
        rejected: bool = False,
        retry_after: Optional[float] = None,
        key: Optional[str] = None,
        count: bool = True,
        request_id: str = "",
    ) -> Tuple[int, Dict[str, str], Dict[str, object]]:
        if count:
            with self._lock:
                self.metrics.count_error(kind, rejected)
        if request_id:
            # only submissions carry an ID; read-only lookups skip the
            # journal, counters and flight recorder entirely
            self._note_failure(kind, message, rejected, key, request_id)
        headers: Dict[str, str] = {}
        body: Dict[str, object] = {
            "error": {"kind": kind, "message": message}
        }
        if key is not None:
            body["key"] = key
        if retry_after is not None:
            headers["Retry-After"] = str(max(1, math.ceil(retry_after)))
            headers["X-Repro-Retry-After"] = f"{max(retry_after, 0.001):.3f}"
        return ERROR_STATUS[kind], headers, body

    def _note_failure(
        self,
        kind: str,
        message: str,
        rejected: bool,
        key: Optional[str],
        request_id: str,
    ) -> None:
        """Telemetry for one failed/rejected submission: outcome
        counter, journal record, and — for the post-mortem-worthy
        kinds — a flight-recorder dump naming the request."""
        self._m_requests.labels(kind).inc()
        self.journal.emit(
            "request-rejected" if rejected else "request-failed",
            request_id=request_id,
            error=kind,
            key=key or "",
            message=message,
        )
        if kind in FLIGHT_DUMP_KINDS and self.recorder is not None:
            path = self.recorder.dump(
                self.config.flight_dir, kind, request_id
            )
            self._m_flight_dumps.labels(kind).inc()
            self.journal.emit(
                "flight-dump", request_id=request_id, reason=kind, path=path
            )

    def _retry_after_seconds(self) -> float:
        """Backpressure hint from observed service time and occupancy:
        roughly how long until a queue slot frees up."""
        ewma = self.metrics.ewma_service_seconds or 1.0
        waiting = self.metrics.queue_depth + self.metrics.in_flight
        return min(max(ewma * (waiting + 1) / self.config.workers, 0.05), 60.0)

    def submit(
        self, data: object, request_id: str = ""
    ) -> Tuple[int, Dict[str, str], Dict[str, object]]:
        """Handle one POST /v1/jobs body; returns (status, headers, body).

        ``request_id`` is the client's ``X-Repro-Request-Id`` (or
        ``""``); an unusable or absent one is replaced by a generated
        ID.  The ID is bound for the whole submission — journal
        records, engine job events and spans inherit it — and echoed
        in the response headers.
        """
        received = time.monotonic()
        rid = _clean_request_id(request_id) or new_request_id()
        with bind_request_id(rid):
            status, headers, body = self._submit(data, rid, received)
        task = data.get("task") if isinstance(data, dict) else None
        if isinstance(task, str):
            self._m_request_seconds.labels(task).observe(
                time.monotonic() - received
            )
        headers = dict(headers)
        headers.setdefault("X-Repro-Request-Id", rid)
        return status, headers, body

    def _submit(
        self, data: object, rid: str, received: float
    ) -> Tuple[int, Dict[str, str], Dict[str, object]]:
        if not isinstance(data, dict):
            return self._error(
                "bad-request", "request body must be a JSON object",
                request_id=rid,
            )
        task = data.get("task")
        params = data.get("params")
        if not isinstance(task, str) or not isinstance(params, dict):
            return self._error(
                "bad-request",
                'body must carry a string "task" and an object "params"',
                request_id=rid,
            )
        try:
            get_task(task)
        except KeyError:
            return self._error(
                "unknown-task",
                f"unknown task {task!r}; GET /v1/tasks lists the registry",
                request_id=rid,
            )
        stimuli = params.get("stimuli")
        if stimuli is not None:
            if not self.config.batch:
                return self._error(
                    "bad-request",
                    'batched submissions ("stimuli") need a daemon '
                    "started with --batch",
                    request_id=rid,
                )
            if not isinstance(stimuli, list) or not stimuli:
                return self._error(
                    "bad-request", '"stimuli" must be a non-empty list',
                    request_id=rid,
                )
            if len(stimuli) > self.config.lanes:
                return self._error(
                    "bad-request",
                    f'"stimuli" carries {len(stimuli)} vectors; this '
                    f"daemon allows at most {self.config.lanes} lanes "
                    "(--lanes)",
                    request_id=rid,
                )
        workload = params.get("workload")
        if workload is not None:
            # reject unknown registry ids at admission rather than
            # burning a worker slot on a job that can only fail
            from repro.apps.workloads import WorkloadError, default_registry

            if not isinstance(workload, str):
                return self._error(
                    "bad-request", '"workload" must be a registry id string',
                    request_id=rid,
                )
            try:
                default_registry().get(workload)
            except WorkloadError as exc:
                return self._error(
                    "bad-request", str(exc), request_id=rid,
                )
        deadline = data.get("deadline", self.config.default_deadline)
        if not isinstance(deadline, (int, float)) or deadline <= 0:
            return self._error(
                "bad-request",
                '"deadline" must be a positive number of seconds',
                request_id=rid,
            )
        deadline = min(float(deadline), self.config.max_deadline)
        job = Job(task, params, label=f"serve:{task}")
        try:
            key = job.key(self._salt)
        except TypeError:
            return self._error(
                "bad-request", '"params" must be JSON-serialisable',
                request_id=rid,
            )
        self.journal.emit(
            "request-received", request_id=rid, task=task, key=key,
            deadline=round(deadline, 3),
        )

        # -- admission ------------------------------------------------------
        with self._lock:
            self.metrics.requests += 1
            if self._draining:
                return self._error_locked(
                    "draining",
                    f"server is draining ({self._drain_reason})",
                    rejected=True,
                    retry_after=self.config.drain_grace,
                    key=key,
                    request_id=rid,
                )
            decision = self.breaker.admit(key)
            if not decision.allowed:
                return self._error_locked(
                    "circuit-open",
                    "this job spec repeatedly crashed workers; "
                    f"circuit is {decision.state}",
                    rejected=True,
                    retry_after=decision.retry_after,
                    key=key,
                    request_id=rid,
                )
            if self.metrics.queue_depth >= self.config.queue_limit:
                return self._error_locked(
                    "queue-full",
                    f"admission queue is full "
                    f"({self.config.queue_limit} waiting)",
                    rejected=True,
                    retry_after=self._retry_after_seconds(),
                    key=key,
                    request_id=rid,
                )
            self.metrics.queue_depth += 1
            self.metrics.peak_queue_depth = max(
                self.metrics.peak_queue_depth, self.metrics.queue_depth
            )
            self._m_queue_depth.set(self.metrics.queue_depth)
        self.journal.emit(
            "request-queued", request_id=rid, key=key,
            depth=self.metrics.queue_depth,
        )

        # -- wait for a worker slot (bounded by the deadline) ---------------
        slot: Optional[_Slot] = None
        try:
            remaining = deadline - (time.monotonic() - received)
            if remaining > 0:
                try:
                    slot = self._slots.get(timeout=remaining)
                except queue.Empty:
                    slot = None
        finally:
            with self._lock:
                self.metrics.queue_depth -= 1
                self._m_queue_depth.set(self.metrics.queue_depth)
                if slot is not None:
                    self.metrics.in_flight += 1
                    self.metrics.peak_in_flight = max(
                        self.metrics.peak_in_flight, self.metrics.in_flight
                    )
                    self._m_in_flight.set(self.metrics.in_flight)
                else:
                    self._idle.notify_all()
        if slot is None:
            return self._error(
                "deadline",
                f"deadline of {deadline:g}s exhausted while queued",
                key=key,
                request_id=rid,
            )
        self.journal.emit(
            "request-dispatched", request_id=rid, key=key, slot=slot.index,
        )

        # -- execute with the remaining deadline ----------------------------
        try:
            remaining = deadline - (time.monotonic() - received)
            if remaining <= 0:
                return self._error(
                    "deadline",
                    f"deadline of {deadline:g}s exhausted before execution",
                    key=key,
                    request_id=rid,
                )
            result = slot.engine.run([job], timeout=remaining)[0]
        except Exception as exc:  # noqa: BLE001 — a 500, never a hang
            return self._error(
                "internal", f"{type(exc).__name__}: {exc}", key=key,
                request_id=rid,
            )
        finally:
            slot.trim_trace()
            self._slots.put(slot)
            with self._lock:
                self.metrics.in_flight -= 1
                self._m_in_flight.set(self.metrics.in_flight)
                self._idle.notify_all()

        # -- outcome --------------------------------------------------------
        if result.error is None:
            self.breaker.record(key, ok=True)
            with self._lock:
                self.metrics.ok += 1
                if result.cached:
                    self.metrics.cached += 1
                else:
                    self.metrics.note_service(result.seconds)
            self._m_requests.labels("ok").inc()
            self.journal.emit(
                "request-complete", request_id=rid, key=key,
                cached=result.cached, seconds=round(result.seconds, 6),
            )
            headers = {
                "X-Repro-Cached": "true" if result.cached else "false",
                "X-Repro-Seconds": f"{result.seconds:.6f}",
            }
            # audit trail: which kernel variant computed this payload
            # (walker / compiled / batched) — present on simulation
            # tasks, absent on purely structural ones
            if isinstance(result.payload, dict) and "kernel" in result.payload:
                headers["X-Repro-Kernel"] = str(result.payload["kernel"])
            # the body carries only deterministic members, so for one
            # job key every 200 body is byte-identical — cold, warm,
            # or computed by the campaign CLIs
            return 200, headers, {"key": key, "payload": result.payload}
        kind = result.error.get("kind", "error")
        self.breaker.record(key, ok=kind not in ("crash", "timeout"))
        message = result.error.get("message", "")
        if kind == "timeout":
            return self._error(
                "deadline",
                f"execution exceeded the deadline: {message}",
                key=key,
                request_id=rid,
            )
        if kind == "crash":
            return self._error(
                "crash",
                f"worker process died executing this job: {message}",
                key=key,
                request_id=rid,
            )
        if kind == "cancelled":
            return self._error(
                "cancelled", message or "job cancelled", key=key,
                request_id=rid,
            )
        return self._error(
            "error",
            f"{result.error.get('type', 'Exception')}: {message}",
            key=key,
            request_id=rid,
        )

    def _error_locked(
        self, kind, message, rejected, retry_after, key, request_id=""
    ):
        """:meth:`_error` for callers already holding the lock."""
        self.metrics.count_error(kind, rejected)
        status, headers, body = self._error(
            kind,
            message,
            rejected=rejected,
            retry_after=retry_after,
            key=key,
            count=False,
            request_id=request_id,
        )
        return status, headers, body

    # -- read-only endpoints -------------------------------------------------

    def lookup(self, key: str) -> Tuple[int, Dict[str, str], Dict[str, object]]:
        if self.cache is None:
            return self._error(
                "not-found", "no result cache configured", count=False
            )
        payload = self.cache.get(key)
        if payload is None:
            return self._error(
                "not-found", f"no cached result under {key!r}", count=False
            )
        return 200, {"X-Repro-Cached": "true"}, {"key": key, "payload": payload}

    def stats(self) -> Dict[str, object]:
        with self._lock:
            server = self.metrics.as_dict()
            server["ready"] = self._started and not self._draining and not self._closed
            server["draining"] = self._draining
            server["workers"] = self.config.workers
            server["queue_limit"] = self.config.queue_limit
            server["executor"] = self.config.executor
            server["retry_after_seconds"] = round(self._retry_after_seconds(), 3)
        exec_totals: Dict[str, object] = {}
        for slot in self._all_slots:
            for name, value in slot.engine.metrics.as_dict().items():
                exec_totals[name] = exec_totals.get(name, 0) + value
        cache: Optional[Dict[str, object]] = None
        if self.cache is not None:
            cache = dict(self.cache.stats.as_dict())
            cache["read_only"] = self.cache.read_only
            cache["root"] = self.cache.root
        telemetry: Dict[str, object] = {
            "enabled": self.config.telemetry,
            "events_emitted": self.journal.emitted,
            "journal_path": self.journal.path,
            "flight_dumps": self.recorder.dumps if self.recorder else 0,
            "metrics": self.registry.snapshot(),
        }
        return {
            "server": server,
            "exec": exec_totals,
            "cache": cache,
            "breaker": self.breaker.snapshot(),
            "telemetry": telemetry,
        }

    def trace_events(self) -> Optional[Dict[str, object]]:
        """Merged Chrome trace of the slots' recent jobs (one tid per
        slot), or ``None`` when tracing is off."""
        if not self.config.trace:
            return None
        events: List[Dict[str, object]] = [
            {
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "ts": 0,
                "name": "process_name",
                "args": {"name": "repro-serve"},
            }
        ]
        for slot in self._all_slots:
            if slot.tracer is None:
                continue
            for event in slot.tracer.to_chrome_trace()["traceEvents"]:
                if event.get("ph") == "M":
                    continue
                merged = dict(event)
                merged["tid"] = slot.index + 1
                events.append(merged)
        return {"traceEvents": events, "displayTimeUnit": "ms"}


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    #: request body size cap (a specification is a few hundred KB at
    #: the very most; anything larger is a client bug or abuse)
    MAX_BODY = 8 * 1024 * 1024

    @property
    def rs(self) -> ReproServer:
        return self.server.repro  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.rs.config.verbose:
            sys.stderr.write(
                f"{self.address_string()} - {format % args}\n"
            )

    # -- plumbing ------------------------------------------------------------

    def _request_id(self) -> str:
        return _clean_request_id(self.headers.get("X-Repro-Request-Id"))

    def _send(
        self,
        status: int,
        body: Dict[str, object],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        data = (json.dumps(body, sort_keys=True) + "\n").encode()
        self._send_bytes(status, data, "application/json", headers)

    def _send_text(
        self,
        status: int,
        text: str,
        content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        self._send_bytes(status, text.encode(), content_type, None)

    def _send_bytes(
        self,
        status: int,
        data: bytes,
        content_type: str,
        headers: Optional[Dict[str, str]],
    ) -> None:
        headers = headers or {}
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        for name, value in headers.items():
            self.send_header(name, value)
        # echo the client's correlation ID on every response (submit
        # already placed the authoritative — possibly generated — one)
        rid = self._request_id()
        if rid and "X-Repro-Request-Id" not in headers:
            self.send_header("X-Repro-Request-Id", rid)
        self.end_headers()
        self.wfile.write(data)

    def _guard(self, handler) -> None:
        try:
            handler()
        except BrokenPipeError:
            pass  # client went away; nothing to answer
        except Exception as exc:  # noqa: BLE001 — a 500, never a dead thread
            try:
                self._send(
                    500,
                    {
                        "error": {
                            "kind": "internal",
                            "message": f"{type(exc).__name__}: {exc}",
                        }
                    },
                )
            except Exception:
                pass

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server contract
        self._guard(self._get)

    def _get(self) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._send(200, {"status": "alive"})
        elif path == "/readyz":
            if self.rs.ready():
                self._send(200, {"status": "ready"})
            else:
                state = "draining" if self.rs._draining else "starting"
                self._send(
                    503,
                    {"error": {"kind": "draining", "message": state},
                     "status": state},
                )
        elif path == "/metrics":
            if not self.rs.config.telemetry:
                self._send(
                    404,
                    {"error": {"kind": "not-found",
                               "message": "telemetry disabled; start the "
                                          "server without --no-telemetry"}},
                )
            else:
                self._send_text(
                    200,
                    self.rs.registry.render(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
        elif path == "/v1/stats":
            self._send(200, self.rs.stats())
        elif path == "/v1/tasks":
            self._send(200, {"tasks": task_names()})
        elif path == "/v1/trace":
            trace = self.rs.trace_events()
            if trace is None:
                self._send(
                    404,
                    {"error": {"kind": "not-found",
                               "message": "tracing disabled; start the "
                                          "server with --trace"}},
                )
            else:
                self._send(200, trace)
        elif path.startswith("/v1/jobs/"):
            key = path[len("/v1/jobs/"):]
            status, headers, body = self.rs.lookup(key)
            self._send(status, body, headers)
        else:
            self._send(
                404,
                {"error": {"kind": "not-found",
                           "message": f"no route for {path!r}"}},
            )

    def do_POST(self) -> None:  # noqa: N802 — http.server contract
        self._guard(self._post)

    def _post(self) -> None:
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/v1/jobs":
            length = int(self.headers.get("Content-Length") or 0)
            if length <= 0 or length > self.MAX_BODY:
                self._send(
                    400,
                    {"error": {"kind": "bad-request",
                               "message": "a JSON body is required "
                                          f"(at most {self.MAX_BODY} bytes)"}},
                )
                return
            raw = self.rfile.read(length)
            try:
                data = json.loads(raw)
            except ValueError as exc:
                self._send(
                    400,
                    {"error": {"kind": "bad-request",
                               "message": f"invalid JSON: {exc}"}},
                )
                return
            status, headers, body = self.rs.submit(
                data, request_id=self._request_id()
            )
            self._send(status, body, headers)
        elif path == "/v1/drain":
            self.rs.begin_drain("POST /v1/drain")
            self._send(202, {"status": "draining"})
        else:
            self._send(
                405 if path in ("/healthz", "/readyz", "/v1/stats") else 404,
                {"error": {"kind": "not-found",
                           "message": f"no POST route for {path!r}"}},
            )


def run_server(config: ServeConfig) -> int:
    """The ``repro serve`` entry point: start, announce, install
    signal handlers, block until drained.  Returns the exit code."""
    import signal as _signal

    server = ReproServer(config).start()
    print(f"repro serve listening on {server.url}", flush=True)
    print(
        f"  workers={config.workers} queue_limit={config.queue_limit} "
        f"executor={config.executor} "
        f"cache={'off' if server.cache is None else server.cache.root} "
        f"telemetry={'on' if config.telemetry else 'off'}"
        + (f" journal={config.journal_path}" if config.journal_path else ""),
        file=sys.stderr,
        flush=True,
    )

    def _drain(signum, frame):  # noqa: ARG001 — signal contract
        server.begin_drain(_signal.Signals(signum).name)

    previous = {
        sig: _signal.signal(sig, _drain)
        for sig in (_signal.SIGTERM, _signal.SIGINT)
    }
    try:
        code = server.wait()
    finally:
        for sig, old in previous.items():
            _signal.signal(sig, old)
    stats = server.stats()
    print(
        "repro serve drained: "
        f"{stats['server']['ok']} ok, "
        f"{stats['server']['cached']} cache-served, "
        f"errors={stats['server']['errors']}, "
        f"rejected={stats['server']['rejected']}",
        file=sys.stderr,
    )
    return code
