"""Per-job circuit breaker: quarantine specs that crash workers.

A job spec that SIGKILLs, segfaults or OOMs a worker process costs the
server a pool recycle every time it is submitted.  Without protection,
a client replaying such a spec in a retry loop turns the worker fleet
into a fork bomb ("pool thrash").  The breaker gives each
content-addressed job key a standard three-state circuit:

``closed``
    Normal service.  ``threshold`` *consecutive* crash-class failures
    (worker crash or per-job timeout) trip the circuit.
``open``
    Submissions are rejected up front with a structured 503 and a
    ``Retry-After`` equal to the remaining cooldown — the job never
    reaches a worker.
``half-open``
    After ``cooldown`` seconds one probe request is admitted.  Success
    closes the circuit; another crash reopens it for a fresh cooldown.

Because the key is content-addressed (see :func:`repro.exec.job.job_key`),
quarantining one poisonous spec never affects any other request — and a
changed spec (or changed code, via the salt) gets a fresh circuit.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

__all__ = ["BreakerDecision", "CircuitBreaker"]


class BreakerDecision:
    """What :meth:`CircuitBreaker.admit` decided for one submission."""

    __slots__ = ("allowed", "state", "retry_after")

    def __init__(self, allowed: bool, state: str, retry_after: float = 0.0):
        self.allowed = allowed
        self.state = state
        self.retry_after = retry_after

    def __repr__(self) -> str:
        return (
            f"<BreakerDecision allowed={self.allowed} state={self.state!r} "
            f"retry_after={self.retry_after:.3f}>"
        )


class _Circuit:
    __slots__ = ("failures", "state", "opened_at", "probing", "trips")

    def __init__(self):
        self.failures = 0
        self.state = "closed"
        self.opened_at = 0.0
        self.probing = False
        self.trips = 0


class CircuitBreaker:
    """Thread-safe circuit registry keyed by job key.

    ``threshold``
        Consecutive crash-class failures that open a circuit.
    ``cooldown``
        Seconds an open circuit rejects submissions before admitting a
        half-open probe.
    ``clock``
        Injectable monotonic clock (tests freeze it).
    ``journal``
        An :class:`repro.obs.events.EventJournal`; state transitions
        become ``breaker-open`` / ``breaker-close`` records carrying
        the bound request ID (default: the no-op journal).
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock=time.monotonic,
        journal=None,
    ):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown <= 0:
            raise ValueError(f"cooldown must be > 0, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        if journal is None:
            from repro.obs.events import NULL_JOURNAL

            journal = NULL_JOURNAL
        self._journal = journal
        self._lock = threading.Lock()
        self._circuits: Dict[str, _Circuit] = {}

    # -- decisions -----------------------------------------------------------

    def admit(self, key: str) -> BreakerDecision:
        """Decide whether a submission for ``key`` may proceed."""
        with self._lock:
            circuit = self._circuits.get(key)
            if circuit is None or circuit.state == "closed":
                return BreakerDecision(True, "closed")
            now = self._clock()
            remaining = circuit.opened_at + self.cooldown - now
            if remaining > 0:
                return BreakerDecision(False, "open", retry_after=remaining)
            # cooldown elapsed: admit exactly one probe at a time
            if circuit.probing:
                return BreakerDecision(
                    False, "half-open", retry_after=self.cooldown
                )
            circuit.state = "half-open"
            circuit.probing = True
            return BreakerDecision(True, "half-open")

    def record(self, key: str, ok: bool) -> None:
        """Feed the outcome of an executed (or probed) job back in.

        ``ok`` is "did not crash a worker": a clean payload *and* a
        deterministic task error both count as success — only
        crash-class outcomes (worker crash, timeout) push a circuit
        toward open.
        """
        closed = opened = None
        with self._lock:
            circuit = self._circuits.get(key)
            if ok:
                if circuit is not None:
                    self._circuits.pop(key, None)
                    if circuit.state != "closed":
                        closed = circuit
            else:
                if circuit is None:
                    circuit = self._circuits.setdefault(key, _Circuit())
                was = circuit.state
                circuit.probing = False
                circuit.failures += 1
                if (
                    circuit.state == "half-open"
                    or circuit.failures >= self.threshold
                ):
                    circuit.state = "open"
                    circuit.opened_at = self._clock()
                    circuit.trips += 1
                    if was != "open":
                        opened = circuit
        # journal outside the lock: the sink may do file I/O
        if closed is not None:
            self._journal.emit(
                "breaker-close", key=key, trips=closed.trips
            )
        if opened is not None:
            self._journal.emit(
                "breaker-open", key=key, failures=opened.failures,
                trips=opened.trips,
            )

    def reset(self, key: Optional[str] = None) -> None:
        """Forget one circuit (or all of them)."""
        with self._lock:
            if key is None:
                self._circuits.clear()
            else:
                self._circuits.pop(key, None)

    # -- introspection -------------------------------------------------------

    def state(self, key: str) -> str:
        with self._lock:
            circuit = self._circuits.get(key)
            return circuit.state if circuit is not None else "closed"

    def snapshot(self) -> Dict[str, object]:
        """Stats-endpoint view: open circuits and cumulative trips."""
        with self._lock:
            open_keys: List[str] = sorted(
                key
                for key, circuit in self._circuits.items()
                if circuit.state != "closed"
            )
            trips = sum(c.trips for c in self._circuits.values())
            return {
                "tracked": len(self._circuits),
                "open": open_keys,
                "trips": trips,
                "threshold": self.threshold,
                "cooldown_seconds": self.cooldown,
            }
