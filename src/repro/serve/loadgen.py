"""``repro loadgen``: a seeded closed-loop load harness for the daemon.

A fleet of client threads hammers a running ``repro serve`` instance
with simulation jobs drawn from the differential-fuzzing generator
(:mod:`repro.fuzz.generator`), then the harness writes two artifacts:

* a **byte-stable report** (``loadgen_report.txt``) — configuration,
  request mix, final outcome taxonomy and two correctness checks
  (cross-client payload identity per job key, and a local in-process
  recompute of every distinct job that must match the served payloads
  exactly).  Same seed + same code ⇒ same bytes, so the report is
  committed under ``benchmarks/`` and diffed in review like the other
  benchmark reports;
* a **timing sidecar** (JSON) — latency percentiles, throughput and
  retry counts.  Wall-clock numbers are inherently machine-dependent,
  so they are quarantined here and never enter the byte-stable report.

Clients are deliberately patient (generous retry budgets honouring
``Retry-After``), so under backpressure the *final* outcome of every
logical request is deterministic even though the interleaving is not:
every request eventually lands 200 unless it is deterministically
rejected.  Transient 429/503 exchanges are visible in the sidecar
(``attempts``) and in the server's own ``rejected`` counters, not in
the report's taxonomy.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exec import (
    ExecutionEngine,
    Job,
    SerialExecutor,
    canonical_spec_text,
    code_version_salt,
)
from repro.fuzz.generator import (
    GeneratorConfig,
    generate_case,
    generate_input_vectors,
)
from repro.obs.events import EventJournal, NULL_JOURNAL
from repro.obs.stats import percentile
from repro.serve.client import ClientError, ReproClient

__all__ = ["LoadgenConfig", "LoadgenResult", "build_job_pool", "run_loadgen"]

#: Simulation budget applied to every loadgen job (fuzz specs always
#: terminate, but a service harness still belts-and-braces it).
_LIMITS = {"max_steps": 200_000}


@dataclass
class LoadgenConfig:
    """One campaign's worth of knobs; everything that can influence
    the byte-stable report lives here and is printed into it."""

    host: str = "127.0.0.1"
    port: int = 8736
    seed: int = 0
    clients: int = 4
    #: logical requests per client (each retried until final)
    requests: int = 25
    #: distinct generated specifications in the pool
    cases: int = 6
    #: input vectors generated per specification
    vectors: int = 3
    #: spec-generator statement budget (small = fast jobs)
    budget: int = 8
    deadline: float = 30.0
    #: per-request retry budget (patient by design; see module doc)
    retries: int = 12
    timings_path: Optional[str] = None
    #: JSONL client-side event journal shared by the fleet (the IDs it
    #: records match the daemon's journal — see docs/OBSERVABILITY.md)
    journal_path: Optional[str] = None


@dataclass
class _ClientLog:
    outcomes: List[str] = field(default_factory=list)
    keys: List[str] = field(default_factory=list)
    latencies: List[float] = field(default_factory=list)
    attempts: int = 0
    cache_hits: int = 0
    failures: List[str] = field(default_factory=list)


@dataclass
class LoadgenResult:
    """What :func:`run_loadgen` hands back: the report text (byte
    stable), the sidecar dict (not), and a pass/fail verdict."""

    report: str
    timings: Dict[str, object]
    ok: bool


def build_job_pool(config: LoadgenConfig) -> List[Dict[str, object]]:
    """The deterministic submission pool: ``cases × vectors`` distinct
    ``simulate-cell`` parameter sets derived from the campaign seed."""
    pool: List[Dict[str, object]] = []
    generator_config = GeneratorConfig(budget=config.budget)
    for case_index in range(config.cases):
        case = generate_case(config.seed * 1_000 + case_index, generator_config)
        text = canonical_spec_text(case.spec)
        vectors = generate_input_vectors(
            case.spec, config.seed * 1_000 + case_index, count=config.vectors
        )
        for vector in vectors:
            pool.append(
                {
                    "spec": text,
                    "inputs": vector,
                    "limits": dict(_LIMITS),
                }
            )
    return pool


def _client_worker(
    index: int,
    config: LoadgenConfig,
    pool: List[Dict[str, object]],
    log: _ClientLog,
    payloads: Dict[str, Dict[str, object]],
    payload_lock: threading.Lock,
    journal=NULL_JOURNAL,
) -> None:
    rng = random.Random((config.seed << 8) ^ index)
    client = ReproClient(
        host=config.host,
        port=config.port,
        retries=config.retries,
        backoff_base=0.02,
        backoff_cap=1.0,
        rng=random.Random((config.seed << 16) ^ index),
        journal=journal,
    )
    for _ in range(config.requests):
        params = rng.choice(pool)
        try:
            response = client.submit(
                "simulate-cell", params, deadline=config.deadline
            )
        except ClientError as exc:
            log.outcomes.append("unreachable")
            log.failures.append(str(exc))
            continue
        log.attempts += response.attempts
        log.latencies.append(response.seconds)
        if response.ok:
            log.outcomes.append("ok")
            if response.cached:
                log.cache_hits += 1
            key = str(response.body.get("key"))
            payload = response.body.get("payload")
            log.keys.append(key)
            with payload_lock:
                previous = payloads.get(key)
                if previous is None:
                    payloads[key] = payload  # type: ignore[assignment]
                elif previous != payload:
                    log.failures.append(
                        f"divergent payloads for {key} across clients"
                    )
        else:
            log.outcomes.append(response.error_kind() or f"http-{response.status}")


def _verify_locally(
    pool: List[Dict[str, object]],
    payloads: Dict[str, Dict[str, object]],
) -> List[str]:
    """Recompute every distinct job in-process (no cache) and demand
    byte-identical payloads to what the daemon served."""
    problems: List[str] = []
    engine = ExecutionEngine(executor=SerialExecutor(), cache=None)
    salt = code_version_salt()
    jobs = [Job("simulate-cell", params) for params in pool]
    results = engine.run(jobs)
    for job, result in zip(jobs, results):
        key = job.key(salt)
        served = payloads.get(key)
        if served is None:
            continue  # this job was never successfully served
        if result.error is not None:
            problems.append(f"local recompute of {key[:12]} failed: {result.error}")
        elif json.dumps(result.payload, sort_keys=True) != json.dumps(
            served, sort_keys=True
        ):
            problems.append(
                f"served payload for {key[:12]} differs from local recompute"
            )
    return problems


def run_loadgen(config: LoadgenConfig) -> LoadgenResult:
    """Run the campaign against an already-listening daemon."""
    pool = build_job_pool(config)
    logs = [_ClientLog() for _ in range(config.clients)]
    payloads: Dict[str, Dict[str, object]] = {}
    payload_lock = threading.Lock()
    journal = (
        EventJournal(path=config.journal_path)
        if config.journal_path
        else NULL_JOURNAL
    )
    started = time.monotonic()
    threads = [
        threading.Thread(
            target=_client_worker,
            args=(
                index, config, pool, logs[index], payloads, payload_lock,
                journal,
            ),
            name=f"loadgen-client-{index}",
        )
        for index in range(config.clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - started
    journal.close()

    # -- deterministic aggregation ------------------------------------------
    taxonomy: Dict[str, int] = {}
    failures: List[str] = []
    total_requests = 0
    cache_hits = 0
    for log in logs:
        total_requests += len(log.outcomes)
        cache_hits += log.cache_hits
        failures.extend(log.failures)
        for outcome in log.outcomes:
            taxonomy[outcome] = taxonomy.get(outcome, 0) + 1
    distinct_keys = sorted(payloads)
    recompute_problems = _verify_locally(pool, payloads)
    failures.extend(recompute_problems)
    ok = (
        not failures
        and taxonomy.get("ok", 0) == total_requests
        and total_requests == config.clients * config.requests
    )

    lines: List[str] = []
    lines.append("repro loadgen report")
    lines.append("====================")
    lines.append("")
    lines.append(
        f"config: seed={config.seed} clients={config.clients} "
        f"requests/client={config.requests} cases={config.cases} "
        f"vectors/case={config.vectors} budget={config.budget} "
        f"deadline={config.deadline:g}s retries={config.retries}"
    )
    lines.append(f"job pool: {len(pool)} distinct simulate-cell jobs")
    lines.append("")
    lines.append("outcome taxonomy (final outcome per logical request)")
    lines.append("----------------------------------------------------")
    for kind in sorted(taxonomy):
        lines.append(f"  {kind:<14} {taxonomy[kind]:>5}")
    lines.append(f"  {'total':<14} {total_requests:>5}")
    lines.append("")
    lines.append("correctness")
    lines.append("-----------")
    lines.append(f"  distinct job keys served: {len(distinct_keys)}")
    lines.append(
        "  cross-client payload identity: "
        + ("PASS" if not any("divergent" in f for f in failures) else "FAIL")
    )
    lines.append(
        "  local recompute identity:      "
        + ("PASS" if not recompute_problems else "FAIL")
    )
    for problem in failures:
        lines.append(f"  !! {problem}")
    lines.append("")
    lines.append(f"verdict: {'PASS' if ok else 'FAIL'}")
    report = "\n".join(lines) + "\n"

    latencies = sorted(l for log in logs for l in log.latencies)
    timings: Dict[str, object] = {
        "elapsed_seconds": round(elapsed, 3),
        "throughput_rps": round(total_requests / elapsed, 2) if elapsed else 0.0,
        "latency_seconds": {
            "p50": round(percentile(latencies, 0.50), 4),
            "p90": round(percentile(latencies, 0.90), 4),
            "p99": round(percentile(latencies, 0.99), 4),
            "max": round(latencies[-1], 4) if latencies else 0.0,
        },
        "http_attempts": sum(log.attempts for log in logs),
        "cache_hit_responses": cache_hits,
    }
    return LoadgenResult(report=report, timings=timings, ok=ok)
