"""Refinement-as-a-service (`repro.serve`).

``repro serve`` turns the refinement/simulation pipeline into a
long-running HTTP/JSON daemon built only on the stdlib: requests
become content-addressed jobs on the existing
:class:`repro.exec.engine.ExecutionEngine` (so identical submissions —
from any client, or from the campaign CLIs — share one cached,
byte-identical result).  The serving layer adds what a *service*
needs and a CLI does not:

* per-request **deadlines** that propagate into per-job execution
  timeouts;
* a bounded admission queue with explicit **backpressure** (429 +
  ``Retry-After`` derived from observed service time);
* a per-spec **circuit breaker** quarantining jobs that repeatedly
  crash workers;
* health/readiness/stats/trace endpoints;
* **graceful drain** on SIGTERM/SIGINT — stop admitting, finish
  in-flight work, flush cache scratch files, exit 0.

Companions: :mod:`repro.serve.client` (a retrying, backoff-polite
client), :mod:`repro.serve.loadgen` (the seeded ``repro loadgen``
harness) and :mod:`repro.serve.chaos` (opt-in fault-injection tasks
for the chaos test suite).  See ``docs/SERVICE.md``.
"""

from repro.serve.breaker import BreakerDecision, CircuitBreaker
from repro.serve.client import ClientError, ReproClient, Response
from repro.serve.loadgen import (
    LoadgenConfig,
    LoadgenResult,
    build_job_pool,
    run_loadgen,
)
from repro.serve.server import (
    ERROR_STATUS,
    ReproServer,
    ServeConfig,
    ServeMetrics,
    run_server,
)

__all__ = [
    "ERROR_STATUS",
    "BreakerDecision",
    "CircuitBreaker",
    "ClientError",
    "LoadgenConfig",
    "LoadgenResult",
    "ReproClient",
    "ReproServer",
    "Response",
    "ServeConfig",
    "ServeMetrics",
    "build_job_pool",
    "run_loadgen",
    "run_server",
]
