"""Differential fuzzing: random SpecCharts vs a stack of oracles.

The subsystem hunts bugs in three layers at once:

* :mod:`repro.fuzz.generator` — a seeded random generator of valid,
  terminating, race-free specifications plus matching partitions;
* :mod:`repro.fuzz.oracle` — the judges: parser/printer round-trip,
  compiled-eval vs reference-walker parity, and original-vs-refined
  equivalence across implementation models;
* :mod:`repro.fuzz.shrink` — an automatic test-case reducer and the
  persisted regression corpus under ``tests/corpus/``.

The campaign driver lives in :mod:`repro.experiments.fuzzing` and is
exposed as ``repro fuzz`` on the command line.
"""

from repro.fuzz.generator import (
    GeneratedCase,
    GeneratorConfig,
    generate_case,
    generate_controller_case,
    generate_input_vectors,
    generate_mesh_case,
    generate_pipeline_case,
)
from repro.fuzz.oracle import (
    CaseResult,
    OracleFailure,
    check_batch_parity,
    check_refinement,
    check_roundtrip,
    check_walker_parity,
    run_all_oracles,
)
from repro.fuzz.shrink import (
    CorpusEntry,
    iter_corpus,
    load_corpus_entry,
    restricted_assignment,
    save_corpus_entry,
    shrink_spec,
)

__all__ = [
    "GeneratedCase",
    "GeneratorConfig",
    "generate_case",
    "generate_controller_case",
    "generate_input_vectors",
    "generate_mesh_case",
    "generate_pipeline_case",
    "CaseResult",
    "OracleFailure",
    "check_batch_parity",
    "check_refinement",
    "check_roundtrip",
    "check_walker_parity",
    "run_all_oracles",
    "CorpusEntry",
    "iter_corpus",
    "load_corpus_entry",
    "restricted_assignment",
    "save_corpus_entry",
    "shrink_spec",
]
