"""Automatic shrinking of failing specifications, plus the regression
corpus they are persisted to.

:func:`shrink_spec` greedily minimizes a specification against a
caller-supplied *predicate* (``predicate(candidate) -> True`` when the
candidate still exhibits the failure).  Each round tries candidate
edits from the most to the least aggressive:

1. drop a whole behavior from a composite (arcs touching it go too);
2. promote a composite's child over the composite itself;
3. delete a single statement anywhere (leaf bodies, subprogram bodies,
   nested ``if``/loop bodies);
4. unwrap a compound statement (replace an ``if`` by its then-branch, a
   loop by its body);
5. drop a transition arc, an uncalled subprogram, an unreferenced
   variable;
6. replace an expression by one of its direct subexpressions or a
   small constant.

Only *valid* candidates (``candidate.validate()`` passes) reach the
predicate, and a candidate is accepted only when it is strictly smaller
in printed form, so shrinking always terminates.

The regression corpus lives in ``tests/corpus/``: one ``.spec`` file
per fixed bug, holding directive comments (bug description, optional
partition and input vectors) followed by the shrunk specification text.
:func:`load_corpus_entry` / :func:`iter_corpus` read them back for the
pytest replay and the ``repro fuzz --corpus`` CLI path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.lang.parser import parse
from repro.lang.printer import print_specification
from repro.partition.partition import Partition
from repro.spec.behavior import (
    Behavior,
    CompositeBehavior,
    LeafBehavior,
    Transition,
)
from repro.spec.expr import BinOp, Const, Expr, Index, UnaryOp, VarRef
from repro.spec.specification import Specification
from repro.spec.stmt import (
    Assign,
    CallStmt,
    For,
    If,
    Null,
    SignalAssign,
    Stmt,
    Wait,
    While,
    body as make_body,
)
from repro.spec.subprogram import Subprogram

__all__ = [
    "shrink_spec",
    "restricted_assignment",
    "CorpusEntry",
    "save_corpus_entry",
    "load_corpus_entry",
    "iter_corpus",
]


# -- tree copying ------------------------------------------------------------


def _copy_behavior(behavior: Behavior) -> Behavior:
    """A structurally fresh behavior tree (bodies/decls are immutable or
    never mutated here, so they are shared)."""
    if isinstance(behavior, LeafBehavior):
        copy: Behavior = LeafBehavior(
            behavior.name, behavior.stmt_body, list(behavior.decls), behavior.doc
        )
    else:
        composite = behavior
        copy = CompositeBehavior(
            composite.name,
            [_copy_behavior(sub) for sub in composite.subs],
            mode=composite.mode,
            transitions=list(composite.transitions),
            initial=composite.initial,
            decls=list(composite.decls),
            doc=composite.doc,
        )
    copy.daemon = behavior.daemon
    return copy


def _rebuild(spec: Specification, top: Behavior,
             subprograms: Optional[Sequence[Subprogram]] = None,
             variables: Optional[Sequence] = None) -> Specification:
    return Specification(
        spec.name,
        top,
        list(spec.variables) if variables is None else list(variables),
        list(spec.subprograms.values()) if subprograms is None
        else list(subprograms),
        spec.doc,
    )


# -- candidate enumeration ---------------------------------------------------


def _composites(behavior: Behavior) -> Iterator[CompositeBehavior]:
    if isinstance(behavior, CompositeBehavior):
        yield behavior
        for sub in behavior.subs:
            yield from _composites(sub)


def _replace_node(
    behavior: Behavior, name: str, build: Callable[[Behavior], Optional[Behavior]]
) -> Optional[Behavior]:
    """Copy ``behavior`` with the node called ``name`` rebuilt by
    ``build`` (returning ``None`` drops the node)."""
    if behavior.name == name:
        return build(behavior)
    if not isinstance(behavior, CompositeBehavior):
        return _copy_behavior(behavior)
    subs: List[Behavior] = []
    for sub in behavior.subs:
        replaced = _replace_node(sub, name, build)
        if replaced is not None:
            subs.append(replaced)
    if not subs:
        return None
    names = {s.name for s in subs}
    transitions = [
        t
        for t in behavior.transitions
        if t.source in names and (t.target is None or t.target in names)
    ]
    initial = behavior.initial if behavior.initial in names else None
    return CompositeBehavior(
        behavior.name,
        subs,
        mode=behavior.mode,
        transitions=transitions,
        initial=initial,
        decls=list(behavior.decls),
        doc=behavior.doc,
    )


def _drop_behavior_candidates(spec: Specification) -> Iterator[Specification]:
    for composite in _composites(spec.top):
        if len(composite.subs) < 2:
            continue
        for child in composite.subs:
            top = _replace_node(spec.top, child.name, lambda _b: None)
            if top is not None:
                yield _rebuild(spec, top)


def _promote_candidates(spec: Specification) -> Iterator[Specification]:
    if isinstance(spec.top, CompositeBehavior):
        for child in spec.top.subs:
            yield _rebuild(spec, _copy_behavior(child))
    for composite in _composites(spec.top):
        if composite is spec.top:
            continue
        for child in composite.subs:
            promoted = _copy_behavior(child)
            top = _replace_node(spec.top, composite.name, lambda _b: promoted)
            if top is not None:
                yield _rebuild(spec, top)


def _drop_transition_candidates(spec: Specification) -> Iterator[Specification]:
    for composite in _composites(spec.top):
        for k in range(len(composite.transitions)):
            def build(node: Behavior, k=k) -> Behavior:
                arcs = list(node.transitions)
                del arcs[k]
                return CompositeBehavior(
                    node.name,
                    [_copy_behavior(s) for s in node.subs],
                    mode=node.mode,
                    transitions=arcs,
                    initial=node.initial,
                    decls=list(node.decls),
                    doc=node.doc,
                )

            top = _replace_node(spec.top, composite.name, build)
            if top is not None:
                yield _rebuild(spec, top)


# statement-level edits: enumerate bodies generically


def _bodies_of_stmt(stmt: Stmt) -> List[Tuple[str, tuple]]:
    if isinstance(stmt, If):
        bodies = [("then_body", stmt.then_body)]
        for i, (_c, b) in enumerate(stmt.elifs):
            bodies.append((f"elif:{i}", b))
        bodies.append(("else_body", stmt.else_body))
        return bodies
    if isinstance(stmt, (While, For)):
        return [("loop_body", stmt.loop_body)]
    return []


def _with_body(stmt: Stmt, slot: str, new_body: tuple) -> Stmt:
    if isinstance(stmt, If):
        if slot == "then_body":
            return If(stmt.cond, new_body, stmt.elifs, stmt.else_body)
        if slot == "else_body":
            return If(stmt.cond, stmt.then_body, stmt.elifs, new_body)
        index = int(slot.split(":")[1])
        elifs = tuple(
            (c, new_body if i == index else b)
            for i, (c, b) in enumerate(stmt.elifs)
        )
        return If(stmt.cond, stmt.then_body, elifs, stmt.else_body)
    if isinstance(stmt, While):
        return While(stmt.cond, new_body, stmt.expected_iterations)
    if isinstance(stmt, For):
        return For(stmt.variable, stmt.start, stmt.stop, new_body)
    raise AssertionError(slot)


def _body_edits(stmts: tuple) -> Iterator[tuple]:
    """All single-edit variants of a statement sequence: one statement
    deleted, one compound statement unwrapped, or the edit applied
    inside a nested body."""
    for i, stmt in enumerate(stmts):
        rest = stmts[:i] + stmts[i + 1 :]
        yield rest if rest else (Null(),)
        if isinstance(stmt, If):
            spliced = stmts[:i] + stmt.then_body + stmts[i + 1 :]
            yield spliced if spliced else (Null(),)
        if isinstance(stmt, (While, For)):
            spliced = stmts[:i] + stmt.loop_body + stmts[i + 1 :]
            yield spliced if spliced else (Null(),)
        for slot, inner in _bodies_of_stmt(stmt):
            for edited in _body_edits(inner):
                yield stmts[:i] + (_with_body(stmt, slot, make_body(edited)),) + stmts[i + 1 :]


def _leaves(behavior: Behavior) -> Iterator[LeafBehavior]:
    if isinstance(behavior, LeafBehavior):
        yield behavior
    else:
        for sub in behavior.subs:
            yield from _leaves(sub)


def _stmt_candidates(spec: Specification) -> Iterator[Specification]:
    for leaf in _leaves(spec.top):
        for edited in _body_edits(leaf.stmt_body):
            def build(node: Behavior, edited=edited) -> Behavior:
                return LeafBehavior(
                    node.name, make_body(edited), list(node.decls), node.doc
                )

            top = _replace_node(spec.top, leaf.name, build)
            if top is not None:
                yield _rebuild(spec, top)
    for sub in spec.subprograms.values():
        for edited in _body_edits(sub.stmt_body):
            replacement = Subprogram(
                sub.name, sub.params, make_body(edited), tuple(sub.decls), sub.doc
            )
            subprograms = [
                replacement if s.name == sub.name else s
                for s in spec.subprograms.values()
            ]
            yield _rebuild(spec, _copy_behavior(spec.top), subprograms=subprograms)


# expression-level edits


def _expr_shrinks(expr: Expr) -> List[Expr]:
    """Strictly simpler replacements for one expression node."""
    out: List[Expr] = []
    if isinstance(expr, BinOp):
        out += [expr.left, expr.right]
    elif isinstance(expr, UnaryOp):
        out.append(expr.operand)
    elif isinstance(expr, Index):
        out.append(Const(0))
    if not isinstance(expr, Const):
        out += [Const(0), Const(True)]
    return out


def _exprs_of_stmt(stmt: Stmt) -> List[Tuple[str, Expr]]:
    if isinstance(stmt, Assign):
        return [("value", stmt.value)]
    if isinstance(stmt, SignalAssign):
        return [("value", stmt.value)]
    if isinstance(stmt, If):
        return [("cond", stmt.cond)]
    if isinstance(stmt, While):
        return [("cond", stmt.cond)]
    if isinstance(stmt, For):
        return [("start", stmt.start), ("stop", stmt.stop)]
    if isinstance(stmt, Wait) and stmt.until is not None:
        return [("until", stmt.until)]
    if isinstance(stmt, CallStmt):
        return [(f"arg:{i}", a) for i, a in enumerate(stmt.args)]
    return []


def _with_expr(stmt: Stmt, slot: str, expr: Expr) -> Stmt:
    if isinstance(stmt, Assign):
        return Assign(stmt.target, expr)
    if isinstance(stmt, SignalAssign):
        return SignalAssign(stmt.target, expr)
    if isinstance(stmt, If):
        return If(expr, stmt.then_body, stmt.elifs, stmt.else_body)
    if isinstance(stmt, While):
        return While(expr, stmt.loop_body, stmt.expected_iterations)
    if isinstance(stmt, For):
        if slot == "start":
            return For(stmt.variable, expr, stmt.stop, stmt.loop_body)
        return For(stmt.variable, stmt.start, expr, stmt.loop_body)
    if isinstance(stmt, Wait):
        return Wait(until=expr, on=stmt.on, delay=stmt.delay)
    if isinstance(stmt, CallStmt):
        index = int(slot.split(":")[1])
        args = tuple(expr if i == index else a for i, a in enumerate(stmt.args))
        return CallStmt(stmt.callee, args)
    raise AssertionError(slot)


def _expr_body_edits(stmts: tuple) -> Iterator[tuple]:
    for i, stmt in enumerate(stmts):
        for slot, expr in _exprs_of_stmt(stmt):
            for smaller in _expr_shrinks(expr):
                yield stmts[:i] + (_with_expr(stmt, slot, smaller),) + stmts[i + 1 :]
        for slot, inner in _bodies_of_stmt(stmt):
            for edited in _expr_body_edits(inner):
                yield stmts[:i] + (_with_body(stmt, slot, make_body(edited)),) + stmts[i + 1 :]


def _expr_candidates(spec: Specification) -> Iterator[Specification]:
    for leaf in _leaves(spec.top):
        for edited in _expr_body_edits(leaf.stmt_body):
            def build(node: Behavior, edited=edited) -> Behavior:
                return LeafBehavior(
                    node.name, make_body(edited), list(node.decls), node.doc
                )

            top = _replace_node(spec.top, leaf.name, build)
            if top is not None:
                yield _rebuild(spec, top)
    # transition conditions
    for composite in _composites(spec.top):
        for k, arc in enumerate(composite.transitions):
            if arc.condition is None:
                shrinks: List[Optional[Expr]] = []
            else:
                shrinks = [None] + [
                    e for e in _expr_shrinks(arc.condition)
                ]
            for smaller in shrinks:
                def build(node: Behavior, k=k, smaller=smaller) -> Behavior:
                    arcs = list(node.transitions)
                    arcs[k] = Transition(arcs[k].source, smaller, arcs[k].target)
                    return CompositeBehavior(
                        node.name,
                        [_copy_behavior(s) for s in node.subs],
                        mode=node.mode,
                        transitions=arcs,
                        initial=node.initial,
                        decls=list(node.decls),
                        doc=node.doc,
                    )

                top = _replace_node(spec.top, composite.name, build)
                if top is not None:
                    yield _rebuild(spec, top)


def _drop_subprogram_candidates(spec: Specification) -> Iterator[Specification]:
    for name in spec.subprograms:
        remaining = [s for s in spec.subprograms.values() if s.name != name]
        yield _rebuild(spec, _copy_behavior(spec.top), subprograms=remaining)


def _drop_variable_candidates(spec: Specification) -> Iterator[Specification]:
    for k in range(len(spec.variables)):
        variables = list(spec.variables)
        del variables[k]
        yield _rebuild(spec, _copy_behavior(spec.top), variables=variables)


def _drop_local_decl_candidates(spec: Specification) -> Iterator[Specification]:
    def walk(behavior: Behavior) -> Iterator[Behavior]:
        if behavior.decls:
            yield behavior
        if isinstance(behavior, CompositeBehavior):
            for sub in behavior.subs:
                yield from walk(sub)

    for owner in walk(spec.top):
        for k in range(len(owner.decls)):
            def build(node: Behavior, k=k) -> Behavior:
                copy = _copy_behavior(node)
                del copy.decls[k]
                return copy

            top = _replace_node(spec.top, owner.name, build)
            if top is not None:
                yield _rebuild(spec, top)
    for sub in spec.subprograms.values():
        for k in range(len(sub.decls)):
            decls = list(sub.decls)
            del decls[k]
            replacement = Subprogram(
                sub.name, sub.params, sub.stmt_body, tuple(decls), sub.doc
            )
            subprograms = [
                replacement if s.name == sub.name else s
                for s in spec.subprograms.values()
            ]
            yield _rebuild(spec, _copy_behavior(spec.top), subprograms=subprograms)


def _candidates(spec: Specification) -> Iterator[Specification]:
    yield from _drop_behavior_candidates(spec)
    yield from _promote_candidates(spec)
    yield from _stmt_candidates(spec)
    yield from _drop_transition_candidates(spec)
    yield from _drop_subprogram_candidates(spec)
    yield from _drop_variable_candidates(spec)
    yield from _drop_local_decl_candidates(spec)
    yield from _expr_candidates(spec)


# -- the greedy loop ---------------------------------------------------------


def _size(spec: Specification) -> int:
    return len(print_specification(spec))


def shrink_spec(
    spec: Specification,
    predicate: Callable[[Specification], bool],
    max_rounds: int = 400,
) -> Specification:
    """Greedily minimize ``spec`` while ``predicate`` holds.

    ``predicate`` receives structurally fresh, validated candidates and
    must return True when the candidate still fails.  The original is
    returned unchanged if no smaller failing candidate exists (the
    original itself is never re-judged)."""
    current = spec
    current_size = _size(spec)
    for _ in range(max_rounds):
        improved = False
        for candidate in _candidates(current):
            try:
                candidate.validate()
            except ReproError:
                continue
            if _size(candidate) >= current_size:
                continue
            try:
                still_fails = predicate(candidate)
            except ReproError:
                continue
            if still_fails:
                current = candidate
                current_size = _size(candidate)
                improved = True
                break
        if not improved:
            return current
    return current


def restricted_assignment(
    spec: Specification,
    assignment: Dict[str, str],
    default_component: Optional[str] = None,
) -> Dict[str, str]:
    """Project a partition assignment onto a shrunk specification:
    entries whose object vanished are dropped, and orphaned leaves /
    unassigned internal variables fall back to ``default_component``
    (first component of the original assignment when omitted)."""
    from repro.spec.variable import Role, StorageClass

    components: List[str] = []
    for component in assignment.values():
        if component not in components:
            components.append(component)
    fallback = default_component or (components[0] if components else "PROC")
    restricted = {
        obj: comp
        for obj, comp in assignment.items()
        if spec.has_behavior(obj)
        or any(v.name == obj for v in spec.variables)
    }

    def resolved(leaf_name: str) -> bool:
        node = spec.find_behavior(leaf_name)
        while node is not None:
            if node.name in restricted:
                return True
            node = node.parent
        return False

    spec.link()
    for leaf in spec.leaf_behaviors():
        if not resolved(leaf.name):
            restricted[leaf.name] = fallback
    for v in spec.variables:
        if (
            v.kind is StorageClass.VARIABLE
            and v.role is Role.INTERNAL
            and v.name not in restricted
        ):
            restricted[v.name] = fallback
    return restricted


# -- the regression corpus ---------------------------------------------------


@dataclass
class CorpusEntry:
    """One persisted regression case."""

    name: str
    bug: str
    spec_text: str
    partition: Optional[Dict[str, str]] = None
    input_vectors: List[Dict[str, int]] = field(default_factory=list)

    def load_spec(self) -> Specification:
        spec = parse(self.spec_text)
        spec.validate()
        return spec

    def load_partition(self, spec: Specification) -> Optional[Partition]:
        if not self.partition:
            return None
        return Partition.from_mapping(spec, self.partition, name=self.name)


def _format_mapping(mapping: Dict[str, object]) -> str:
    return ", ".join(f"{k}={v}" for k, v in mapping.items())


def _parse_mapping(text: str) -> Dict[str, str]:
    out: Dict[str, str] = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        key, _, value = item.partition("=")
        out[key.strip()] = value.strip()
    return out


def save_corpus_entry(directory: str, entry: CorpusEntry) -> str:
    """Write ``entry`` as ``<directory>/<name>.spec`` and return the
    path."""
    lines = ["-- fuzz-corpus: v1", f"-- bug: {entry.bug}"]
    if entry.partition:
        lines.append(f"-- partition: {_format_mapping(entry.partition)}")
    seen = set()
    for vector in entry.input_vectors:
        if not vector:
            continue
        formatted = _format_mapping(vector)
        if formatted not in seen:
            seen.add(formatted)
            lines.append(f"-- inputs: {formatted}")
    text = "\n".join(lines) + "\n" + entry.spec_text
    if not text.endswith("\n"):
        text += "\n"
    path = os.path.join(directory, f"{entry.name}.spec")
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        handle.write(text)
    return path


def load_corpus_entry(path: str) -> CorpusEntry:
    """Read one ``.spec`` corpus file."""
    with open(path) as handle:
        text = handle.read()
    name = os.path.splitext(os.path.basename(path))[0]
    bug = ""
    partition: Optional[Dict[str, str]] = None
    vectors: List[Dict[str, int]] = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped.startswith("--"):
            continue
        directive = stripped[2:].strip()
        if directive.startswith("bug:"):
            bug = directive[len("bug:"):].strip()
        elif directive.startswith("partition:"):
            partition = _parse_mapping(directive[len("partition:"):])
        elif directive.startswith("inputs:"):
            vectors.append(
                {
                    k: int(v)
                    for k, v in _parse_mapping(
                        directive[len("inputs:"):]
                    ).items()
                }
            )
    return CorpusEntry(
        name=name,
        bug=bug,
        spec_text=text,
        partition=partition,
        input_vectors=vectors,
    )


def iter_corpus(directory: str) -> List[CorpusEntry]:
    """All corpus entries under ``directory``, name-sorted (stable
    replay order)."""
    if not os.path.isdir(directory):
        return []
    return [
        load_corpus_entry(os.path.join(directory, filename))
        for filename in sorted(os.listdir(directory))
        if filename.endswith(".spec")
    ]
