"""Seeded random SpecCharts generator.

Emits *valid* hierarchical specifications — nested sequential and
concurrent composites, forward-only transition arcs, behavior-local
declarations (ints, booleans, arrays, enums), subprogram calls with
``in``/``out``/``inout`` parameters, and the full expression grammar
including division/mod edge operands — together with a matching
two-component partition, so every generated case can be pushed through
the parser/printer, both evaluation strategies, and the whole
refinement pipeline.

Design constraints baked into the generator (each one mirrors a
documented property of the stack, so that every oracle failure is a
real bug rather than generator noise):

* **Termination.** Transition arcs only point *forward* (to a later
  sibling or to completion), ``for`` bounds are constants, and every
  ``while`` is a counted loop over a dedicated local that the loop body
  never reassigns.  A run of a default-profile spec therefore always
  quiesces with ``completed=True``.
* **Race freedom.** Children of a concurrent composite receive
  pairwise-disjoint slices of the writable variable pool (inputs are
  shared read-only), so original and refined schedules cannot observe
  different interleavings.
* **Refinable subprograms.** Subprogram bodies only touch their own
  parameters and locals — the refiner rejects bodies that reach into
  partitioned globals by design.
* **Division safety.** Divisors are non-zero constants or ``abs(e)+k``
  unless :attr:`GeneratorConfig.div_zero_probability` says otherwise
  (the error-parity slice of a campaign turns it on deliberately).
* **Feature slices.** Signals and wait statements make observable
  traces schedule-dependent, so they are opt-in
  (:attr:`GeneratorConfig.signals` / :attr:`GeneratorConfig.waits`) and
  a campaign only routes such specs through the round-trip and
  walker-parity oracles, never the refinement oracle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.partition.partition import Partition
from repro.spec.behavior import Behavior, Transition
from repro.spec.builder import (
    assign,
    call,
    conc,
    for_,
    if_,
    leaf,
    on_complete,
    sassign,
    seq,
    skip,
    spec as make_spec,
    transition,
    wait_for,
    wait_until,
    while_,
)
from repro.spec.expr import BinOp, Const, Expr, Index, UnaryOp, VarRef
from repro.spec.specification import Specification
from repro.spec.stmt import Stmt
from repro.spec.subprogram import Direction, Param, Subprogram
from repro.spec.types import BOOL, EnumType, array_of, int_type
from repro.spec.variable import Role, StorageClass, Variable, signal, variable

__all__ = [
    "GeneratorConfig",
    "GeneratedCase",
    "generate_case",
    "generate_input_vectors",
    "generate_pipeline_case",
    "generate_mesh_case",
    "generate_controller_case",
]

_INT = int_type(16)
_BYTE = int_type(8)

#: Interesting integer constants (edge operands for arithmetic).
_EDGE_INTS = (0, 1, -1, 2, 7, -8, 255, -256, 32767, -32768)

#: Non-zero divisor constants.
_DIVISORS = (1, -1, 2, 3, -3, 7, 16)


@dataclass(frozen=True)
class GeneratorConfig:
    """Tunable knobs of the random generator.

    ``budget`` is an approximate statement budget for the whole spec;
    bigger budgets mean more behaviors, deeper nesting, and longer
    bodies.
    """

    budget: int = 40
    max_depth: int = 3
    max_children: int = 3
    subprograms: bool = True
    arrays: bool = True
    enums: bool = True
    #: Allow signal declarations + ``<=`` assignments (parity/round-trip
    #: slices only: signal update collapsing is schedule-dependent).
    signals: bool = False
    #: Allow wait statements (same caveat as ``signals``).
    waits: bool = False
    #: Probability that a ``/`` or ``mod`` right operand is the literal
    #: zero (exercises error-message parity between eval strategies).
    div_zero_probability: float = 0.0
    #: Probability the partition collapses to a single component.
    single_component_probability: float = 0.1


@dataclass
class GeneratedCase:
    """One fuzzing case: a specification plus a matching partition."""

    seed: int
    config: GeneratorConfig
    spec: Specification
    partition: Partition

    @property
    def refinable(self) -> bool:
        """True when the case may go through the refinement oracle."""
        return not (self.config.signals or self.config.waits or
                    self.config.div_zero_probability > 0)


@dataclass
class _Scope:
    """Names visible to the statement generator at one program point."""

    int_read: List[str] = field(default_factory=list)
    int_write: List[str] = field(default_factory=list)
    bool_read: List[str] = field(default_factory=list)
    bool_write: List[str] = field(default_factory=list)
    arrays: List[Tuple[str, int]] = field(default_factory=list)
    enums: List[Tuple[str, EnumType]] = field(default_factory=list)
    sig_write: List[str] = field(default_factory=list)

    def child(self) -> "_Scope":
        return _Scope(
            list(self.int_read), list(self.int_write),
            list(self.bool_read), list(self.bool_write),
            list(self.arrays), list(self.enums), list(self.sig_write),
        )


class _Generator:
    def __init__(self, seed: int, config: GeneratorConfig):
        self.rng = random.Random(seed)
        self.config = config
        self.budget = config.budget
        self._behavior_n = 0
        self._local_n = 0
        self._loop_n = 0
        self._enum = EnumType("mode", ("r", "g", "b"))
        self._subprograms: List[Subprogram] = []

    # -- naming ----------------------------------------------------------

    def _behavior_name(self) -> str:
        self._behavior_n += 1
        return f"b{self._behavior_n}"

    def _local_name(self) -> str:
        self._local_n += 1
        return f"l{self._local_n}"

    def _loop_name(self) -> str:
        self._loop_n += 1
        return f"i{self._loop_n}"

    # -- expressions -----------------------------------------------------

    def _int_leaf(self, scope: _Scope) -> Expr:
        rng = self.rng
        roll = rng.random()
        if roll < 0.45 and scope.int_read:
            return VarRef(rng.choice(scope.int_read))
        if roll < 0.55 and scope.arrays:
            name, length = rng.choice(scope.arrays)
            return Index(VarRef(name), Const(rng.randrange(length)))
        if roll < 0.8:
            return Const(rng.choice(_EDGE_INTS))
        return Const(rng.randint(-40, 40))

    def _divisor(self, scope: _Scope, depth: int) -> Expr:
        rng = self.rng
        if rng.random() < self.config.div_zero_probability:
            return Const(0)
        if rng.random() < 0.7 or depth <= 0:
            return Const(rng.choice(_DIVISORS))
        # abs(e) + k is always >= k > 0
        return BinOp(
            "+",
            UnaryOp("abs", self._int_expr(scope, depth - 1)),
            Const(rng.randint(1, 5)),
        )

    def _int_expr(self, scope: _Scope, depth: int) -> Expr:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.35:
            return self._int_leaf(scope)
        roll = rng.random()
        if roll < 0.15:
            op = rng.choice(("-", "abs"))
            return UnaryOp(op, self._int_expr(scope, depth - 1))
        op = rng.choice(("+", "-", "*", "+", "-", "/", "mod"))
        left = self._int_expr(scope, depth - 1)
        if op in ("/", "mod"):
            return BinOp(op, left, self._divisor(scope, depth))
        return BinOp(op, left, self._int_expr(scope, depth - 1))

    def _bool_expr(self, scope: _Scope, depth: int) -> Expr:
        rng = self.rng
        roll = rng.random()
        if depth <= 0 or roll < 0.35:
            if scope.bool_read and rng.random() < 0.5:
                return VarRef(rng.choice(scope.bool_read))
            if scope.enums and rng.random() < 0.3:
                name, enum = rng.choice(scope.enums)
                op = rng.choice(("=", "/="))
                return BinOp(op, VarRef(name), Const(rng.choice(enum.literals)))
            op = rng.choice(("=", "/=", "<", "<=", ">", ">="))
            return BinOp(op, self._int_expr(scope, 1), self._int_expr(scope, 1))
        if roll < 0.5:
            return UnaryOp("not", self._bool_expr(scope, depth - 1))
        if roll < 0.6:
            return Const(rng.random() < 0.5)
        op = rng.choice(("and", "or"))
        return BinOp(
            op, self._bool_expr(scope, depth - 1), self._bool_expr(scope, depth - 1)
        )

    # -- statements ------------------------------------------------------

    def _statement(self, scope: _Scope, depth: int) -> Optional[Stmt]:
        rng = self.rng
        self.budget -= 1
        choices: List[str] = []
        if scope.int_write:
            choices += ["assign"] * 5
        if scope.bool_write:
            choices += ["bassign"] * 2
        if scope.arrays:
            choices += ["aassign", "aggregate"]
        if scope.enums:
            choices += ["eassign"]
        if scope.sig_write and self.config.signals:
            choices += ["sassign"] * 2
        if self.config.waits:
            choices += ["wait"]
        if depth > 0 and self.budget > 3:
            choices += ["if", "if", "for"]
            if scope.int_write:
                choices += ["while"]
        if self._subprograms and scope.int_write:
            choices += ["call", "call"]
        choices += ["null"]
        kind = rng.choice(choices)

        if kind == "assign":
            return assign(rng.choice(scope.int_write), self._int_expr(scope, 2))
        if kind == "bassign":
            return assign(rng.choice(scope.bool_write), self._bool_expr(scope, 2))
        if kind == "aassign":
            name, length = rng.choice(scope.arrays)
            target = Index(VarRef(name), Const(rng.randrange(length)))
            return assign(target, self._int_expr(scope, 1))
        if kind == "aggregate":
            name, length = rng.choice(scope.arrays)
            values = tuple(rng.randint(-100, 100) for _ in range(length))
            return assign(name, Const(values))
        if kind == "eassign":
            name, enum = rng.choice(scope.enums)
            return assign(name, Const(rng.choice(enum.literals)))
        if kind == "sassign":
            return sassign(rng.choice(scope.sig_write), self._int_expr(scope, 1))
        if kind == "wait":
            if rng.random() < 0.7:
                return wait_for(rng.randint(1, 3))
            return wait_until(self._bool_expr(scope, 1))
        if kind == "if":
            then = self._statements(scope, depth - 1, rng.randint(1, 2))
            orelse = (
                self._statements(scope, depth - 1, rng.randint(1, 2))
                if rng.random() < 0.5
                else ()
            )
            return if_(self._bool_expr(scope, 2), then, orelse)
        if kind == "for":
            var_name = self._loop_name()
            if scope.arrays and rng.random() < 0.4:
                # in-bounds array walk
                arr, length = rng.choice(scope.arrays)
                inner = scope.child()
                inner.int_read.append(var_name)
                body = list(self._statements(inner, depth - 1, rng.randint(1, 2)))
                target = Index(VarRef(arr), VarRef(var_name))
                body.append(assign(target, self._int_expr(inner, 1)))
                return for_(var_name, 0, length - 1, body)
            start = rng.randint(-1, 2)
            stop = start + rng.randint(-1, 3)  # stop < start: zero trips
            inner = scope.child()
            inner.int_read.append(var_name)
            body = self._statements(inner, depth - 1, rng.randint(1, 2))
            return for_(var_name, start, stop, body)
        if kind == "while":
            counter = rng.choice(scope.int_write)
            trips = rng.randint(1, 3)
            inner = scope.child()
            # the body must never touch the counter
            inner.int_write = [n for n in inner.int_write if n != counter]
            body = list(self._statements(inner, depth - 1, rng.randint(1, 2)))
            body.append(assign(counter, VarRef(counter) - 1))
            loop = while_(VarRef(counter) > 0, body, expected=trips)
            return _StmtPair(assign(counter, trips), loop)
        if kind == "call":
            return self._call(scope)
        return skip()

    def _statements(self, scope: _Scope, depth: int, count: int) -> Tuple[Stmt, ...]:
        out: List[Stmt] = []
        for _ in range(count):
            if self.budget <= 0:
                break
            stmt = self._statement(scope, depth)
            if isinstance(stmt, _StmtPair):
                out.extend(stmt.stmts)
            elif stmt is not None:
                out.append(stmt)
        if not out:
            out.append(skip())
        return tuple(out)

    # -- subprograms -----------------------------------------------------

    def _make_subprograms(self) -> List[Subprogram]:
        rng = self.rng
        subs: List[Subprogram] = []
        if not self.config.subprograms:
            return subs
        for n in range(rng.randint(0, 2)):
            name = f"p{n + 1}"
            shape = rng.choice(("in_out", "in_in_out", "inout"))
            if shape == "in_out":
                params = (
                    Param("a", _INT, Direction.IN),
                    Param("r", _INT, Direction.OUT),
                )
            elif shape == "in_in_out":
                params = (
                    Param("a", _INT, Direction.IN),
                    Param("b", _INT, Direction.IN),
                    Param("r", _INT, Direction.OUT),
                )
            else:
                params = (Param("a", _INT, Direction.INOUT),)
            local = variable(self._local_name(), _INT, init=0)
            scope = _Scope(
                int_read=[p.name for p in params if p.direction is not Direction.OUT]
                + [local.name],
                int_write=[local.name],
            )
            body = list(self._statements(scope, 1, rng.randint(1, 2)))
            result = "r" if shape != "inout" else "a"
            body.append(assign(result, self._int_expr(scope, 2)))
            subs.append(Subprogram(name, params, tuple(body), decls=(local,)))
        return subs

    def _call(self, scope: _Scope) -> Stmt:
        rng = self.rng
        sub = rng.choice(self._subprograms)
        args = []
        for param in sub.params:
            if param.direction is Direction.IN:
                args.append(self._int_expr(scope, 1))
            else:
                args.append(VarRef(rng.choice(scope.int_write)))
        return call(sub.name, *args)

    # -- behaviors -------------------------------------------------------

    def _leaf_behavior(self, scope: _Scope, depth: int) -> Behavior:
        rng = self.rng
        scope = scope.child()
        decls: List[Variable] = []
        if rng.random() < 0.5:
            name = self._local_name()
            decls.append(variable(name, _INT, init=rng.choice((0, 1, -1))))
            scope.int_read.append(name)
            scope.int_write.append(name)
        if rng.random() < 0.25:
            name = self._local_name()
            decls.append(variable(name, BOOL, init=rng.random() < 0.5))
            scope.bool_read.append(name)
            scope.bool_write.append(name)
        if self.config.arrays and rng.random() < 0.3:
            name = self._local_name()
            length = rng.randint(2, 4)
            decls.append(
                variable(name, array_of(_BYTE, length), init=(0,) * length)
            )
            scope.arrays.append((name, length))
        if self.config.enums and rng.random() < 0.2:
            name = self._local_name()
            decls.append(
                variable(name, self._enum, init=rng.choice(self._enum.literals))
            )
            scope.enums.append((name, self._enum))
        stmts = self._statements(scope, min(depth, 2), rng.randint(1, 4))
        return leaf(self._behavior_name(), *stmts, decls=decls)

    def _behavior(self, scope: _Scope, depth: int) -> Behavior:
        rng = self.rng
        if depth >= self.config.max_depth or self.budget < 6 or rng.random() < 0.4:
            return self._leaf_behavior(scope, 2)
        n = rng.randint(2, self.config.max_children)
        if rng.random() < 0.6:
            children = [self._behavior(scope, depth + 1) for _ in range(n)]
            return self._sequential(children, scope)
        return self._concurrent(scope, depth, n)

    def _sequential(self, children: Sequence[Behavior], scope: _Scope) -> Behavior:
        rng = self.rng
        arcs: List[Transition] = []
        names = [c.name for c in children]
        for i, name in enumerate(names):
            if rng.random() < 0.4:
                # conditional forward skip (or early completion)
                j = rng.randint(i + 1, len(names))
                cond = self._bool_expr(scope, 2)
                if j == len(names):
                    arcs.append(on_complete(name, cond))
                else:
                    arcs.append(transition(name, cond, names[j]))
            if i + 1 < len(names):
                arcs.append(transition(name, None, names[i + 1]))
            elif rng.random() < 0.7:
                arcs.append(on_complete(name))
            # else: no arc from the last child — implicit completion
        initial = None
        if rng.random() < 0.1 and len(names) > 1:
            initial = rng.choice(names[1:])
        return seq(self._behavior_name(), children, transitions=arcs, initial=initial)

    def _concurrent(self, scope: _Scope, depth: int, n: int) -> Behavior:
        rng = self.rng
        # split every writable resource disjointly among the children;
        # inputs (int_read minus int_write) stay shared.
        shared_reads = [v for v in scope.int_read if v not in scope.int_write]
        writables = list(scope.int_write)
        bools = list(scope.bool_write)
        sigs = list(scope.sig_write)
        rng.shuffle(writables)
        children: List[Behavior] = []
        for k in range(n):
            share = writables[k::n]
            child_scope = _Scope(
                int_read=shared_reads + share,
                int_write=share,
                bool_read=bools[k::n],
                bool_write=bools[k::n],
                sig_write=sigs[k::n],
            )
            children.append(self._behavior(child_scope, depth + 1))
        return conc(self._behavior_name(), children)

    # -- whole specification ---------------------------------------------

    def generate(self) -> Tuple[Specification, Dict[str, str]]:
        rng = self.rng
        self._subprograms = self._make_subprograms()

        n_inputs = rng.randint(1, 2)
        n_globals = rng.randint(2, 4)
        variables: List[Variable] = []
        inputs = [f"in{i + 1}" for i in range(n_inputs)]
        globals_ = [f"g{i + 1}" for i in range(n_globals)]
        outputs = ["out1", "out2"]
        for name in inputs:
            variables.append(
                variable(name, _INT, init=rng.randint(-8, 8), role=Role.INPUT)
            )
        for name in globals_:
            variables.append(variable(name, _INT, init=rng.choice((0, 1, -1, 5))))
        for name in outputs:
            variables.append(variable(name, _INT, init=0, role=Role.OUTPUT))
        sigs: List[str] = []
        if self.config.signals:
            sigs = ["sig1"]
            variables.append(
                Variable(
                    "sig1", _INT, init=0,
                    kind=StorageClass.SIGNAL, role=Role.OUTPUT,
                )
            )

        scope = _Scope(
            int_read=inputs + globals_ + outputs,
            int_write=globals_ + outputs,
            sig_write=sigs,
        )

        n = rng.randint(2, self.config.max_children)
        if rng.random() < 0.5:
            children = [self._behavior(scope, 1) for _ in range(n)]
            top = self._sequential(children, scope)
        else:
            top = self._concurrent(scope, 0, n)

        specification = make_spec(
            "fuzz_case",
            top,
            variables=variables,
            subprograms=self._subprograms,
        )
        specification.validate()

        components = ("PROC", "ASIC")
        single = rng.random() < self.config.single_component_probability
        assignment: Dict[str, str] = {}
        for child in top.subs:
            assignment[child.name] = (
                components[0] if single else rng.choice(components)
            )
        for name in globals_:
            assignment[name] = components[0] if single else rng.choice(components)
        return specification, assignment


class _StmtPair:
    """A statement expanding to a two-statement sequence (counted
    loops need their counter initialised immediately before)."""

    def __init__(self, *stmts: Stmt):
        self.stmts = stmts


def generate_case(
    seed: int, config: Optional[GeneratorConfig] = None
) -> GeneratedCase:
    """Generate one validated specification + partition for ``seed``.

    The same ``(seed, config)`` always yields a byte-identical case.
    """
    config = config or GeneratorConfig()
    gen = _Generator(seed, config)
    specification, assignment = gen.generate()
    partition = Partition.from_mapping(
        specification, assignment, name=f"fuzz_{seed}"
    )
    return GeneratedCase(seed, config, specification, partition)


# -- app families ------------------------------------------------------------
#
# Topology-constrained generators for the workload registry
# (:mod:`repro.apps.workloads`): each family fixes the architecture of
# the application — the behavior tree, the dataflow variables and the
# partition cut — and fills the leaf bodies from the seeded statement
# generator.  All family invariants of :func:`generate_case` hold
# (forward arcs, counted loops, disjoint concurrent writes, no
# signals/waits), so every family case is refinable and deterministic.


def _family_config(budget: int) -> GeneratorConfig:
    return GeneratorConfig(
        budget=budget,
        max_depth=2,
        enums=False,
        single_component_probability=0.0,
    )


def _family_leaf(
    gen: _Generator,
    name: str,
    reads: Sequence[str],
    writes: Sequence[str],
) -> Behavior:
    """A named leaf whose body is generated over (``reads``,
    ``writes``) and is guaranteed to drive every ``writes`` target."""
    rng = gen.rng
    local = gen._local_name()
    decls = [variable(local, _INT, init=rng.choice((0, 1, -1)))]
    scope = _Scope(
        int_read=list(dict.fromkeys(list(reads) + list(writes) + [local])),
        int_write=list(writes) + [local],
    )
    stmts = list(gen._statements(scope, 2, rng.randint(2, 3)))
    for target in writes:
        stmts.append(assign(target, gen._int_expr(scope, 2)))
    return leaf(name, *stmts, decls=decls)


def _family_case(
    gen: _Generator,
    seed: int,
    family: str,
    top: Behavior,
    variables: Sequence[Variable],
    assignment: Dict[str, str],
) -> GeneratedCase:
    specification = make_spec(
        f"{family}_{seed}",
        top,
        variables=list(variables),
        subprograms=gen._subprograms,
    )
    specification.validate()
    partition = Partition.from_mapping(
        specification, assignment, name=f"{family}_{seed}"
    )
    return GeneratedCase(seed, gen.config, specification, partition)


def generate_pipeline_case(
    seed: int, stages: int = 4, config: Optional[GeneratorConfig] = None
) -> GeneratedCase:
    """A linear ``stages``-stage pipeline application.

    Stage *k* reads the (k-1)-th stage-boundary variable and drives the
    k-th; the final stage drives the outputs.  The partition cuts the
    pipeline in half — front half on the processor, back half on the
    ASIC — with each boundary variable homed at its producer.
    """
    config = config or _family_config(budget=6 * stages)
    gen = _Generator(seed, config)
    gen._subprograms = gen._make_subprograms()
    rng = gen.rng

    inputs = ["in1", "in2"]
    bounds = [f"s{i}" for i in range(1, stages)]
    variables = [
        variable(name, _INT, init=rng.randint(-8, 8), role=Role.INPUT)
        for name in inputs
    ]
    variables += [variable(name, _INT, init=0) for name in bounds]
    variables += [
        variable(name, _INT, init=0, role=Role.OUTPUT)
        for name in ("out1", "out2")
    ]

    children: List[Behavior] = []
    for k in range(stages):
        reads = inputs + ([bounds[k - 1]] if k else [])
        writes = [bounds[k]] if k < stages - 1 else ["out1", "out2"]
        children.append(_family_leaf(gen, f"stage{k + 1}", reads, writes))
    arcs: List[Transition] = [
        transition(children[i].name, None, children[i + 1].name)
        for i in range(stages - 1)
    ]
    arcs.append(on_complete(children[-1].name))
    top = seq("pipe", children, transitions=arcs)

    cut = max(1, stages // 2)
    assignment = {
        child.name: "PROC" if k < cut else "ASIC"
        for k, child in enumerate(children)
    }
    for k, name in enumerate(bounds):
        # boundary k is produced by stage k (0-based child index)
        assignment[name] = assignment[children[k].name]
    return _family_case(gen, seed, "pipeline", top, variables, assignment)


def generate_mesh_case(
    seed: int, workers: int = 3, config: Optional[GeneratorConfig] = None
) -> GeneratedCase:
    """A producer/consumer mesh application.

    A producer fills one feed variable per worker, ``workers`` children
    of a concurrent composite consume the (now read-only) feeds and
    drive pairwise-disjoint result variables, and a combiner reduces
    the results into the outputs.  The partition puts the mesh on the
    ASIC and the producer/combiner on the processor.
    """
    config = config or _family_config(budget=8 * workers)
    gen = _Generator(seed, config)
    gen._subprograms = gen._make_subprograms()
    rng = gen.rng

    inputs = ["in1", "in2"]
    feeds = [f"p{j + 1}" for j in range(workers)]
    results = [f"r{j + 1}" for j in range(workers)]
    variables = [
        variable(name, _INT, init=rng.randint(-8, 8), role=Role.INPUT)
        for name in inputs
    ]
    variables += [variable(name, _INT, init=0) for name in feeds + results]
    variables += [
        variable(name, _INT, init=0, role=Role.OUTPUT)
        for name in ("out1", "out2")
    ]

    produce = _family_leaf(gen, "produce", inputs, feeds)
    mesh = conc(
        "mesh",
        [
            _family_leaf(gen, f"worker{j + 1}", inputs + feeds, [results[j]])
            for j in range(workers)
        ],
    )
    combine = _family_leaf(gen, "combine", results, ["out1", "out2"])
    top = seq(
        "mesh_top",
        [produce, mesh, combine],
        transitions=[
            transition("produce", None, "mesh"),
            transition("mesh", None, "combine"),
            on_complete("combine"),
        ],
    )

    assignment = {"produce": "PROC", "mesh": "ASIC", "combine": "PROC"}
    for name in feeds:
        assignment[name] = "PROC"
    for name in results:
        assignment[name] = "ASIC"
    return _family_case(gen, seed, "mesh", top, variables, assignment)


def generate_controller_case(
    seed: int, handlers: int = 3, config: Optional[GeneratorConfig] = None
) -> GeneratedCase:
    """An interrupt-driven controller application.

    A dispatch loop polls an event code derived from the IRQ profile
    and the service counter, takes a conditional arc to exactly one of
    ``handlers`` handler behaviors, and acknowledges — repeating until
    ``event_count`` events are served (the port name matches the
    campaign's pinned-input patterns, so sweep seeds never unbound the
    loop).  The partition keeps poll/ack control on the processor and
    every handler on the ASIC.
    """
    config = config or _family_config(budget=8 * handlers)
    gen = _Generator(seed, config)
    gen._subprograms = gen._make_subprograms()
    rng = gen.rng

    states = [f"h{j + 1}_state" for j in range(handlers)]
    variables = [
        variable("irq_profile", _INT, init=rng.randint(0, 40),
                 role=Role.INPUT),
        variable("event_count", _INT, init=3, role=Role.INPUT),
    ]
    variables += [variable("evt", _INT, init=0),
                  variable("served", _INT, init=0)]
    variables += [variable(name, _INT, init=0) for name in states]
    variables += [
        variable(name, _INT, init=0, role=Role.OUTPUT)
        for name in ("out1", "out2")
    ]

    init = leaf(
        "boot",
        assign("served", Const(0)),
        assign("evt", Const(0)),
        *(
            assign(name, Const(rng.randint(-4, 4)))
            for name in states
        ),
    )
    poll = leaf(
        "poll",
        assign(
            "evt",
            BinOp(
                "mod",
                UnaryOp(
                    "abs",
                    BinOp(
                        "+",
                        VarRef("irq_profile"),
                        BinOp("*", VarRef("served"), Const(5)),
                    ),
                ),
                Const(handlers),
            ),
        ),
    )
    handler_behaviors = [
        _family_leaf(
            gen,
            f"handler{j + 1}",
            ["irq_profile", "evt", "served"],
            [states[j]],
        )
        for j in range(handlers)
    ]
    total = VarRef("evt")
    for name in states:
        total = BinOp("+", total, VarRef(name))
    ack = leaf(
        "ack",
        assign("served", BinOp("+", VarRef("served"), Const(1))),
        assign("out1", BinOp("+", VarRef("out1"), total)),
        assign("out2", VarRef("served")),
    )

    arcs = [
        transition("poll", BinOp("=", VarRef("evt"), Const(j)),
                   f"handler{j + 1}")
        for j in range(handlers - 1)
    ]
    arcs.append(
        transition("poll", BinOp(">=", VarRef("evt"), Const(handlers - 1)),
                   f"handler{handlers}")
    )
    arcs += [
        transition(f"handler{j + 1}", None, "ack") for j in range(handlers)
    ]
    arcs.append(on_complete("ack"))
    dispatch = seq("dispatch", [poll] + handler_behaviors + [ack],
                   transitions=arcs)
    top = seq(
        "ctrl",
        [init, dispatch],
        transitions=[
            transition("boot", None, "dispatch"),
            transition("dispatch",
                       BinOp("<", VarRef("served"), VarRef("event_count")),
                       "dispatch"),
            on_complete("dispatch",
                        BinOp(">=", VarRef("served"),
                              VarRef("event_count"))),
        ],
    )

    assignment = {"boot": "PROC", "poll": "PROC", "ack": "PROC",
                  "evt": "PROC", "served": "PROC"}
    for j in range(handlers):
        assignment[f"handler{j + 1}"] = "ASIC"
        assignment[states[j]] = "ASIC"
    return _family_case(gen, seed, "controller", top, variables, assignment)


def generate_input_vectors(
    spec: Specification, seed: int, count: int = 3
) -> List[Dict[str, int]]:
    """``count`` deterministic random input assignments for ``spec``."""
    rng = random.Random(seed ^ 0x5EED)
    names = [v.name for v in spec.inputs()]
    vectors: List[Dict[str, int]] = []
    for _ in range(count):
        vector: Dict[str, int] = {}
        for name in names:
            roll = rng.random()
            if roll < 0.4:
                vector[name] = rng.choice(_EDGE_INTS)
            elif roll < 0.9:
                vector[name] = rng.randint(-40, 40)
            else:
                vector[name] = rng.randint(-32768, 32767)
        vectors.append(vector)
    return vectors
