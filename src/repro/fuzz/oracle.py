"""Multi-oracle differential harness.

Three independent oracles judge every generated case:

1. **Round-trip** — printing a specification, parsing the text back,
   and printing again must reproduce the first text byte-for-byte (the
   printer's output is the parser's grammar).
2. **Walker parity** — a compiled-closure simulation
   (``compile_cache=True``) and a reference-walker simulation
   (``compile_cache=False``) of the same spec and inputs must agree on
   completion, every output value, every per-output write trace, every
   global's final value — or raise the *same* error with the *same*
   message.
3. **Refinement equivalence** — for every requested implementation
   model, :class:`repro.refine.Refiner` must accept the case's
   partition and :func:`repro.sim.equivalence.check_equivalence` must
   find the refined design observationally equal to the original on
   every input vector.
4. **Batch parity** (opt-in, ``repro fuzz --batch``) — advancing all
   of a case's input vectors as lanes of one
   :class:`repro.sim.batch.BatchSimulator` must be indistinguishable,
   lane for lane, from the same vectors run through independent
   single-lane compiled simulations — same outputs, traces, globals,
   completion, or the *same* error text.

Failures carry enough context (oracle name, detail, printed spec,
inputs, model) to be reported, shrunk, and persisted to the regression
corpus without re-running the campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.lang.parser import parse
from repro.lang.printer import print_specification
from repro.models import ALL_MODELS, ImplementationModel
from repro.partition.partition import Partition
from repro.refine.refiner import Refiner
from repro.sim.equivalence import check_equivalence
from repro.sim.interpreter import SimulationResult, Simulator
from repro.spec.specification import Specification
from repro.spec.variable import Role, StorageClass

__all__ = [
    "OracleFailure",
    "CaseResult",
    "check_roundtrip",
    "check_walker_parity",
    "check_batch_parity",
    "check_refinement",
    "run_all_oracles",
]

#: Step bound for every fuzzing run — generated specs terminate in far
#: fewer steps; the bound only exists to contain a runaway bug.
DEFAULT_MAX_STEPS = 200_000


@dataclass
class OracleFailure:
    """One oracle verdict against one case."""

    oracle: str  # "roundtrip" | "parity" | "refine:<model>"
    detail: str
    spec_text: str = ""
    inputs: Optional[Dict[str, int]] = None
    model: Optional[str] = None

    def describe(self) -> str:
        parts = [f"[{self.oracle}] {self.detail}"]
        if self.inputs is not None:
            parts.append(f"inputs={self.inputs!r}")
        return " ".join(parts)


@dataclass
class CaseResult:
    """All oracle verdicts for one generated case."""

    seed: int
    checks: int = 0
    failures: List[OracleFailure] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


# -- outcome comparison ------------------------------------------------------


class _Outcome:
    """What one simulation run produced: state or a structured error."""

    __slots__ = ("completed", "outputs", "traces", "globals", "error")

    def __init__(self, spec: Specification, result: Optional[SimulationResult],
                 error: Optional[BaseException]):
        if error is not None:
            self.error = f"{type(error).__name__}: {error}"
            self.completed = None
            self.outputs = None
            self.traces = None
            self.globals = None
            return
        self.error = None
        self.completed = result.completed
        self.outputs = dict(result.output_values())
        self.traces = {
            v.name: [(e.variable, e.value) for e in result.output_trace(v.name)]
            for v in spec.outputs()
        }
        self.globals = {
            v.name: result.value_of(v.name)
            for v in spec.variables
            if v.role is Role.INTERNAL and v.kind is StorageClass.VARIABLE
        }

    def diff(self, other: "_Outcome") -> List[str]:
        if self.error is not None or other.error is not None:
            if self.error != other.error:
                return [f"error mismatch: {self.error!r} vs {other.error!r}"]
            return []
        out: List[str] = []
        if self.completed != other.completed:
            out.append(
                f"completion mismatch: {self.completed} vs {other.completed}"
            )
        for name in self.outputs:
            if self.outputs[name] != other.outputs[name]:
                out.append(
                    f"output {name}: {self.outputs[name]!r} vs "
                    f"{other.outputs[name]!r}"
                )
            if self.traces[name] != other.traces[name]:
                out.append(
                    f"trace {name}: {self.traces[name]!r} vs "
                    f"{other.traces[name]!r}"
                )
        for name in self.globals:
            if self.globals[name] != other.globals[name]:
                out.append(
                    f"global {name}: {self.globals[name]!r} vs "
                    f"{other.globals[name]!r}"
                )
        return out


def _run(spec: Specification, inputs: Dict[str, int], compile_cache: bool,
         max_steps: int) -> _Outcome:
    try:
        result = Simulator(spec, compile_cache=compile_cache).run(
            inputs=inputs, max_steps=max_steps
        )
    except ReproError as exc:
        return _Outcome(spec, None, exc)
    return _Outcome(spec, result, None)


# -- oracles -----------------------------------------------------------------


def check_roundtrip(spec: Specification) -> List[OracleFailure]:
    """print -> parse -> print must be the identity on the text."""
    text1 = print_specification(spec)
    try:
        reparsed = parse(text1)
        reparsed.validate()
    except ReproError as exc:
        return [
            OracleFailure(
                "roundtrip",
                f"printed spec does not re-parse: {type(exc).__name__}: {exc}",
                spec_text=text1,
            )
        ]
    text2 = print_specification(reparsed)
    if text1 != text2:
        lines1, lines2 = text1.splitlines(), text2.splitlines()
        delta = next(
            (
                f"line {n + 1}: {a!r} vs {b!r}"
                for n, (a, b) in enumerate(zip(lines1, lines2))
                if a != b
            ),
            f"line counts {len(lines1)} vs {len(lines2)}",
        )
        return [
            OracleFailure(
                "roundtrip", f"reprint differs: {delta}", spec_text=text1
            )
        ]
    return []


def check_walker_parity(
    spec: Specification,
    input_vectors: Sequence[Dict[str, int]],
    max_steps: int = DEFAULT_MAX_STEPS,
) -> List[OracleFailure]:
    """Compiled evaluation must be indistinguishable from the walker."""
    failures: List[OracleFailure] = []
    text = None
    for inputs in input_vectors:
        compiled = _run(spec, inputs, True, max_steps)
        walked = _run(spec, inputs, False, max_steps)
        for delta in compiled.diff(walked):
            if text is None:
                text = print_specification(spec)
            failures.append(
                OracleFailure(
                    "parity",
                    f"compiled vs walker: {delta}",
                    spec_text=text,
                    inputs=dict(inputs),
                )
            )
    return failures


def check_batch_parity(
    spec: Specification,
    input_vectors: Sequence[Dict[str, int]],
    max_steps: int = DEFAULT_MAX_STEPS,
    lanes: int = 8,
) -> List[OracleFailure]:
    """Batched multi-lane execution must be indistinguishable, lane
    for lane, from independent single-lane compiled runs.

    Vectors are grouped ``lanes`` at a time into one
    :class:`repro.sim.batch.BatchSimulator` batch; every lane's
    outcome (outputs, traces, globals, completion — or error text) is
    diffed against the single-lane run of the same vector.
    """
    from repro.sim.batch import BatchSimulator
    from repro.sim.kernel import KernelLimits

    failures: List[OracleFailure] = []
    text = None
    vectors = [dict(v) for v in input_vectors]
    limits = KernelLimits(max_steps=max_steps)
    for start in range(0, len(vectors), max(lanes, 1)):
        chunk = vectors[start : start + max(lanes, 1)]
        batch = BatchSimulator(spec).run_batch(chunk, limits=limits)
        for inputs, lane in zip(chunk, batch):
            batched = _Outcome(
                spec,
                lane.result if lane.ok else None,
                lane.error,
            )
            single = _run(spec, inputs, True, max_steps)
            for delta in batched.diff(single):
                if text is None:
                    text = print_specification(spec)
                failures.append(
                    OracleFailure(
                        "batch",
                        f"batched vs single-lane: {delta}",
                        spec_text=text,
                        inputs=dict(inputs),
                    )
                )
    return failures


def check_refinement(
    spec: Specification,
    partition: Partition,
    input_vectors: Sequence[Dict[str, int]],
    models: Sequence[ImplementationModel] = ALL_MODELS,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> List[OracleFailure]:
    """Every model's refinement must preserve observable behavior."""
    failures: List[OracleFailure] = []
    text = None
    for model in models:
        try:
            design = Refiner(spec, partition, model).run()
        except Exception as exc:  # any refiner crash is a finding
            if text is None:
                text = print_specification(spec)
            failures.append(
                OracleFailure(
                    f"refine:{model.name}",
                    f"refiner raised {type(exc).__name__}: {exc}",
                    spec_text=text,
                    model=model.name,
                )
            )
            continue
        for inputs in input_vectors:
            try:
                report = check_equivalence(
                    design, inputs=inputs, max_steps=max_steps
                )
            except Exception as exc:
                if text is None:
                    text = print_specification(spec)
                failures.append(
                    OracleFailure(
                        f"refine:{model.name}",
                        f"equivalence check raised "
                        f"{type(exc).__name__}: {exc}",
                        spec_text=text,
                        inputs=dict(inputs),
                        model=model.name,
                    )
                )
                continue
            for mismatch in report.mismatches:
                if text is None:
                    text = print_specification(spec)
                failures.append(
                    OracleFailure(
                        f"refine:{model.name}",
                        f"equivalence mismatch ({mismatch.kind}): "
                        f"{mismatch}",
                        spec_text=text,
                        inputs=dict(inputs),
                        model=model.name,
                    )
                )
    return failures


def run_all_oracles(
    case,
    input_vectors: Sequence[Dict[str, int]],
    models: Sequence[ImplementationModel] = ALL_MODELS,
    max_steps: int = DEFAULT_MAX_STEPS,
    batch_lanes: Optional[int] = None,
) -> CaseResult:
    """Judge one :class:`repro.fuzz.generator.GeneratedCase` with every
    applicable oracle.  ``batch_lanes`` (``repro fuzz --batch``) adds
    the batch-parity oracle with that many lanes per batch."""
    result = CaseResult(seed=case.seed)
    result.failures += check_roundtrip(case.spec)
    result.checks += 1
    result.failures += check_walker_parity(case.spec, input_vectors, max_steps)
    result.checks += len(input_vectors)
    if batch_lanes:
        result.failures += check_batch_parity(
            case.spec, input_vectors, max_steps, lanes=batch_lanes
        )
        result.checks += len(input_vectors)
    if case.refinable:
        result.failures += check_refinement(
            case.spec, case.partition, input_vectors, models, max_steps
        )
        result.checks += len(models) * len(input_vectors)
    else:
        result.skipped.append(
            "refinement (spec uses signals/waits/div-by-zero slices)"
        )
    return result
