"""Design cost model for comparing implementation models.

Paper §5: "when considering design cost, we need to take into account
not only the number of buses, the bus transfer rate required for each
bus, but also the cost of bus interfaces [... and] the number of
memories and the sizes of the memories required in each model."

This module turns a :class:`ModelPlan` plus a rate report into a
comparable :class:`CostReport` with exactly those terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.estimate.rates import BusRateReport
from repro.models.plan import BusRole, ModelPlan

__all__ = ["CostWeights", "CostReport", "design_cost",
           "estimate_design_point"]


@dataclass
class CostWeights:
    """Relative prices of the cost terms (calibration constants).

    ``bus_rate_per_mbit`` prices bus bandwidth (faster buses are more
    expensive to engineer); ``port`` prices each extra memory port;
    ``interface`` prices one bus-interface block; ``bit`` prices one
    memory bit.
    """

    bus: float = 50.0
    bus_rate_per_mbit: float = 1.0
    memory: float = 100.0
    port: float = 40.0
    bit: float = 0.05
    arbiter: float = 30.0
    interface: float = 120.0


class CostReport:
    """Itemised cost of one (design, model) cell."""

    def __init__(self, plan: ModelPlan, weights: CostWeights):
        self.plan = plan
        self.weights = weights
        self.bus_count = len(plan.buses)
        self.memory_count = len(plan.memories)
        self.port_count = sum(m.port_count for m in plan.memories.values())
        # one bus-interface block per component-side interface bus
        self.interface_count = len(plan.buses_with_role(BusRole.IFACE))
        self.memory_bits = self._memory_bits()
        self.max_bus_mbits = 0.0
        self.total_bus_mbits = 0.0

    def _memory_bits(self) -> int:
        total = 0
        for memory in self.plan.memories.values():
            for name in memory.variables:
                total += self.plan.spec.global_variable(name).dtype.bit_width
        return total

    def apply_rates(self, report: BusRateReport) -> "CostReport":
        self.max_bus_mbits = report.max_rate / 1e6
        self.total_bus_mbits = report.total_rate / 1e6
        return self

    @property
    def total(self) -> float:
        w = self.weights
        return (
            w.bus * self.bus_count
            + w.bus_rate_per_mbit * self.total_bus_mbits
            + w.memory * self.memory_count
            + w.port * self.port_count
            + w.bit * self.memory_bits
            + w.interface * self.interface_count
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "buses": self.bus_count,
            "memories": self.memory_count,
            "ports": self.port_count,
            "interfaces": self.interface_count,
            "memory_bits": self.memory_bits,
            "max_bus_mbits": round(self.max_bus_mbits, 1),
            "total_bus_mbits": round(self.total_bus_mbits, 1),
            "total_cost": round(self.total, 1),
        }


def design_cost(
    plan: ModelPlan,
    rates: Optional[BusRateReport] = None,
    weights: Optional[CostWeights] = None,
) -> CostReport:
    """Cost a planned topology, optionally including its bus rates."""
    report = CostReport(plan, weights or CostWeights())
    if rates is not None:
        report.apply_rates(rates)
    return report


def estimate_design_point(
    spec,
    partition,
    model,
    allocation=None,
    inputs=None,
    graph=None,
    weights: Optional[CostWeights] = None,
) -> CostReport:
    """The full estimation chain for one design point, in one call:
    profile the original specification under ``partition``, plan the
    model's topology, derive the bus rates the plan implies, and price
    the result.  ``model`` may be a model object or its registry name.
    This is what each exploration cell (``repro explore``) charges a
    candidate with.
    """
    from repro.estimate.profile import profile_specification
    from repro.estimate.rates import bus_transfer_rates
    from repro.graph.access_graph import AccessGraph

    if isinstance(model, str):
        from repro.models import resolve_model

        model = resolve_model(model)
    graph = graph or AccessGraph.from_specification(spec)
    profile = profile_specification(
        spec, partition, allocation, inputs=inputs, graph=graph
    )
    plan = model.build_plan(spec, partition, graph=graph)
    rates = bus_transfer_rates(plan, graph, profile)
    return design_cost(plan, rates=rates, weights=weights)
