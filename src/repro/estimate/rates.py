"""Channel and bus transfer rates — the Figure 9 metric.

Paper §5: "The bus transfer rate is calculated as the sum of the
channel transfer rate of all channels mapped to the bus.  The channel
transfer rate is defined as the rate at which data is sent during the
lifetime of the behaviors communicating over the channel."

For a data channel (behavior B, variable v):

    rate = accesses(B, v) * bits(v) / lifetime(B)      [bits/second]

and a bus's rate sums the rates of every channel the implementation
model routes over it (a cross-partition access in Model4 loads all
three interface-path buses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import EstimationError
from repro.estimate.profile import ProfileResult
from repro.graph.access_graph import AccessGraph, ChannelKind
from repro.models.plan import ModelPlan
from repro.spec.types import ArrayType

__all__ = ["ChannelRate", "BusRateReport", "channel_rates", "bus_transfer_rates"]


@dataclass
class ChannelRate:
    """One channel's contribution, fully attributed."""

    behavior: str
    variable: str
    kind: ChannelKind
    accesses: float
    bits_per_access: int
    lifetime: float

    @property
    def bits_per_second(self) -> float:
        return self.accesses * self.bits_per_access / self.lifetime

    def __repr__(self) -> str:
        return (
            f"ChannelRate({self.behavior}-{self.kind.value}->{self.variable}: "
            f"{self.bits_per_second / 1e6:.1f} Mbit/s)"
        )


class BusRateReport:
    """Per-bus transfer-rate totals for one (design, model) cell."""

    def __init__(self, plan: ModelPlan):
        self.plan = plan
        #: bus name -> bits/second
        self.rates: Dict[str, float] = {name: 0.0 for name in plan.buses}
        #: channels that contributed (for drill-down)
        self.channels: List[ChannelRate] = []

    @property
    def model_name(self) -> str:
        return self.plan.model_name

    def rate_of(self, bus: str) -> float:
        if bus not in self.rates:
            raise EstimationError(f"no bus {bus!r} in {self.model_name}")
        return self.rates[bus]

    def mbits(self, bus: str) -> float:
        """Rate in Mbit/s (the unit of Figure 9)."""
        return self.rate_of(bus) / 1e6

    @property
    def max_rate(self) -> float:
        """The hot-spot metric: the busiest bus's rate."""
        return max(self.rates.values()) if self.rates else 0.0

    @property
    def total_rate(self) -> float:
        return sum(self.rates.values())

    def as_row(self) -> Dict[str, float]:
        """Bus -> Mbit/s, in bus order (one Figure 9 table cell)."""
        return {name: self.rates[name] / 1e6 for name in self.plan.buses}

    def describe(self) -> str:
        cells = ", ".join(
            f"{name}={rate / 1e6:.0f}" for name, rate in self.rates.items()
        )
        return f"{self.model_name}: {cells} (Mbit/s)"


def channel_rates(
    graph: AccessGraph,
    profile: ProfileResult,
) -> List[ChannelRate]:
    """Rate of every data channel under the given profile.

    Dynamic profiles may record zero accesses for a channel the static
    graph saw (a branch not taken); such channels contribute nothing,
    mirroring the paper's simulation-based estimator.
    """
    spec = graph.spec
    out: List[ChannelRate] = []
    for channel in graph.data_channels():
        accesses = profile.accesses(channel.behavior, channel.variable, channel.kind)
        if profile.kind == "static" or accesses == 0.0:
            # static profiles carry counts in the graph weights already;
            # for dynamic profiles fall back to nothing (branch untaken)
            if profile.kind == "static":
                accesses = channel.weight
        if accesses == 0.0:
            continue
        decl = spec.global_variable(channel.variable)
        dtype = decl.dtype
        if isinstance(dtype, ArrayType):
            dtype = dtype.element  # one element moves per access
        out.append(
            ChannelRate(
                behavior=channel.behavior,
                variable=channel.variable,
                kind=channel.kind,
                accesses=accesses,
                bits_per_access=dtype.bit_width,
                lifetime=profile.lifetime(channel.behavior),
            )
        )
    return out


def bus_transfer_rates(
    plan: ModelPlan,
    graph: AccessGraph,
    profile: ProfileResult,
    rates: Optional[List[ChannelRate]] = None,
) -> BusRateReport:
    """Map channel rates onto the plan's buses (one Figure 9 cell)."""
    report = BusRateReport(plan)
    partition = plan.partition
    for rate in rates if rates is not None else channel_rates(graph, profile):
        component = partition.effective_component_of_behavior(rate.behavior)
        for bus in plan.route(component, rate.variable):
            report.rates[bus] += rate.bits_per_second
        report.channels.append(rate)
    return report
