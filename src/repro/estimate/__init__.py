"""Quality-metric estimation: timing, profiling, transfer rates, cost."""

from repro.estimate.cost import (
    CostReport,
    CostWeights,
    design_cost,
    estimate_design_point,
)
from repro.estimate.profile import (
    ProfileResult,
    profile_specification,
    static_profile,
)
from repro.estimate.rates import (
    BusRateReport,
    ChannelRate,
    bus_transfer_rates,
    channel_rates,
)
from repro.estimate.timing import (
    HARDWARE_CYCLES,
    SOFTWARE_CYCLES,
    TimingModel,
    cost_function,
)

__all__ = [
    "CostReport",
    "CostWeights",
    "design_cost",
    "estimate_design_point",
    "ProfileResult",
    "profile_specification",
    "static_profile",
    "BusRateReport",
    "ChannelRate",
    "bus_transfer_rates",
    "channel_rates",
    "HARDWARE_CYCLES",
    "SOFTWARE_CYCLES",
    "TimingModel",
    "cost_function",
]
