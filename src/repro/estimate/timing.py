"""Statement-level timing model.

Behavior lifetimes (the denominator of the channel transfer rate,
paper [13]) come from charging every executed statement a
component-specific cost: software statements cost Intel-8086-flavoured
cycle counts at the processor clock, hardware statements cost one or
two ASIC cycles.  Absolute numbers are calibration constants — what the
experiments depend on is only that the *same* model prices every design
and every implementation model, so rates are comparable across the
Figure 9 grid.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.arch.allocation import Allocation
from repro.arch.components import Component, ComponentKind
from repro.errors import (
    AllocationError,
    EstimationError,
    PartitionError,
    SpecError,
)
from repro.partition.partition import Partition
from repro.spec.stmt import (
    Assign,
    CallStmt,
    For,
    If,
    Null,
    SignalAssign,
    Stmt,
    Wait,
    While,
)

__all__ = ["TimingModel", "SOFTWARE_CYCLES", "HARDWARE_CYCLES", "cost_function"]

#: Cycle counts per statement execution on a processor (8086-flavoured:
#: memory-operand ALU ops, short jumps, call/ret overhead).
SOFTWARE_CYCLES: Dict[type, int] = {
    Assign: 17,
    SignalAssign: 21,  # memory-mapped register write
    If: 8,
    While: 8,
    For: 10,
    Wait: 12,  # polling iteration
    CallStmt: 28,
    Null: 3,
}

#: Cycle counts on an ASIC.  A behavioral-level FSMD statement is
#: memory bound: ~4 controller states, each a multi-cycle access to a
#: single-port register file / on-chip RAM.  The resulting ~2.7x
#: hardware:software speed ratio (640 ns vs 1.7 us per assignment at
#: the default clocks) is a calibration constant: it reproduces the
#: paper's Figure 9 orderings (which model's bus is the hot spot per
#: design); scaling it changes absolute Mbit/s, not the orderings
#: within a design.
HARDWARE_CYCLES: Dict[type, int] = {
    Assign: 16,
    SignalAssign: 16,
    If: 8,
    While: 8,
    For: 8,
    Wait: 4,
    CallStmt: 32,
    Null: 0,
}


class TimingModel:
    """Maps (component, statement) to execution seconds."""

    def __init__(
        self,
        software_cycles: Optional[Dict[type, int]] = None,
        hardware_cycles: Optional[Dict[type, int]] = None,
    ):
        self.software_cycles = dict(software_cycles or SOFTWARE_CYCLES)
        self.hardware_cycles = dict(hardware_cycles or HARDWARE_CYCLES)

    def cycles(self, component: Component, stmt: Stmt) -> int:
        table = (
            self.software_cycles
            if component.kind is ComponentKind.PROCESSOR
            else self.hardware_cycles
        )
        count = table.get(type(stmt))
        if count is None:
            raise EstimationError(f"no cycle cost for statement {type(stmt).__name__}")
        return count

    def seconds(self, component: Component, stmt: Stmt) -> float:
        """Execution time of one statement on ``component``."""
        return self.cycles(component, stmt) / component.clock_hz


def cost_function(
    partition: Partition,
    allocation: Allocation,
    timing: Optional[TimingModel] = None,
) -> Callable[[str, Stmt], float]:
    """A ``cost_fn`` for :class:`repro.sim.Simulator` pricing each
    statement by the executing behavior's component.

    Behavior names unknown to the partition (refinement-inserted
    servers, subprogram bodies attributed to their caller) are priced
    at the first component's rate — they only appear when simulating
    refined designs, whose timing is not used for estimation.
    """
    timing = timing or TimingModel()
    components = partition.components()
    cache: Dict[str, Component] = {}

    def component_of(behavior: str) -> Component:
        found = cache.get(behavior)
        if found is not None:
            return found
        try:
            name = partition.effective_component_of_behavior(behavior)
        except (PartitionError, SpecError):
            # Only the two lookup failures mean "not a partitioned
            # behavior" (refinement-inserted servers, subprogram bodies
            # attributed to their caller); anything else is a real bug
            # and must propagate.
            name = components[0]
        try:
            component = allocation.get(name)
        except AllocationError as exc:
            raise EstimationError(
                f"behavior {behavior!r} is priced on component {name!r}, "
                "which has no allocation"
            ) from exc
        cache[behavior] = component
        return component

    def cost(behavior: str, stmt: Stmt) -> float:
        return timing.seconds(component_of(behavior), stmt)

    return cost
