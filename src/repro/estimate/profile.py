"""Dynamic and static profiling of a specification.

The channel transfer rate (paper [13]) is "the rate at which data is
sent during the lifetime of the behaviors communicating over the
channel": it needs, per behavior, (a) its lifetime under the timing
model and (b) how many times it accessed each variable.  The dynamic
profiler gets both by simulating the *original* specification once with
a counting probe; the static profiler approximates them from the access
graph's loop-adjusted weights for specifications that cannot be
executed (e.g. unbounded input loops).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.arch.allocation import Allocation, default_allocation_for
from repro.errors import EstimationError
from repro.graph.access_graph import AccessGraph, ChannelKind
from repro.partition.partition import Partition
from repro.sim.interpreter import Probe, Simulator
from repro.spec.specification import Specification
from repro.spec.stmt import Stmt
from repro.estimate.timing import TimingModel, cost_function

__all__ = ["ProfileResult", "profile_specification", "static_profile"]

#: Lifetime floor (seconds) so a behavior that executed nothing
#: measurable still yields finite rates.
_MIN_LIFETIME = 1e-9


class ProfileResult:
    """Per-behavior lifetimes and per-channel access counts."""

    def __init__(self, spec: Specification, kind: str):
        self.spec = spec
        #: "dynamic" or "static"
        self.kind = kind
        #: behavior -> accumulated active seconds
        self.lifetimes: Dict[str, float] = {}
        #: behavior -> activation count
        self.activations: Dict[str, int] = {}
        #: (behavior, variable) -> read count
        self.reads: Dict[Tuple[str, str], float] = {}
        #: (behavior, variable) -> write count
        self.writes: Dict[Tuple[str, str], float] = {}
        #: total modelled run time
        self.total_time: float = 0.0
        #: kernel counters from the profiling run (dynamic only) — a
        #: :class:`repro.sim.metrics.SimMetrics`, or None
        self.kernel_metrics = None
        self._lifetime_cache: Dict[str, float] = {}

    def lifetime(self, behavior: str) -> float:
        """Active seconds of ``behavior``.

        Statement costs accrue on the executing *leaf*; a composite is
        active while any descendant runs, so its lifetime is the rolled
        up subtree total (plus its own transition overhead, which is
        zero-cost here).  This matters for channels derived from
        transition conditions whose source is a composite — e.g. the
        medical system's ``MeasureCycle`` loop-back arc reading
        ``cycle``.  Floored at 1 ns to stay divisible.
        """
        cached = self._lifetime_cache.get(behavior)
        if cached is not None:
            return cached
        total = self.lifetimes.get(behavior, 0.0)
        if self.spec.has_behavior(behavior):
            node = self.spec.find_behavior(behavior)
            for sub in node.iter_tree():
                if sub is not node:
                    total += self.lifetimes.get(sub.name, 0.0)
        value = max(total, _MIN_LIFETIME)
        self._lifetime_cache[behavior] = value
        return value

    def accesses(self, behavior: str, variable: str, kind: ChannelKind) -> float:
        table = self.reads if kind is ChannelKind.READ else self.writes
        return table.get((behavior, variable), 0.0)

    def total_accesses(self, variable: str) -> float:
        """All reads+writes of a variable across behaviors."""
        return sum(
            count
            for (_, var_name), count in list(self.reads.items())
            + list(self.writes.items())
            if var_name == variable
        )

    def describe(self, top: int = 10) -> str:
        lines = [f"{self.kind} profile of {self.spec.name}"]
        busiest = sorted(
            self.lifetimes.items(), key=lambda kv: kv[1], reverse=True
        )[:top]
        for behavior, seconds in busiest:
            lines.append(f"  {behavior}: {seconds * 1e6:.2f} us active")
        return "\n".join(lines)


class _ProfilingProbe(Probe):
    """Counts statement costs per behavior and accesses per channel."""

    def __init__(self, result: ProfileResult, variable_names: Iterable[str]):
        self.result = result
        self._variables = set(variable_names)

    def on_statement(self, behavior: str, stmt: Stmt, cost: float) -> None:
        r = self.result
        r.lifetimes[behavior] = r.lifetimes.get(behavior, 0.0) + cost

    def on_read(self, behavior: str, variable: str) -> None:
        if variable in self._variables:
            key = (behavior, variable)
            self.result.reads[key] = self.result.reads.get(key, 0.0) + 1

    def on_write(self, behavior: str, variable: str) -> None:
        if variable in self._variables:
            key = (behavior, variable)
            self.result.writes[key] = self.result.writes.get(key, 0.0) + 1

    def on_behavior_start(self, behavior: str, time: float) -> None:
        r = self.result
        r.activations[behavior] = r.activations.get(behavior, 0) + 1


def profile_specification(
    spec: Specification,
    partition: Partition,
    allocation: Optional[Allocation] = None,
    timing: Optional[TimingModel] = None,
    inputs: Optional[Dict[str, object]] = None,
    graph: Optional[AccessGraph] = None,
    max_steps: int = 2_000_000,
    metrics=None,
) -> ProfileResult:
    """Profile by simulating the original specification once.

    The partition supplies the component (and hence the clock) each
    behavior runs at, so Design1/2/3 produce different lifetimes for
    the same spec — as in the paper, where the rates differ per design.

    ``metrics`` optionally attaches a
    :class:`repro.sim.metrics.SimMetrics` to the profiling run's kernel;
    it is also stored as :attr:`ProfileResult.kernel_metrics`.
    """
    allocation = (allocation or default_allocation_for(partition.components())).ensure(
        partition.components()
    )
    graph = graph or AccessGraph.from_specification(spec)
    result = ProfileResult(spec, "dynamic")
    probe = _ProfilingProbe(result, graph.variable_names)
    simulator = Simulator(
        spec,
        cost_fn=cost_function(partition, allocation, timing),
        probe=probe,
    )
    run = simulator.run(inputs=inputs, max_steps=max_steps, metrics=metrics)
    result.kernel_metrics = metrics
    if not run.completed:
        raise EstimationError(
            f"profiling run of {spec.name!r} did not complete "
            f"(blocked: {run.blocked()})"
        )
    result.total_time = run.time
    return result


def static_profile(
    spec: Specification,
    partition: Partition,
    allocation: Optional[Allocation] = None,
    timing: Optional[TimingModel] = None,
    graph: Optional[AccessGraph] = None,
) -> ProfileResult:
    """Approximate a profile without executing: access counts are the
    access graph's loop-adjusted weights; lifetimes price each leaf's
    statements (loop-adjusted) on its component."""
    from repro.graph.access_graph import _loop_multiplier
    from repro.spec.behavior import LeafBehavior

    allocation = (allocation or default_allocation_for(partition.components())).ensure(
        partition.components()
    )
    timing = timing or TimingModel()
    graph = graph or AccessGraph.from_specification(spec)
    result = ProfileResult(spec, "static")

    for channel in graph.data_channels():
        key = (channel.behavior, channel.variable)
        table = result.reads if channel.kind is ChannelKind.READ else result.writes
        table[key] = table.get(key, 0.0) + channel.weight

    for behavior in spec.behaviors():
        if not isinstance(behavior, LeafBehavior):
            continue
        component = allocation.get(partition.component_of_behavior(behavior.name))
        result.lifetimes[behavior.name] = _static_body_seconds(
            behavior.stmt_body, component, timing
        )
        result.activations[behavior.name] = 1
    result.total_time = sum(result.lifetimes.values())
    return result


def _static_body_seconds(stmts, component, timing: TimingModel) -> float:
    from repro.graph.access_graph import _loop_multiplier

    total = 0.0
    for stmt in stmts:
        total += timing.seconds(component, stmt)
        multiplier = _loop_multiplier(stmt)
        for nested in stmt.child_bodies():
            total += multiplier * _static_body_seconds(nested, component, timing)
    return total
