"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Subcommands mirror the library's main flows:

* ``repro stats [FILE]`` — structural statistics and the derived
  channel count of a specification (the bundled medical system when no
  file is given); ``--daemon HOST:PORT`` instead prints a running
  daemon's ``/v1/stats`` snapshot (``--metrics`` for the raw
  Prometheus exposition), ``--journal PATH`` summarises — or with
  ``--follow`` tails — a JSONL event journal;
* ``repro print [FILE]`` — pretty-print a specification (round-trips
  the concrete syntax);
* ``repro simulate [FILE] [--input name=value ...]`` — execute the
  functional model and report outputs;
* ``repro partition [FILE] --algorithm greedy|kl|annealed`` — run a
  baseline partitioner and print the result;
* ``repro refine [FILE] --design D --model M [-o OUT]`` — run model
  refinement and (optionally) write the refined source;
* ``repro figure9`` / ``repro figure10 [--check]`` — regenerate the
  paper's evaluation tables;
* ``repro verify --design D --model M`` — co-simulate original vs
  refined (the equivalence check);
* ``repro robustness`` — the fault-injection campaign (scenarios x
  designs x models) against the timeout-and-retry protocol;
* ``repro profile --design D --model M`` — the instrumented
  refine → simulate → verify pipeline: kernel counters and per-phase
  wall-clock as a table plus JSON under ``benchmarks/output/``
  (``--json`` prints the JSON to stdout instead);
* ``repro trace --design D --model M [-o trace.json]`` — run the whole
  parse → validate → partition → refine → estimate → export → simulate
  pipeline under a hierarchical span tracer and export Chrome
  trace-event JSON (loadable in Perfetto / ``chrome://tracing``);
* ``repro explain LINE --design D --model M`` — refinement provenance:
  which refinement procedure and rule produced a given line of the
  refined specification (``--all`` summarises every line, ``--check``
  asserts completeness);
* ``repro simulate --vcd out.vcd`` — additionally dump every signal
  change of the run as a GTKWave-compatible VCD waveform;
* ``repro fuzz --seed 0 --count 200`` — the differential fuzzing
  campaign: seeded random specifications judged by the round-trip,
  walker-parity and refinement-equivalence oracles, with the
  regression corpus replayed first (exit 1 on any surviving failure);
* ``repro sweep --design Design1 --model Model1 --protocol handshake
  --seed 0`` — cross-product campaign (every flag repeatable) that
  refines and verifies each combination under a seeded stimulus;
* ``repro explore`` — multi-objective design-space exploration:
  layered partitioner search (greedy/annealed, then KL seeded from the
  quality cache, then re-annealed frontier members) over allocations x
  models x protocols, keeping a Pareto frontier over (bus traffic,
  refined lines, estimated cost) with dominance-based early stopping
  (see ``docs/EXPLORATION.md``);
* ``repro serve`` — the refinement-as-a-service daemon: HTTP/JSON jobs
  on the execution engine with deadlines, backpressure, a circuit
  breaker and graceful drain (see ``docs/SERVICE.md``);
* ``repro loadgen`` — the seeded load harness against a running (or
  ``--serve`` self-hosted) daemon; writes a byte-stable report under
  ``benchmarks/output/``.

The campaign commands (``figure9``, ``figure10``, ``robustness``,
``fuzz``, ``sweep``, ``explore``) share the execution-engine flags: ``--executor
serial|process``, ``--workers N``, ``--job-timeout S``, ``--shards N``,
plus the result cache (``--cache DIR`` to enable, ``--no-cache``,
``--refresh``) and ``--journal PATH`` (structured campaign/job events
with a shared run ID; see ``docs/OBSERVABILITY.md``).  Campaign tables
print to stdout; engine/cache
statistics print to stderr, so stdout stays byte-comparable across
executors.  See ``docs/EXECUTION.md``.

SIGINT/SIGTERM during a campaign is graceful: pool workers are
terminated, cache scratch files removed, a partial-campaign note goes
to stderr, and the process exits 130 — never a raw traceback.
"""

from __future__ import annotations

import argparse
import contextlib
import signal
import sys
from typing import Dict, List, Optional

from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def _load_spec(path: Optional[str], workload: Optional[str] = None):
    from repro.lang.parser import parse

    if path is not None:
        with open(path) as handle:
            spec = parse(handle.read())
    else:
        from repro.apps.workloads import resolve_workload

        spec = resolve_workload(workload).spec()
    spec.validate()
    return spec


def _resolve_partition(spec, args):
    """Partition from --design, looked up in the registry workload's
    design catalog (default: the medical system's Design1/2/3)."""
    from repro.apps.workloads import resolve_workload

    workload = resolve_workload(getattr(args, "workload", None))
    designs = workload.designs(spec)
    if getattr(args, "design", None):
        if args.design not in designs:
            raise ReproError(
                f"unknown design {args.design!r}; choose from {sorted(designs)}"
            )
        return designs[args.design]
    raise ReproError(f"a --design is required (choose from {sorted(designs)})")


def _parse_inputs(pairs: List[str]) -> Dict[str, int]:
    inputs: Dict[str, int] = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise ReproError(f"--input expects name=value, got {pair!r}")
        name, _, value = pair.partition("=")
        inputs[name.strip()] = int(value)
    return inputs


def _parse_limits(args):
    """--max-steps / --max-delta into a KernelLimits (or None)."""
    max_steps = getattr(args, "max_steps", None)
    max_delta = getattr(args, "max_delta", None)
    if max_steps is None and max_delta is None:
        return None
    from repro.sim import KernelLimits

    defaults = KernelLimits()
    return KernelLimits(
        max_steps=max_steps if max_steps is not None else defaults.max_steps,
        max_delta=max_delta if max_delta is not None else defaults.max_delta,
    )


def _add_workload_option(p) -> None:
    p.add_argument("--workload", default=None, metavar="ID",
                   help="registry workload supplying the specification, "
                        "design catalog and default stimulus (default "
                        "medical; see 'repro workloads')")


def _add_exec_options(p) -> None:
    """The shared execution-engine flags of every campaign command."""
    group = p.add_argument_group("execution engine")
    group.add_argument("--executor", choices=("serial", "process"),
                       default="serial",
                       help="job executor (default serial; process = "
                            "multiprocessing pool)")
    group.add_argument("--workers", type=int, default=None, metavar="N",
                       help="process-pool size (default: min(4, CPUs))")
    group.add_argument("--job-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-job wall-clock budget (process executor)")
    group.add_argument("--shards", type=int, default=1, metavar="N",
                       help="jobs bundled per worker round-trip (default 1)")
    group.add_argument("--cache", nargs="?", const="", default=None,
                       metavar="DIR",
                       help="enable the result cache (default dir: "
                            "$REPRO_CACHE_DIR or .repro_cache)")
    group.add_argument("--no-cache", action="store_true",
                       help="bypass the cache entirely")
    group.add_argument("--refresh", action="store_true",
                       help="recompute every job but refill the cache")
    group.add_argument("--journal", metavar="PATH", default=None,
                       help="append campaign/engine events to this JSONL "
                            "journal (see docs/OBSERVABILITY.md)")


def _build_engine(args, tracer=None):
    """An :class:`repro.exec.ExecutionEngine` from the shared flags."""
    from repro.exec import (
        ExecutionEngine,
        ResultCache,
        default_cache_dir,
        resolve_executor,
    )

    options = {}
    if args.executor == "process":
        if args.workers is not None:
            options["workers"] = args.workers
        options["timeout"] = args.job_timeout
        options["shard_size"] = args.shards
    executor = resolve_executor(args.executor, **options)
    cache = None
    if args.cache is not None:
        cache = ResultCache(args.cache or default_cache_dir())
    journal = None
    if getattr(args, "journal", None):
        from repro.obs.events import EventJournal

        journal = EventJournal(path=args.journal)
    return ExecutionEngine(
        executor=executor,
        cache=cache,
        tracer=tracer,
        no_cache=args.no_cache,
        refresh=args.refresh,
        journal=journal,
    )


def _print_exec_stats(engine) -> None:
    """Engine counters to stderr — stdout carries only the campaign
    report, so it stays byte-comparable across executors."""
    print(engine.describe(), file=sys.stderr)


@contextlib.contextmanager
def _campaign_guard(engine, command: str):
    """Graceful SIGINT/SIGTERM for a campaign command.

    SIGTERM is converted to :class:`KeyboardInterrupt` so both signals
    take one path: terminate the engine's pool workers, remove cache
    scratch files, print a partial-campaign note to stderr, and let
    :func:`main` exit 130 — never a raw traceback, never an orphaned
    worker or ``.tmp-*`` file.
    """

    def _terminate(signum, frame):  # noqa: ARG001 — signal contract
        raise KeyboardInterrupt

    previous = None
    try:
        previous = signal.signal(signal.SIGTERM, _terminate)
    except ValueError:
        pass  # not the main thread (embedded use); SIGINT still works
    try:
        yield
    except KeyboardInterrupt:
        engine.abort()
        print(
            f"repro {command}: interrupted - campaign stopped early "
            "(workers terminated, cache scratch files removed); "
            "partial results were not written",
            file=sys.stderr,
        )
        raise
    finally:
        engine.journal.close()
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)


# -- subcommand handlers -------------------------------------------------------


def _stats_daemon(args) -> int:
    """``repro stats --daemon HOST:PORT``: a live telemetry snapshot."""
    import json

    from repro.serve.client import ClientError, ReproClient

    host, _, port = args.daemon.rpartition(":")
    if not host or not port.isdigit():
        raise ReproError(f"--daemon expects HOST:PORT, got {args.daemon!r}")
    client = ReproClient(host=host, port=int(port), retries=1)
    try:
        if args.metrics:
            from repro.obs.metrics import validate_exposition

            text = client.metrics_text()
            if not text:
                print(
                    "error: daemon runs with telemetry off (no /metrics)",
                    file=sys.stderr,
                )
                return 1
            validate_exposition(text)
            sys.stdout.write(text)
            return 0
        print(json.dumps(client.stats(), indent=2, sort_keys=True))
        return 0
    except ClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _stats_journal(args) -> int:
    """``repro stats --journal PATH [--follow]``: summarise or tail a
    JSONL event journal."""
    import time

    from repro.obs.events import read_journal, validate_journal

    if args.follow:
        with open(args.journal) as handle:
            try:
                while True:
                    line = handle.readline()
                    if line:
                        sys.stdout.write(line)
                        sys.stdout.flush()
                    else:
                        time.sleep(0.2)
            except KeyboardInterrupt:
                return 0
    records = read_journal(args.journal)
    validate_journal(records)
    by_kind: Dict[str, int] = {}
    request_ids = set()
    for record in records:
        kind = str(record["kind"])
        by_kind[kind] = by_kind.get(kind, 0) + 1
        if record["request_id"]:
            request_ids.add(record["request_id"])
    print(
        f"journal {args.journal}: {len(records)} records, "
        f"{len(request_ids)} request/run ids"
    )
    for kind in sorted(by_kind):
        print(f"  {kind:<20} {by_kind[kind]:>6}")
    return 0


def _cmd_stats(args) -> int:
    from repro.graph import AccessGraph

    if args.daemon:
        return _stats_daemon(args)
    if args.journal:
        return _stats_journal(args)
    spec = _load_spec(args.file)
    stats = spec.stats()
    graph = AccessGraph.from_specification(spec)
    print(f"specification {spec.name}")
    for key, value in stats.as_dict().items():
        print(f"  {key}: {value}")
    print(f"  data-access channels: {graph.channel_count()}")
    print(f"  source lines: {spec.line_count()}")
    return 0


def _cmd_print(args) -> int:
    from repro.lang.printer import print_specification

    spec = _load_spec(args.file)
    sys.stdout.write(print_specification(spec))
    return 0


def _cmd_simulate(args) -> int:
    from repro.sim import Simulator

    spec = _load_spec(args.file)
    observer = None
    if args.vcd:
        from repro.obs.vcd import VCDWriter

        observer = VCDWriter()
    result = Simulator(spec).run(
        inputs=_parse_inputs(args.input),
        limits=_parse_limits(args),
        observer=observer,
    )
    status = "completed" if result.completed else "DID NOT COMPLETE"
    print(f"simulation {status} ({result.steps} scheduler steps)")
    for name, value in result.output_values().items():
        print(f"  {name} = {value}")
    if observer is not None:
        import os

        os.makedirs(os.path.dirname(args.vcd) or ".", exist_ok=True)
        observer.write(args.vcd)
        print(
            f"VCD waveform written to {args.vcd} "
            f"({len(observer.changes)} signal changes)"
        )
    return 0 if result.completed else 1


def _cmd_partition(args) -> int:
    from repro.graph import AccessGraph, classify_variables
    from repro.partition import (
        annealed_partition,
        greedy_partition,
        kl_partition,
        partition_cost,
    )

    spec = _load_spec(args.file)
    graph = AccessGraph.from_specification(spec)
    algorithms = {
        "greedy": greedy_partition,
        "kl": kl_partition,
        "annealed": annealed_partition,
    }
    kwargs = {}
    if args.algorithm == "annealed" and args.seed is not None:
        kwargs["seed"] = args.seed
    partition = algorithms[args.algorithm](spec, graph=graph, **kwargs)
    print(partition.describe())
    print(f"cost: {partition_cost(graph, partition):.3f}")
    if partition.p >= 2:
        print(classify_variables(graph, partition).describe())
    return 0


def _cmd_refine(args) -> int:
    from repro.lang.printer import print_specification
    from repro.models import resolve_model
    from repro.refine import Refiner

    spec = _load_spec(args.file)
    partition = _resolve_partition(spec, args)
    design = Refiner(
        spec, partition, resolve_model(args.model), protocol=args.protocol
    ).run()
    print(design.describe())
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(print_specification(design.spec))
        print(f"refined specification written to {args.output}")
    return 0


def _cmd_verify(args) -> int:
    from repro.models import resolve_model
    from repro.refine import Refiner
    from repro.sim.equivalence import check_equivalence

    spec = _load_spec(args.file)
    partition = _resolve_partition(spec, args)
    design = Refiner(
        spec, partition, resolve_model(args.model), protocol=args.protocol
    ).run()
    report = check_equivalence(
        design, inputs=_parse_inputs(args.input), limits=_parse_limits(args)
    )
    print(report.describe())
    return 0 if report.equivalent else 1


def _cmd_export_c(args) -> int:
    from repro.export import export_c

    spec = _load_spec(args.file)
    source = export_c(spec, inputs=_parse_inputs(args.input))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(source)
        print(f"C translation unit written to {args.output}")
    else:
        sys.stdout.write(source)
    return 0


def _cmd_export_vhdl(args) -> int:
    from repro.export import export_vhdl

    spec = _load_spec(args.file)
    top = None
    if getattr(args, "design", None):
        from repro.models import resolve_model
        from repro.refine import Refiner

        partition = _resolve_partition(spec, args)
        design = Refiner(spec, partition, resolve_model(args.model)).run()
        spec = design.spec
    source = export_vhdl(spec, entity_name=args.entity)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(source)
        print(f"VHDL written to {args.output}")
    else:
        sys.stdout.write(source)
    return 0


def _cmd_figure9(args) -> int:
    from repro.experiments import run_figure9

    engine = _build_engine(args)
    with _campaign_guard(engine, "figure9"):
        result = run_figure9(engine=engine, workload=args.workload)
        print(result.render(include_paper=not args.no_paper))
        _print_exec_stats(engine)
    return 0


def _cmd_figure10(args) -> int:
    from repro.experiments import run_figure10

    engine = _build_engine(args)
    with _campaign_guard(engine, "figure10"):
        result = run_figure10(
            check_equivalence=args.check, engine=engine, workload=args.workload
        )
        print(result.render(include_paper=not args.no_paper))
        if args.breakdown:
            print()
            print(result.render_breakdown())
        _print_exec_stats(engine)
    return 0


def _cmd_robustness(args) -> int:
    from repro.experiments.robustness import run_robustness

    engine = _build_engine(args)
    with _campaign_guard(engine, "robustness"):
        result = run_robustness(
            seed=args.seed,
            protocol=args.protocol,
            designs=args.design or None,
            models=args.model or None,
            engine=engine,
            workload=args.workload,
        )
        rendered = result.render()
        print(rendered)
        if args.output:
            import os

            os.makedirs(os.path.dirname(args.output) or ".", exist_ok=True)
            with open(args.output, "w") as handle:
                handle.write(rendered + "\n")
            print(f"\ncampaign table written to {args.output}")
        _print_exec_stats(engine)
    return 1 if result.unexpected() else 0


def _cmd_profile(args) -> int:
    from repro.experiments.profiling import run_profile

    spec = _load_spec(args.file)
    partition = _resolve_partition(spec, args)
    report = run_profile(
        spec,
        partition,
        model=args.model,
        protocol=args.protocol,
        design=args.design,
        inputs=_parse_inputs(args.input) or None,
        limits=_parse_limits(args),
        verify=not args.no_verify,
    )
    if args.json:
        print(report.as_json())
    else:
        print(report.render())
    if args.output:
        import os

        os.makedirs(os.path.dirname(args.output) or ".", exist_ok=True)
        with open(args.output, "w") as handle:
            handle.write(report.as_json() + "\n")
        if not args.json:
            print(f"\nprofile JSON written to {args.output}")
    return 0 if report.equivalent in (True, None) else 1


def _default_inputs(spec, args) -> Dict[str, object]:
    """--input pairs, falling back to the medical stimulus if it fits."""
    inputs: Dict[str, object] = dict(_parse_inputs(args.input))
    if not inputs:
        from repro.apps.medical import MEDICAL_INPUTS

        port_names = {v.name for v in spec.variables}
        inputs = {
            name: value
            for name, value in MEDICAL_INPUTS.items()
            if name in port_names
        }
    return inputs


def _cmd_trace(args) -> int:
    import json

    from repro.estimate import profile_specification
    from repro.export import export_c, export_vhdl
    from repro.models import resolve_model
    from repro.obs.trace import SpanTracer, validate_chrome_trace
    from repro.refine import Refiner
    from repro.sim import Simulator

    tracer = SpanTracer()
    source = args.file or "<bundled medical system>"
    with tracer.span("pipeline", source=source, design=args.design,
                     model=args.model):
        with tracer.span("parse") as span:
            if args.file is None:
                from repro.apps.medical import medical_specification

                spec = medical_specification()
            else:
                from repro.lang.parser import parse

                with open(args.file) as handle:
                    spec = parse(handle.read())
            span.set("lines", spec.line_count())
        with tracer.span("validate"):
            spec.validate()
        with tracer.span("partition") as span:
            partition = _resolve_partition(spec, args)
            span.set("components", partition.p)
        # the Refiner shares the tracer, so its per-procedure spans
        # (category "refine") nest under this one
        with tracer.span("refine") as span:
            design = Refiner(
                spec,
                partition,
                resolve_model(args.model),
                protocol=args.protocol,
                tracer=tracer,
            ).run()
            span.set("refined_lines", design.spec.line_count())
        inputs = _default_inputs(spec, args)
        with tracer.span("estimate") as span:
            profile = profile_specification(
                spec, partition, inputs=dict(inputs)
            )
            span.set("behaviors", len(profile.lifetimes))
        with tracer.span("export-c") as span:
            span.set("bytes", len(export_c(spec)))
        with tracer.span("export-vhdl") as span:
            span.set("bytes", len(export_vhdl(design.spec)))
        limits = _parse_limits(args)
        with tracer.span("simulate-original") as span:
            run = Simulator(spec).run(inputs=dict(inputs), limits=limits)
            span.set("steps", run.steps)
        with tracer.span("simulate-refined") as span:
            run = Simulator(design.spec).run(inputs=dict(inputs), limits=limits)
            span.set("steps", run.steps)

    print(tracer.describe())
    payload = tracer.to_chrome_json()
    events = validate_chrome_trace(json.loads(payload))
    if args.output:
        import os

        os.makedirs(os.path.dirname(args.output) or ".", exist_ok=True)
        with open(args.output, "w") as handle:
            handle.write(payload + "\n")
        print(
            f"\nChrome trace ({events} events) written to {args.output} "
            "- load it in Perfetto or chrome://tracing"
        )
    return 0


def _cmd_fuzz(args) -> int:
    from repro.experiments.fuzzing import run_fuzz

    tracer = None
    if args.trace:
        from repro.obs.trace import SpanTracer

        tracer = SpanTracer()
    corpus = args.corpus if args.corpus else None
    engine = _build_engine(args, tracer=tracer)
    with _campaign_guard(engine, "fuzz"):
        kwargs = dict(
            seed=args.seed,
            count=args.count,
            models=args.model or None,
            budget=args.budget,
            vectors=args.vectors,
            corpus=corpus,
            engine=engine,
            batch=args.batch,
            lanes=args.lanes,
        )
        if tracer is not None:
            with tracer.span("fuzz", seed=args.seed, count=args.count):
                report = run_fuzz(**kwargs)
        else:
            report = run_fuzz(**kwargs)
        rendered = report.as_json() if args.json else report.render()
        print(rendered)
        if args.output:
            import os

            os.makedirs(os.path.dirname(args.output) or ".", exist_ok=True)
            with open(args.output, "w") as handle:
                handle.write(rendered + "\n")
            print(f"\ncampaign report written to {args.output}")
        if tracer is not None:
            import os

            os.makedirs(os.path.dirname(args.trace) or ".", exist_ok=True)
            with open(args.trace, "w") as handle:
                handle.write(tracer.to_chrome_json() + "\n")
            print(f"Chrome trace written to {args.trace}")
        _print_exec_stats(engine)
    return 0 if report.ok else 1


def _cmd_sweep(args) -> int:
    import json

    from repro.experiments.sweep import run_sweep

    tracer = None
    if args.trace:
        from repro.obs.trace import SpanTracer

        tracer = SpanTracer()
    engine = _build_engine(args, tracer=tracer)
    with _campaign_guard(engine, "sweep"):
        result = run_sweep(
            spec=_load_spec(args.file) if args.file else None,
            workload=args.workload,
            designs=args.design or None,
            models=args.model or None,
            protocols=args.protocol or None,
            seeds=[int(s) for s in args.seed] if args.seed else None,
            inputs=_parse_inputs(args.input) or None,
            limits=_parse_limits(args),
            engine=engine,
            batch=args.batch,
            lanes=args.lanes,
        )
        rendered = result.as_json() if args.json else result.render()
        print(rendered)
        if args.output:
            import os

            os.makedirs(os.path.dirname(args.output) or ".", exist_ok=True)
            with open(args.output, "w") as handle:
                handle.write(rendered + "\n")
            print(f"\nsweep table written to {args.output}")
        if tracer is not None:
            import os

            from repro.obs.trace import validate_chrome_trace

            payload = tracer.to_chrome_json()
            validate_chrome_trace(json.loads(payload))
            os.makedirs(os.path.dirname(args.trace) or ".", exist_ok=True)
            with open(args.trace, "w") as handle:
                handle.write(payload + "\n")
            print(f"Chrome trace written to {args.trace}")
        _print_exec_stats(engine)
    return 0 if result.ok else 1


def _cmd_explore(args) -> int:
    import json

    from repro.experiments.explore import run_explore

    tracer = None
    if args.trace:
        from repro.obs.trace import SpanTracer

        tracer = SpanTracer()
    engine = _build_engine(args, tracer=tracer)
    with _campaign_guard(engine, "explore"):
        result = run_explore(
            spec=_load_spec(args.file) if args.file else None,
            workload=args.workload,
            allocations=args.allocation or None,
            models=args.model or None,
            protocols=args.protocol or None,
            inputs=_parse_inputs(args.input) or None,
            **(
                {"anneal_seeds": tuple(int(s) for s in args.anneal_seed)}
                if args.anneal_seed else {}
            ),
            **(
                {"reanneal_seeds": tuple(int(s) for s in args.reanneal_seed)}
                if args.reanneal_seed else {}
            ),
            top_k=args.top_k,
            frontier_seed_cap=args.frontier_seeds,
            max_cells=args.max_cells,
            limits=_parse_limits(args),
            engine=engine,
            batch=args.batch,
        )
        rendered = result.as_json() if args.json else result.render()
        print(rendered)
        if args.output:
            import os

            os.makedirs(os.path.dirname(args.output) or ".", exist_ok=True)
            with open(args.output, "w") as handle:
                handle.write(rendered + "\n")
            print(f"\nexplore report written to {args.output}")
        if tracer is not None:
            import os

            from repro.obs.trace import validate_chrome_trace

            payload = tracer.to_chrome_json()
            validate_chrome_trace(json.loads(payload))
            os.makedirs(os.path.dirname(args.trace) or ".", exist_ok=True)
            with open(args.trace, "w") as handle:
                handle.write(payload + "\n")
            print(f"Chrome trace written to {args.trace}")
        _print_exec_stats(engine)
    return 0


def _cmd_serve(args) -> int:
    from repro.serve import ServeConfig, run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        executor=args.executor,
        default_deadline=args.default_deadline,
        max_deadline=args.max_deadline,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        cache_dir=args.cache or None,
        cache_capacity=args.cache_capacity,
        no_cache=args.no_cache,
        drain_grace=args.drain_grace,
        trace=args.trace,
        batch=args.batch,
        lanes=args.lanes,
        chaos=args.chaos,
        verbose=args.verbose,
        telemetry=not args.no_telemetry,
        journal_path=args.journal,
        flight_dir=args.flight_dir,
        flight_capacity=args.flight_capacity,
    )
    return run_server(config)


def _cmd_loadgen(args) -> int:
    from repro.serve import LoadgenConfig, run_loadgen

    config = LoadgenConfig(
        host=args.host,
        port=args.port,
        seed=args.seed,
        clients=args.clients,
        requests=args.requests,
        cases=args.cases,
        vectors=args.vectors,
        budget=args.budget,
        deadline=args.deadline,
        retries=args.retries,
        journal_path=args.journal,
    )
    server = None
    if args.serve:
        from repro.serve import ReproServer, ServeConfig

        server = ReproServer(
            ServeConfig(
                host=args.host,
                port=0,
                workers=args.serve_workers,
                queue_limit=args.serve_queue_limit,
                no_cache=True,
            )
        ).start()
        config.port = server.port
        print(f"loadgen: self-hosted daemon on {server.url}", file=sys.stderr)
    try:
        result = run_loadgen(config)
    finally:
        if server is not None:
            server.begin_drain("loadgen finished")
            server.wait(timeout=10.0)
    print(result.report, end="")
    if args.output:
        import os

        os.makedirs(os.path.dirname(args.output) or ".", exist_ok=True)
        with open(args.output, "w") as handle:
            handle.write(result.report)
        print(f"report written to {args.output}", file=sys.stderr)
    if args.timings:
        import json as _json
        import os

        os.makedirs(os.path.dirname(args.timings) or ".", exist_ok=True)
        with open(args.timings, "w") as handle:
            handle.write(_json.dumps(result.timings, indent=2, sort_keys=True) + "\n")
        print(f"timing sidecar written to {args.timings}", file=sys.stderr)
    return 0 if result.ok else 1


def _cmd_workloads(args) -> int:
    from repro.apps.workloads import default_registry
    from repro.experiments.tables import render_table

    registry = default_registry()
    if args.describe:
        workload = registry.get(args.describe)
        spec = workload.spec()
        print(f"workload {workload.id}: {workload.title}")
        print(f"  category:   {workload.category}")
        print(f"  spec:       {spec.name} "
              f"({len(list(spec.top.iter_tree()))} behaviors, "
              f"{spec.line_count()} lines)")
        designs = workload.designs(spec)
        marks = [
            name + (" (default)" if name == workload.default_design else "")
            for name in sorted(designs)
        ]
        print(f"  designs:    {', '.join(marks)}")
        stimulus = ", ".join(
            f"{k}={v}" for k, v in sorted(workload.default_inputs.items())
        ) or "(port defaults)"
        print(f"  stimulus:   {stimulus}")
        if workload.invariants:
            ranges = ", ".join(
                f"{name} in [{lo}, {hi}]"
                for name, (lo, hi) in sorted(workload.invariants.items())
            )
            print(f"  invariants: {ranges}")
        print(f"  {workload.description}")
        return 0
    if args.validate:
        failed = 0
        for workload, summary, error in registry.validate_all():
            if error is not None:
                failed += 1
                print(f"{workload.id}: FAIL - {error}")
            else:
                print(f"{workload.id}: {summary}")
        print(f"\n{len(registry) - failed}/{len(registry)} workloads valid")
        return 1 if failed else 0
    rows = []
    for workload in registry:
        spec = workload.spec()
        rows.append(
            [
                workload.id,
                workload.category,
                str(len(workload.designs(spec))),
                str(spec.line_count()),
                workload.title,
            ]
        )
    print(render_table(
        ["Workload", "Category", "Designs", "Lines", "Title"],
        rows,
        title="Registered workloads (see docs/WORKLOADS.md)",
    ))
    return 0


def _cmd_validate_hdl(args) -> int:
    from repro.export.validate import detect_toolchain, validate_workloads

    toolchain = detect_toolchain()
    print(f"toolchain: {toolchain.describe()}", file=sys.stderr)
    reports = validate_workloads(
        workloads=args.workload or None,
        models=tuple(args.model) if args.model else ("Model1",),
        toolchain=toolchain,
    )
    failed = 0
    for index, report in enumerate(reports):
        if index:
            print()
        print(report.render())
        if not report.ok:
            failed += 1
    if failed:
        print(f"\nvalidation FAILED for {failed} workload(s)", file=sys.stderr)
        return 1
    if toolchain.ghdl is None:
        print("\nnotice: ghdl not found - VHDL co-simulation was skipped",
              file=sys.stderr)
    return 0


def _cmd_explain(args) -> int:
    from repro.models import resolve_model
    from repro.obs.explain import SpecExplainer
    from repro.obs.provenance import provenance_report
    from repro.refine import Refiner

    spec = _load_spec(args.file)
    partition = _resolve_partition(spec, args)
    design = Refiner(
        spec, partition, resolve_model(args.model), protocol=args.protocol
    ).run()
    explainer = SpecExplainer(design.spec, spec)

    if args.check:
        unresolved = explainer.unresolved()
        report = provenance_report(design.spec, spec)
        print(report.describe())
        if unresolved:
            print(f"\nUNRESOLVED lines ({len(unresolved)}):")
            for item in unresolved:
                print(f"  {item.line_no}: {item.text}")
            return 1
        total = len(explainer.text.splitlines())
        print(f"\nall {total} refined lines resolve to a refinement step")
        return 0
    if args.all:
        print(explainer.summary())
        return 0
    if not args.line:
        raise ReproError("a LINE argument is required (or use --all/--check)")
    token = args.line
    if ":" in token:
        _, _, token = token.rpartition(":")
    try:
        line_no = int(token)
    except ValueError:
        raise ReproError(f"LINE must be an integer or file:line, got {args.line!r}")
    print(explainer.explain(line_no).describe())
    return 0


# -- parser ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Model refinement for hardware-software codesign "
            "(Gong, Gajski & Bakshi, DATE 1996) - reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_file(p):
        p.add_argument(
            "file",
            nargs="?",
            help="specification source file (default: the bundled medical system)",
        )

    p = sub.add_parser(
        "stats",
        help="specification statistics; or a daemon telemetry snapshot "
             "(--daemon) / an event-journal summary (--journal)",
    )
    add_file(p)
    p.add_argument("--daemon", metavar="HOST:PORT",
                   help="print a running daemon's /v1/stats snapshot "
                        "as JSON instead")
    p.add_argument("--metrics", action="store_true",
                   help="with --daemon: print the raw (locally "
                        "validated) Prometheus exposition instead")
    p.add_argument("--journal", metavar="PATH",
                   help="summarise a JSONL event journal instead")
    p.add_argument("--follow", action="store_true",
                   help="with --journal: tail the journal, printing "
                        "records as they are appended")
    p.set_defaults(handler=_cmd_stats)

    p = sub.add_parser("print", help="pretty-print a specification")
    add_file(p)
    p.set_defaults(handler=_cmd_print)

    def add_limits(p):
        p.add_argument("--max-steps", type=int, metavar="N",
                       help="scheduler step budget (default 2000000)")
        p.add_argument("--max-delta", type=int, metavar="N",
                       help="consecutive delta-cycle budget (default unlimited)")

    p = sub.add_parser("simulate", help="execute the functional model")
    add_file(p)
    p.add_argument("--input", action="append", metavar="NAME=VALUE")
    add_limits(p)
    p.add_argument("--vcd", metavar="PATH",
                   help="dump signal changes as a VCD waveform (GTKWave)")
    p.set_defaults(handler=_cmd_simulate)

    p = sub.add_parser("partition", help="run a baseline partitioner")
    add_file(p)
    p.add_argument(
        "--algorithm",
        choices=("greedy", "kl", "annealed"),
        default="greedy",
    )
    p.add_argument("--seed", type=int, default=None,
                   help="RNG seed for the annealed partitioner (default 1996)")
    p.set_defaults(handler=_cmd_partition)

    p = sub.add_parser("refine", help="run model refinement")
    add_file(p)
    p.add_argument("--design", required=True,
                   help="Design1, Design2 or Design3 (medical system)")
    p.add_argument("--model", default="Model1",
                   help="Model1..Model4 (default Model1)")
    p.add_argument("--protocol", default="handshake",
                   choices=("handshake", "strobe", "handshake-timeout"))
    p.add_argument("-o", "--output", help="write the refined source here")
    p.set_defaults(handler=_cmd_refine)

    p = sub.add_parser("verify", help="co-simulate original vs refined")
    add_file(p)
    p.add_argument("--design", required=True)
    p.add_argument("--model", default="Model1")
    p.add_argument("--protocol", default="handshake",
                   choices=("handshake", "strobe", "handshake-timeout"))
    p.add_argument("--input", action="append", metavar="NAME=VALUE")
    add_limits(p)
    p.set_defaults(handler=_cmd_verify)

    p = sub.add_parser(
        "export-c",
        help="generate a standalone C program from the functional model",
    )
    add_file(p)
    p.add_argument("--input", action="append", metavar="NAME=VALUE",
                   help="bake an input port value into the program")
    p.add_argument("-o", "--output", help="write the C source here")
    p.set_defaults(handler=_cmd_export_c)

    p = sub.add_parser(
        "export-vhdl",
        help="generate behavioral VHDL (optionally of a refined design)",
    )
    add_file(p)
    p.add_argument("--design", help="refine first: Design1/2/3 (medical)")
    p.add_argument("--model", default="Model1")
    p.add_argument("--entity", help="override the entity name")
    p.add_argument("-o", "--output", help="write the VHDL source here")
    p.set_defaults(handler=_cmd_export_vhdl)

    p = sub.add_parser("figure9", help="regenerate the Figure 9 table")
    p.add_argument("--no-paper", action="store_true",
                   help="omit the paper's reference rows")
    _add_workload_option(p)
    _add_exec_options(p)
    p.set_defaults(handler=_cmd_figure9)

    p = sub.add_parser("figure10", help="regenerate the Figure 10 table")
    p.add_argument("--check", action="store_true",
                   help="co-simulate every refined design (slower)")
    p.add_argument("--no-paper", action="store_true")
    p.add_argument("--breakdown", action="store_true",
                   help="also decompose each cell's CPU time per "
                        "refinement procedure")
    _add_workload_option(p)
    _add_exec_options(p)
    p.set_defaults(handler=_cmd_figure10)

    p = sub.add_parser(
        "robustness",
        help="fault-injection campaign: scenarios x designs x models",
    )
    p.add_argument("--seed", type=int, default=1996,
                   help="fault-injector RNG seed (default 1996)")
    p.add_argument("--protocol", default="handshake-timeout",
                   choices=("handshake", "strobe", "handshake-timeout"),
                   help="bus protocol the refined designs use")
    p.add_argument("--design", action="append",
                   help="restrict to a design (repeatable; default all)")
    p.add_argument("--model", action="append",
                   help="restrict to a model (repeatable; default all)")
    p.add_argument("-o", "--output",
                   default="benchmarks/output/robustness_campaign.txt",
                   help="write the campaign table here ('' to skip)")
    _add_workload_option(p)
    _add_exec_options(p)
    p.set_defaults(handler=_cmd_robustness)

    p = sub.add_parser(
        "profile",
        help="instrumented refine/simulate/verify pipeline with kernel counters",
    )
    add_file(p)
    p.add_argument("--design", required=True,
                   help="Design1, Design2 or Design3 (medical system)")
    p.add_argument("--model", default="Model1",
                   help="Model1..Model4 (default Model1)")
    p.add_argument("--protocol", default="handshake",
                   choices=("handshake", "strobe", "handshake-timeout"))
    p.add_argument("--input", action="append", metavar="NAME=VALUE")
    add_limits(p)
    p.add_argument("--no-verify", action="store_true",
                   help="skip the co-simulation (verify) phase")
    p.add_argument("-o", "--output",
                   default="benchmarks/output/profile.json",
                   help="write the profile JSON here ('' to skip)")
    p.add_argument("--json", action="store_true",
                   help="print the profile JSON to stdout instead of tables")
    p.set_defaults(handler=_cmd_profile)

    p = sub.add_parser(
        "trace",
        help="run the whole pipeline under a span tracer; export "
             "Chrome trace-event JSON",
    )
    add_file(p)
    p.add_argument("--design", required=True,
                   help="Design1, Design2 or Design3 (medical system)")
    p.add_argument("--model", default="Model1",
                   help="Model1..Model4 (default Model1)")
    p.add_argument("--protocol", default="handshake",
                   choices=("handshake", "strobe", "handshake-timeout"))
    p.add_argument("--input", action="append", metavar="NAME=VALUE")
    add_limits(p)
    p.add_argument("-o", "--output",
                   default="benchmarks/output/trace.json",
                   help="write Chrome trace-event JSON here ('' to skip)")
    p.set_defaults(handler=_cmd_trace)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing campaign: generated specs x oracles",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (default 0)")
    p.add_argument("--count", type=int, default=50,
                   help="number of generated cases (default 50)")
    p.add_argument("--budget", type=int, default=None,
                   help="generator statement budget (default 40)")
    p.add_argument("--vectors", type=int, default=3,
                   help="random input vectors per case (default 3)")
    p.add_argument("--model", action="append",
                   help="restrict refinement oracle to a model "
                        "(repeatable; default all four)")
    p.add_argument("--corpus", default="tests/corpus",
                   help="regression corpus to replay first ('' to skip)")
    p.add_argument("--batch", action="store_true",
                   help="also run the batch-parity oracle (each case's "
                        "vectors as lanes of one batched run)")
    p.add_argument("--lanes", type=int, default=8, metavar="N",
                   help="max lanes per batched run (default 8; "
                        "with --batch)")
    p.add_argument("--json", action="store_true",
                   help="print the report as JSON instead of a table")
    p.add_argument("-o", "--output",
                   default="benchmarks/output/fuzz_campaign.txt",
                   help="write the report here ('' to skip)")
    p.add_argument("--trace", metavar="PATH",
                   help="also run under a span tracer and write Chrome "
                        "trace-event JSON here")
    _add_exec_options(p)
    p.set_defaults(handler=_cmd_fuzz)

    p = sub.add_parser(
        "sweep",
        help="cross-product campaign: designs x models x protocols x seeds",
    )
    add_file(p)
    p.add_argument("--design", action="append",
                   help="design to include (repeatable; default all three)")
    p.add_argument("--model", action="append",
                   help="model to include (repeatable; default all four)")
    p.add_argument("--protocol", action="append",
                   choices=("handshake", "strobe", "handshake-timeout"),
                   help="protocol to include (repeatable; default handshake)")
    p.add_argument("--seed", action="append", metavar="N",
                   help="stimulus seed to include (repeatable; default 0 = "
                        "the baseline input vector)")
    p.add_argument("--input", action="append", metavar="NAME=VALUE",
                   help="override the baseline stimulus")
    add_limits(p)
    p.add_argument("--batch", action="store_true",
                   help="group seeds of one (design, model, protocol) "
                        "into batched multi-lane jobs (same table, "
                        "fewer refinements)")
    p.add_argument("--lanes", type=int, default=8, metavar="N",
                   help="max seeds per batched job (default 8; "
                        "with --batch)")
    p.add_argument("--json", action="store_true",
                   help="print a JSON report (cells + kernel-variant "
                        "counts) instead of the table")
    p.add_argument("-o", "--output",
                   default="benchmarks/output/sweep_campaign.txt",
                   help="write the sweep table here ('' to skip)")
    p.add_argument("--trace", metavar="PATH",
                   help="run under a span tracer and write Chrome "
                        "trace-event JSON here")
    _add_workload_option(p)
    _add_exec_options(p)
    p.set_defaults(handler=_cmd_sweep)

    p = sub.add_parser(
        "explore",
        help="multi-objective design-space exploration: layered "
             "partitioner search with a Pareto frontier over "
             "(traffic, refined lines, cost)",
    )
    add_file(p)
    p.add_argument("--allocation", action="append",
                   help="allocation to include (repeatable; default all "
                        "named alternatives — see docs/EXPLORATION.md)")
    p.add_argument("--model", action="append",
                   help="model to include (repeatable; default all four)")
    p.add_argument("--protocol", action="append",
                   choices=("handshake", "strobe", "handshake-timeout"),
                   help="protocol to include (repeatable; default handshake)")
    p.add_argument("--input", action="append", metavar="NAME=VALUE",
                   help="override the baseline stimulus")
    p.add_argument("--anneal-seed", action="append", metavar="N",
                   help="layer-1 annealing seed (repeatable; "
                        "default 1996 and 2023)")
    p.add_argument("--reanneal-seed", action="append", metavar="N",
                   help="layer-3 re-annealing seed (repeatable; default 7)")
    p.add_argument("--top-k", type=int, default=2, metavar="K",
                   help="quality-cache width: candidates per allocation "
                        "that seed the KL layer (default 2)")
    p.add_argument("--frontier-seeds", type=int, default=2, metavar="N",
                   help="frontier members per allocation re-annealed in "
                        "layer 3 (default 2)")
    p.add_argument("--max-cells", type=int, default=None, metavar="N",
                   help="hard cell budget; the campaign stops "
                        "deterministically when it is reached")
    add_limits(p)
    p.add_argument("--batch", action="store_true",
                   help="group a candidate's model x protocol points into "
                        "one job sharing a single profiling run (same "
                        "report, fewer simulations)")
    p.add_argument("--json", action="store_true",
                   help="print the JSON report (frontier + every evaluated "
                        "point + stop reason) instead of the table")
    p.add_argument("-o", "--output",
                   default="benchmarks/output/explore_frontier.txt",
                   help="write the frontier report here ('' to skip)")
    p.add_argument("--trace", metavar="PATH",
                   help="run under a span tracer and write Chrome "
                        "trace-event JSON here")
    _add_workload_option(p)
    _add_exec_options(p)
    p.set_defaults(handler=_cmd_explore)

    p = sub.add_parser(
        "serve",
        help="refinement-as-a-service daemon: HTTP/JSON jobs on the "
             "execution engine with deadlines, backpressure and "
             "graceful drain",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8736,
                   help="listen port (0 = ephemeral; default 8736)")
    p.add_argument("--workers", type=int, default=2,
                   help="worker slots = max concurrent jobs (default 2)")
    p.add_argument("--queue-limit", type=int, default=8,
                   help="admitted requests allowed to wait for a slot "
                        "before 429 (default 8)")
    p.add_argument("--executor", choices=("serial", "process"),
                   default="process",
                   help="process (isolated workers; default) or serial "
                        "(in-process, no crash isolation)")
    p.add_argument("--default-deadline", type=float, default=30.0,
                   metavar="SECONDS",
                   help="deadline granted when a request names none")
    p.add_argument("--max-deadline", type=float, default=300.0,
                   metavar="SECONDS",
                   help="ceiling any requested deadline is clamped to")
    p.add_argument("--breaker-threshold", type=int, default=3,
                   help="consecutive worker crashes that quarantine a "
                        "job spec (default 3)")
    p.add_argument("--breaker-cooldown", type=float, default=30.0,
                   metavar="SECONDS",
                   help="quarantine duration before a probe (default 30)")
    p.add_argument("--cache", metavar="DIR", default=None,
                   help="result-cache directory (default: "
                        "$REPRO_CACHE_DIR or .repro_cache)")
    p.add_argument("--cache-capacity", type=int, default=4096)
    p.add_argument("--no-cache", action="store_true",
                   help="serve without a result cache")
    p.add_argument("--drain-grace", type=float, default=30.0,
                   metavar="SECONDS",
                   help="how long a drain waits for in-flight requests")
    p.add_argument("--trace", action="store_true",
                   help="per-slot span tracing + the /v1/trace endpoint")
    p.add_argument("--batch", action="store_true",
                   help="accept batched simulate-cell jobs (a 'stimuli' "
                        "list advancing as one multi-lane simulation)")
    p.add_argument("--lanes", type=int, default=8, metavar="N",
                   help="max lanes a batched submission may request "
                        "(default 8; with --batch)")
    p.add_argument("--chaos", action="store_true",
                   help="register the chaos fault-injection tasks "
                        "(testing only)")
    p.add_argument("--verbose", action="store_true",
                   help="access-log lines on stderr")
    p.add_argument("--journal", metavar="PATH", default=None,
                   help="append every request/job/breaker event to this "
                        "JSONL journal")
    p.add_argument("--flight-dir", metavar="DIR",
                   default="benchmarks/output",
                   help="where flight-recorder dumps land on crash/"
                        "deadline/circuit-open (default benchmarks/output)")
    p.add_argument("--flight-capacity", type=int, default=512, metavar="N",
                   help="flight-recorder ring size in records "
                        "(default 512)")
    p.add_argument("--no-telemetry", action="store_true",
                   help="disable the metrics registry, event journal and "
                        "flight recorder entirely")
    p.set_defaults(handler=_cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="seeded load harness against a repro serve daemon; writes "
             "a byte-stable report",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8736,
                   help="daemon port (ignored with --serve)")
    p.add_argument("--serve", action="store_true",
                   help="self-host a daemon on an ephemeral port for "
                        "the duration of the run")
    p.add_argument("--serve-workers", type=int, default=2,
                   help="worker slots of the self-hosted daemon")
    p.add_argument("--serve-queue-limit", type=int, default=8,
                   help="queue limit of the self-hosted daemon")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (default 0)")
    p.add_argument("--clients", type=int, default=4,
                   help="concurrent client threads (default 4)")
    p.add_argument("--requests", type=int, default=25,
                   help="logical requests per client (default 25)")
    p.add_argument("--cases", type=int, default=6,
                   help="distinct generated specifications (default 6)")
    p.add_argument("--vectors", type=int, default=3,
                   help="input vectors per specification (default 3)")
    p.add_argument("--budget", type=int, default=8,
                   help="spec-generator statement budget (default 8)")
    p.add_argument("--deadline", type=float, default=30.0,
                   metavar="SECONDS",
                   help="per-request deadline (default 30)")
    p.add_argument("--retries", type=int, default=12,
                   help="per-request retry budget (default 12)")
    p.add_argument("-o", "--output",
                   default="benchmarks/output/loadgen_report.txt",
                   help="write the byte-stable report here ('' to skip)")
    p.add_argument("--timings",
                   default="benchmarks/output/loadgen_timings.json",
                   help="write the machine-dependent timing sidecar "
                        "here ('' to skip)")
    p.add_argument("--journal", metavar="PATH", default=None,
                   help="append client-side request events (shared "
                        "correlation IDs) to this JSONL journal")
    p.set_defaults(handler=_cmd_loadgen)

    p = sub.add_parser(
        "workloads",
        help="list, describe or validate the workload registry",
    )
    p.add_argument("--describe", metavar="ID",
                   help="print one workload's full card instead of the list")
    p.add_argument("--validate", action="store_true",
                   help="run every registry entry's self-checks "
                        "(termination, designs, invariants); exit 1 on "
                        "any failure")
    p.set_defaults(handler=_cmd_workloads)

    p = sub.add_parser(
        "validate-hdl",
        help="compile/co-simulate exported workloads with the external "
             "toolchain (cc, ghdl) against the kernel",
    )
    p.add_argument("--workload", action="append", metavar="ID",
                   help="workload to validate (repeatable; default "
                        "medical and pcm_pwm)")
    p.add_argument("--model", action="append", metavar="M",
                   help="implementation model for the refined-design "
                        "export sweep (repeatable; default Model1)")
    p.set_defaults(handler=_cmd_validate_hdl)

    p = sub.add_parser(
        "explain",
        help="which refinement step produced a line of the refined spec",
    )
    p.add_argument("line", nargs="?", metavar="LINE",
                   help="1-based line number (or file:line) of the "
                        "refined specification")
    add_file(p)
    p.add_argument("--design", required=True,
                   help="Design1, Design2 or Design3 (medical system)")
    p.add_argument("--model", default="Model1",
                   help="Model1..Model4 (default Model1)")
    p.add_argument("--protocol", default="handshake",
                   choices=("handshake", "strobe", "handshake-timeout"))
    p.add_argument("--all", action="store_true",
                   help="summarise the provenance of every line")
    p.add_argument("--check", action="store_true",
                   help="verify every refined line resolves to a "
                        "refinement step (exit 1 otherwise)")
    p.set_defaults(handler=_cmd_explain)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # campaign guards have already cleaned up and printed their
        # note; the conventional interrupted-exit code, no traceback
        return 130
    except BrokenPipeError:
        # output piped into a pager/head that closed early: not an error
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
