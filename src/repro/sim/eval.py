"""Expression evaluation and the runtime environment.

Values are plain Python objects (int, bool, str for enum literals,
tuple for arrays).  An :class:`Env` resolves names through a chain of
:class:`Frame` objects (lexical scoping mirrored at runtime) and falls
back to the kernel's signal store, so the same evaluator serves leaf
bodies, transition conditions and subprogram bodies.

Two evaluation strategies share these semantics:

* :func:`evaluate` — the reference tree walker, re-dispatching on node
  type every call; and
* :class:`ExprCompiler` — the hot-path variant: each AST node is
  *compiled once* into a Python closure (keyed by node identity), so
  repeated activations of the same statement skip all dispatch.  The
  interpreter uses a per-:class:`~repro.sim.interpreter.Simulator`
  compiler by default; the two strategies are equivalence-tested
  against each other.

Semantics follow the VHDL subset: ``/`` truncates toward zero, ``mod``
follows the right operand's sign (Python's ``%``), comparisons other
than ``=``/``/=`` require numeric operands, and ``and``/``or``
short-circuit with 0/1 accepted as booleans (bus control lines are
one-bit vectors).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.kernel import Kernel
from repro.spec.expr import BinOp, Const, Expr, Index, UnaryOp, VarRef
from repro.spec.types import DataType
from repro.spec.variable import Variable

__all__ = ["Frame", "Env", "ExprCompiler", "evaluate", "truthy"]


class Frame:
    """One scope's storage: name -> (dtype or None, value).

    Loop variables are stored with dtype ``None`` (no coercion).
    """

    __slots__ = ("owner", "slots")

    def __init__(self, owner: str):
        self.owner = owner
        self.slots: Dict[str, List] = {}

    def declare(self, decl: Variable) -> None:
        self.slots[decl.name] = [decl.dtype, decl.initial_value]

    def declare_raw(self, name: str, value) -> None:
        self.slots[name] = [None, value]

    def has(self, name: str) -> bool:
        return name in self.slots

    def read(self, name: str):
        return self.slots[name][1]

    def write(self, name: str, value) -> None:
        slot = self.slots[name]
        slot[1] = slot[0].coerce(value) if slot[0] is not None else value

    def snapshot(self) -> Dict[str, object]:
        return {name: slot[1] for name, slot in self.slots.items()}


class Env:
    """A chain of frames plus the kernel's signal store.

    ``on_read``/``on_write`` are optional profiler hooks fired with the
    resolved variable name on every access of a *variable* (signals are
    not profiled; they are refinement overhead, not specification
    channels).
    """

    __slots__ = ("kernel", "frames", "on_read", "on_write", "_resolve")

    def __init__(
        self,
        kernel: Kernel,
        frames: Tuple[Frame, ...],
        on_read: Optional[Callable[[str], None]] = None,
        on_write: Optional[Callable[[str], None]] = None,
    ):
        self.kernel = kernel
        self.frames = frames  # innermost first
        self.on_read = on_read
        self.on_write = on_write
        #: name -> binding Frame (None = kernel signal store); filled
        #: lazily by the compiled fast path.  Safe because a name's
        #: binding frame never changes within one env's lifetime:
        #: frames gain names only before the env is handed out.
        self._resolve: Dict[str, Optional[Frame]] = {}

    def child(self, frame: Frame) -> "Env":
        """A new environment with ``frame`` innermost."""
        return Env(self.kernel, (frame,) + self.frames, self.on_read, self.on_write)

    def _find(self, name: str) -> Optional[Frame]:
        for frame in self.frames:
            if frame.has(name):
                return frame
        return None

    def read(self, name: str):
        frame = self._find(name)
        if frame is not None:
            if self.on_read is not None:
                self.on_read(name)
            return frame.read(name)
        if self.kernel.has_signal(name):
            return self.kernel.read_signal(name)
        raise SimulationError(f"runtime: name {name!r} is not bound")

    def write(self, name: str, value) -> None:
        frame = self._find(name)
        if frame is None:
            raise SimulationError(f"runtime: cannot assign unbound name {name!r}")
        frame.write(name, value)
        if self.on_write is not None:
            self.on_write(name)

    def write_array_element(self, name: str, index: int, value) -> None:
        frame = self._find(name)
        if frame is None:
            raise SimulationError(f"runtime: cannot assign unbound name {name!r}")
        current = frame.read(name)
        if not isinstance(current, tuple):
            raise SimulationError(f"runtime: {name!r} is not an array")
        if not 0 <= index < len(current):
            raise SimulationError(
                f"runtime: index {index} out of range for {name!r} "
                f"(length {len(current)})"
            )
        updated = current[:index] + (value,) + current[index + 1 :]
        frame.write(name, updated)
        if self.on_write is not None:
            self.on_write(name)

    def peek(self, name: str):
        """Read without firing the profiler hook (trace capture)."""
        frame = self._find(name)
        if frame is not None:
            return frame.read(name)
        if self.kernel.has_signal(name):
            return self.kernel.read_signal(name)
        raise SimulationError(f"runtime: name {name!r} is not bound")

    def is_signal(self, name: str) -> bool:
        return self._find(name) is None and self.kernel.has_signal(name)

    def write_signal(self, name: str, value, dtype: Optional[DataType]) -> None:
        if dtype is not None:
            value = dtype.coerce(value)
        self.kernel.write_signal(name, value)


def truthy(value) -> bool:
    """Interpret a value as a condition (bools, and 0/1-style ints)."""
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return value != 0
    raise SimulationError(f"runtime: {value!r} is not a condition value")


def evaluate(expr: Expr, env: Env):
    """Evaluate ``expr`` in ``env``."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, VarRef):
        return env.read(expr.name)
    if isinstance(expr, Index):
        base = evaluate(expr.base, env)
        index = evaluate(expr.index_expr, env)
        if not isinstance(base, tuple):
            raise SimulationError(f"runtime: {expr.base} is not an array")
        if not isinstance(index, int) or isinstance(index, bool):
            raise SimulationError(f"runtime: array index {index!r} is not an integer")
        if not 0 <= index < len(base):
            raise SimulationError(
                f"runtime: index {index} out of range for {expr.base} "
                f"(length {len(base)})"
            )
        return base[index]
    if isinstance(expr, UnaryOp):
        if expr.op == "not":
            return not truthy(evaluate(expr.operand, env))
        operand = evaluate(expr.operand, env)
        _require_number(operand, expr)
        if expr.op == "-":
            return -operand
        if expr.op == "abs":
            return abs(operand)
        raise SimulationError(f"runtime: unknown unary operator {expr.op!r}")
    if isinstance(expr, BinOp):
        return _eval_binop(expr, env)
    raise SimulationError(f"runtime: cannot evaluate {expr!r}")


def _eval_binop(expr: BinOp, env: Env):
    op = expr.op
    if op == "and":
        return truthy(evaluate(expr.left, env)) and truthy(evaluate(expr.right, env))
    if op == "or":
        return truthy(evaluate(expr.left, env)) or truthy(evaluate(expr.right, env))

    left = evaluate(expr.left, env)
    right = evaluate(expr.right, env)
    if op == "=":
        return left == right
    if op == "/=":
        return left != right
    if op in ("<", "<=", ">", ">="):
        _require_number(left, expr)
        _require_number(right, expr)
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        return left >= right
    _require_number(left, expr)
    _require_number(right, expr)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise SimulationError(f"runtime: division by zero in {expr}")
        quotient = abs(left) // abs(right)  # VHDL '/': truncate toward zero
        return -quotient if (left < 0) != (right < 0) else quotient
    if op == "mod":
        if right == 0:
            raise SimulationError(f"runtime: mod by zero in {expr}")
        return left % right
    raise SimulationError(f"runtime: unknown binary operator {op!r}")


def _require_number(value, expr: Expr) -> None:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SimulationError(
            f"runtime: arithmetic on non-integer {value!r} in {expr}"
        )


def _is_number(value) -> bool:
    """Compile-time mirror of :func:`_require_number`'s acceptance."""
    return isinstance(value, int) and not isinstance(value, bool)


def _static_bool(expr: Expr) -> bool:
    """Whether ``expr`` is structurally guaranteed to evaluate to a
    Python bool (so ``truthy`` would be the identity on it)."""
    if isinstance(expr, BinOp):
        return expr.op in ("and", "or", "=", "/=", "<", "<=", ">", ">=")
    if isinstance(expr, UnaryOp):
        return expr.op == "not"
    return False


#: sentinel distinguishing "not yet resolved" from "resolves to the
#: kernel signal store (None)" in Env._resolve
_UNRESOLVED = object()

#: A compiled expression: call with an :class:`Env`, get the value.
CompiledExpr = Callable[[Env], object]


class ExprCompiler:
    """Compiles expression ASTs into Python closures, once per node.

    The cache is keyed by node identity (``id``); each entry keeps a
    strong reference to its node so an id can never be recycled while
    the cache lives.  Shared subtrees (refinement reuses condition
    nodes freely) compile exactly once.  Compiled closures reproduce
    :func:`evaluate`'s semantics and error messages exactly — the
    equivalence suite runs both strategies and compares.

    One compiler instance is intended to live as long as the simulator
    that owns it; do not share a compiler across threads.
    """

    __slots__ = ("_cache",)

    def __init__(self):
        self._cache: Dict[int, Tuple[Expr, CompiledExpr]] = {}

    def compile(self, expr: Expr) -> CompiledExpr:
        """The compiled form of ``expr`` (cached by node identity)."""
        key = id(expr)
        hit = self._cache.get(key)
        if hit is not None and hit[0] is expr:
            return hit[1]
        fn = self._build(expr)
        self._cache[key] = (expr, fn)
        return fn

    def evaluate(self, expr: Expr, env: Env):
        """Compile (or fetch) and evaluate in one call."""
        return self.compile(expr)(env)

    def __len__(self) -> int:
        return len(self._cache)

    # -- node builders --------------------------------------------------------

    def _build(self, expr: Expr) -> CompiledExpr:
        if isinstance(expr, Const):
            value = expr.value
            return lambda env: value
        if isinstance(expr, VarRef):
            return self._build_varref(expr)
        if isinstance(expr, Index):
            return self._build_index(expr)
        if isinstance(expr, UnaryOp):
            return self._build_unary(expr)
        if isinstance(expr, BinOp):
            return self._build_binop(expr)
        return self._raiser(f"runtime: cannot evaluate {expr!r}")

    @staticmethod
    def _raiser(message: str) -> CompiledExpr:
        def fail(env):
            raise SimulationError(message)

        return fail

    @staticmethod
    def _build_varref(expr: VarRef) -> CompiledExpr:
        # Inlines Env.read's frame walk (hottest closure by call
        # count) and memoises the binding frame in the env's own
        # ``_resolve`` map (``None`` = the kernel signal store), so
        # the steady state is two dict probes and the cache dies with
        # the env — no retention of dead call frames.
        name = expr.name
        message = f"runtime: name {name!r} is not bound"

        def read_var(env):
            frame = env._resolve.get(name, _UNRESOLVED)
            if frame is not _UNRESOLVED:
                if frame is None:
                    return env.kernel._signals[name]
                if env.on_read is not None:
                    env.on_read(name)
                return frame.slots[name][1]
            for frame in env.frames:
                slot = frame.slots.get(name)
                if slot is not None:
                    env._resolve[name] = frame
                    if env.on_read is not None:
                        env.on_read(name)
                    return slot[1]
            signals = env.kernel._signals
            if name in signals:
                env._resolve[name] = None
                return signals[name]
            raise SimulationError(message)

        return read_var

    def _build_index(self, expr: Index) -> CompiledExpr:
        base_fn = self.compile(expr.base)
        index_fn = self.compile(expr.index_expr)
        base_node = expr.base

        def run(env):
            base = base_fn(env)
            index = index_fn(env)
            if not isinstance(base, tuple):
                raise SimulationError(f"runtime: {base_node} is not an array")
            if not isinstance(index, int) or isinstance(index, bool):
                raise SimulationError(
                    f"runtime: array index {index!r} is not an integer"
                )
            if not 0 <= index < len(base):
                raise SimulationError(
                    f"runtime: index {index} out of range for {base_node} "
                    f"(length {len(base)})"
                )
            return base[index]

        return run

    def _build_unary(self, expr: UnaryOp) -> CompiledExpr:
        operand_fn = self.compile(expr.operand)
        if expr.op == "not":
            if _static_bool(expr.operand):
                return lambda env: not operand_fn(env)
            return lambda env: not truthy(operand_fn(env))
        if expr.op == "-":

            def negate(env):
                operand = operand_fn(env)
                _require_number(operand, expr)
                return -operand

            return negate
        if expr.op == "abs":

            def absolute(env):
                operand = operand_fn(env)
                _require_number(operand, expr)
                return abs(operand)

            return absolute
        return self._raiser(f"runtime: unknown unary operator {expr.op!r}")

    def _build_binop(self, expr: BinOp) -> CompiledExpr:
        op = expr.op
        left_fn = self.compile(expr.left)
        right_fn = self.compile(expr.right)
        if op in ("and", "or"):
            # skip the truthy() coercion for operands that are
            # structurally boolean (comparisons / not / and / or)
            left_bool = _static_bool(expr.left)
            right_bool = _static_bool(expr.right)
            if op == "and":
                if left_bool and right_bool:
                    return lambda env: left_fn(env) and right_fn(env)
                if left_bool:
                    return lambda env: left_fn(env) and truthy(right_fn(env))
                if right_bool:
                    return lambda env: truthy(left_fn(env)) and right_fn(env)
                return lambda env: truthy(left_fn(env)) and truthy(
                    right_fn(env)
                )
            if left_bool and right_bool:
                return lambda env: left_fn(env) or right_fn(env)
            if left_bool:
                return lambda env: left_fn(env) or truthy(right_fn(env))
            if right_bool:
                return lambda env: truthy(left_fn(env)) or right_fn(env)
            return lambda env: truthy(left_fn(env)) or truthy(right_fn(env))
        if op == "=":
            if isinstance(expr.right, Const):
                rconst = expr.right.value
                return lambda env: left_fn(env) == rconst
            return lambda env: left_fn(env) == right_fn(env)
        if op == "/=":
            if isinstance(expr.right, Const):
                rconst = expr.right.value
                return lambda env: left_fn(env) != rconst
            return lambda env: left_fn(env) != right_fn(env)
        if op in ("<", "<=", ">", ">="):
            compare = {
                "<": lambda a, b: a < b,
                "<=": lambda a, b: a <= b,
                ">": lambda a, b: a > b,
                ">=": lambda a, b: a >= b,
            }[op]
            if isinstance(expr.right, Const) and _is_number(
                expr.right.value
            ):
                rconst = expr.right.value

                def comparison_const(env):
                    left = left_fn(env)
                    _require_number(left, expr)
                    return compare(left, rconst)

                return comparison_const

            def comparison(env):
                left = left_fn(env)
                right = right_fn(env)
                _require_number(left, expr)
                _require_number(right, expr)
                return compare(left, right)

            return comparison
        if op in ("+", "-", "*"):
            combine = {
                "+": lambda a, b: a + b,
                "-": lambda a, b: a - b,
                "*": lambda a, b: a * b,
            }[op]
            if isinstance(expr.right, Const) and _is_number(
                expr.right.value
            ):
                rconst = expr.right.value

                def arithmetic_const(env):
                    left = left_fn(env)
                    _require_number(left, expr)
                    return combine(left, rconst)

                return arithmetic_const

            def arithmetic(env):
                left = left_fn(env)
                right = right_fn(env)
                _require_number(left, expr)
                _require_number(right, expr)
                return combine(left, right)

            return arithmetic
        if op == "/":

            def divide(env):
                left = left_fn(env)
                right = right_fn(env)
                _require_number(left, expr)
                _require_number(right, expr)
                if right == 0:
                    raise SimulationError(f"runtime: division by zero in {expr}")
                quotient = abs(left) // abs(right)  # VHDL '/': truncate toward zero
                return -quotient if (left < 0) != (right < 0) else quotient

            return divide
        if op == "mod":

            def modulo(env):
                left = left_fn(env)
                right = right_fn(env)
                _require_number(left, expr)
                _require_number(right, expr)
                if right == 0:
                    raise SimulationError(f"runtime: mod by zero in {expr}")
                return left % right

            return modulo
        return self._raiser(f"runtime: unknown binary operator {op!r}")
