"""Expression evaluation and the runtime environment.

Values are plain Python objects (int, bool, str for enum literals,
tuple for arrays).  An :class:`Env` resolves names through a chain of
:class:`Frame` objects (lexical scoping mirrored at runtime) and falls
back to the kernel's signal store, so the same evaluator serves leaf
bodies, transition conditions and subprogram bodies.

Semantics follow the VHDL subset: ``/`` truncates toward zero, ``mod``
follows the right operand's sign (Python's ``%``), comparisons other
than ``=``/``/=`` require numeric operands, and ``and``/``or``
short-circuit with 0/1 accepted as booleans (bus control lines are
one-bit vectors).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.kernel import Kernel
from repro.spec.expr import BinOp, Const, Expr, Index, UnaryOp, VarRef
from repro.spec.types import DataType
from repro.spec.variable import Variable

__all__ = ["Frame", "Env", "evaluate", "truthy"]


class Frame:
    """One scope's storage: name -> (dtype or None, value).

    Loop variables are stored with dtype ``None`` (no coercion).
    """

    __slots__ = ("owner", "slots")

    def __init__(self, owner: str):
        self.owner = owner
        self.slots: Dict[str, List] = {}

    def declare(self, decl: Variable) -> None:
        self.slots[decl.name] = [decl.dtype, decl.initial_value]

    def declare_raw(self, name: str, value) -> None:
        self.slots[name] = [None, value]

    def has(self, name: str) -> bool:
        return name in self.slots

    def read(self, name: str):
        return self.slots[name][1]

    def write(self, name: str, value) -> None:
        slot = self.slots[name]
        slot[1] = slot[0].coerce(value) if slot[0] is not None else value

    def snapshot(self) -> Dict[str, object]:
        return {name: slot[1] for name, slot in self.slots.items()}


class Env:
    """A chain of frames plus the kernel's signal store.

    ``on_read``/``on_write`` are optional profiler hooks fired with the
    resolved variable name on every access of a *variable* (signals are
    not profiled; they are refinement overhead, not specification
    channels).
    """

    __slots__ = ("kernel", "frames", "on_read", "on_write")

    def __init__(
        self,
        kernel: Kernel,
        frames: Tuple[Frame, ...],
        on_read: Optional[Callable[[str], None]] = None,
        on_write: Optional[Callable[[str], None]] = None,
    ):
        self.kernel = kernel
        self.frames = frames  # innermost first
        self.on_read = on_read
        self.on_write = on_write

    def child(self, frame: Frame) -> "Env":
        """A new environment with ``frame`` innermost."""
        return Env(self.kernel, (frame,) + self.frames, self.on_read, self.on_write)

    def _find(self, name: str) -> Optional[Frame]:
        for frame in self.frames:
            if frame.has(name):
                return frame
        return None

    def read(self, name: str):
        frame = self._find(name)
        if frame is not None:
            if self.on_read is not None:
                self.on_read(name)
            return frame.read(name)
        if self.kernel.has_signal(name):
            return self.kernel.read_signal(name)
        raise SimulationError(f"runtime: name {name!r} is not bound")

    def write(self, name: str, value) -> None:
        frame = self._find(name)
        if frame is None:
            raise SimulationError(f"runtime: cannot assign unbound name {name!r}")
        frame.write(name, value)
        if self.on_write is not None:
            self.on_write(name)

    def write_array_element(self, name: str, index: int, value) -> None:
        frame = self._find(name)
        if frame is None:
            raise SimulationError(f"runtime: cannot assign unbound name {name!r}")
        current = frame.read(name)
        if not isinstance(current, tuple):
            raise SimulationError(f"runtime: {name!r} is not an array")
        if not 0 <= index < len(current):
            raise SimulationError(
                f"runtime: index {index} out of range for {name!r} "
                f"(length {len(current)})"
            )
        updated = current[:index] + (value,) + current[index + 1 :]
        frame.write(name, updated)
        if self.on_write is not None:
            self.on_write(name)

    def peek(self, name: str):
        """Read without firing the profiler hook (trace capture)."""
        frame = self._find(name)
        if frame is not None:
            return frame.read(name)
        if self.kernel.has_signal(name):
            return self.kernel.read_signal(name)
        raise SimulationError(f"runtime: name {name!r} is not bound")

    def is_signal(self, name: str) -> bool:
        return self._find(name) is None and self.kernel.has_signal(name)

    def write_signal(self, name: str, value, dtype: Optional[DataType]) -> None:
        if dtype is not None:
            value = dtype.coerce(value)
        self.kernel.write_signal(name, value)


def truthy(value) -> bool:
    """Interpret a value as a condition (bools, and 0/1-style ints)."""
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return value != 0
    raise SimulationError(f"runtime: {value!r} is not a condition value")


def evaluate(expr: Expr, env: Env):
    """Evaluate ``expr`` in ``env``."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, VarRef):
        return env.read(expr.name)
    if isinstance(expr, Index):
        base = evaluate(expr.base, env)
        index = evaluate(expr.index_expr, env)
        if not isinstance(base, tuple):
            raise SimulationError(f"runtime: {expr.base} is not an array")
        if not isinstance(index, int) or isinstance(index, bool):
            raise SimulationError(f"runtime: array index {index!r} is not an integer")
        if not 0 <= index < len(base):
            raise SimulationError(
                f"runtime: index {index} out of range for {expr.base} "
                f"(length {len(base)})"
            )
        return base[index]
    if isinstance(expr, UnaryOp):
        if expr.op == "not":
            return not truthy(evaluate(expr.operand, env))
        operand = evaluate(expr.operand, env)
        _require_number(operand, expr)
        if expr.op == "-":
            return -operand
        if expr.op == "abs":
            return abs(operand)
        raise SimulationError(f"runtime: unknown unary operator {expr.op!r}")
    if isinstance(expr, BinOp):
        return _eval_binop(expr, env)
    raise SimulationError(f"runtime: cannot evaluate {expr!r}")


def _eval_binop(expr: BinOp, env: Env):
    op = expr.op
    if op == "and":
        return truthy(evaluate(expr.left, env)) and truthy(evaluate(expr.right, env))
    if op == "or":
        return truthy(evaluate(expr.left, env)) or truthy(evaluate(expr.right, env))

    left = evaluate(expr.left, env)
    right = evaluate(expr.right, env)
    if op == "=":
        return left == right
    if op == "/=":
        return left != right
    if op in ("<", "<=", ">", ">="):
        _require_number(left, expr)
        _require_number(right, expr)
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        return left >= right
    _require_number(left, expr)
    _require_number(right, expr)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise SimulationError(f"runtime: division by zero in {expr}")
        quotient = abs(left) // abs(right)  # VHDL '/': truncate toward zero
        return -quotient if (left < 0) != (right < 0) else quotient
    if op == "mod":
        if right == 0:
            raise SimulationError(f"runtime: mod by zero in {expr}")
        return left % right
    raise SimulationError(f"runtime: unknown binary operator {op!r}")


def _require_number(value, expr: Expr) -> None:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SimulationError(
            f"runtime: arithmetic on non-integer {value!r} in {expr}"
        )
