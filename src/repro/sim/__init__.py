"""Discrete-event simulation: kernel, interpreter, equivalence checking."""

from repro.sim.eval import Env, Frame, evaluate, truthy
from repro.sim.interpreter import Probe, SimulationResult, Simulator, TraceEvent
from repro.sim.kernel import Join, Kernel, Process, WaitCondition, WaitDelay

__all__ = [
    "Env",
    "Frame",
    "evaluate",
    "truthy",
    "Probe",
    "SimulationResult",
    "Simulator",
    "TraceEvent",
    "Join",
    "Kernel",
    "Process",
    "WaitCondition",
    "WaitDelay",
]
