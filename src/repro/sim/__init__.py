"""Discrete-event simulation: kernel, interpreter, batched multi-lane
engine, fault injection, metrics/tracing, equivalence checking."""

from repro.sim.batch import (
    DEFAULT_QUANTUM,
    BatchMetrics,
    BatchResult,
    BatchSimulator,
    LaneOutcome,
)
from repro.sim.eval import Env, ExprCompiler, Frame, evaluate, truthy
from repro.sim.faults import FaultEvent, FaultInjector, FaultScenario
from repro.sim.interpreter import Probe, SimulationResult, Simulator, TraceEvent
from repro.sim.kernel import (
    Join,
    Kernel,
    KernelLimits,
    Process,
    WaitCondition,
    WaitDelay,
)
from repro.sim.metrics import (
    DEFAULT_BUS_SIGNAL_PATTERNS,
    ExecMetrics,
    PhaseTimer,
    SimMetrics,
    TraceRecord,
    Tracer,
)

__all__ = [
    "DEFAULT_QUANTUM",
    "BatchMetrics",
    "BatchResult",
    "BatchSimulator",
    "LaneOutcome",
    "Env",
    "ExprCompiler",
    "Frame",
    "evaluate",
    "truthy",
    "FaultEvent",
    "FaultInjector",
    "FaultScenario",
    "Probe",
    "SimulationResult",
    "Simulator",
    "TraceEvent",
    "Join",
    "Kernel",
    "KernelLimits",
    "Process",
    "WaitCondition",
    "WaitDelay",
    "DEFAULT_BUS_SIGNAL_PATTERNS",
    "ExecMetrics",
    "PhaseTimer",
    "SimMetrics",
    "TraceRecord",
    "Tracer",
]
