"""Discrete-event simulation: kernel, interpreter, fault injection,
equivalence checking."""

from repro.sim.eval import Env, Frame, evaluate, truthy
from repro.sim.faults import FaultEvent, FaultInjector, FaultScenario
from repro.sim.interpreter import Probe, SimulationResult, Simulator, TraceEvent
from repro.sim.kernel import (
    Join,
    Kernel,
    KernelLimits,
    Process,
    WaitCondition,
    WaitDelay,
)

__all__ = [
    "Env",
    "Frame",
    "evaluate",
    "truthy",
    "FaultEvent",
    "FaultInjector",
    "FaultScenario",
    "Probe",
    "SimulationResult",
    "Simulator",
    "TraceEvent",
    "Join",
    "Kernel",
    "KernelLimits",
    "Process",
    "WaitCondition",
    "WaitDelay",
]
