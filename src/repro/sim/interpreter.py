"""IR interpreter: executes a :class:`Specification` on the DES kernel.

One :class:`Simulator` runs both shapes of specification:

* the *original* functional model — typically one sequential process,
  no signals, so the run is a plain depth-first execution; and
* a *refined* implementation model — a concurrent composition of
  component behaviors, memory slaves, arbiters and bus interfaces
  communicating through signals, where the kernel's delta cycles
  provide the VHDL signal semantics the protocols assume.

Behavior semantics (paper §2):

* a **leaf** executes its statement body;
* a **sequential composite** starts at its initial child; when the
  active child completes, the first transition (declaration order)
  leaving it whose condition holds is taken — to another child, or to
  completion when the arc's target is ``complete``; with no matching
  arc the composite completes;
* a **concurrent composite** spawns every child as a kernel process and
  completes when all non-daemon children complete (daemon children are
  refinement-inserted endless servers).

An optional ``cost_fn(behavior_name, stmt) -> seconds`` charges
execution time per statement (the estimation timing model); an optional
:class:`Probe` receives every variable access and statement execution
for profiling.

Execution strategies
--------------------

The interpreter has two paths over the same IR:

* the **compiled fast path** (default, ``compile_cache=True``): every
  statement and expression node is compiled *once* into a Python
  closure, cached by node identity for the life of the simulator.
  Statement subtrees that cannot suspend (no ``wait``, no subprogram
  call) and carry no instrumentation collapse into plain function
  calls — no generator frame per statement; wait conditions get their
  sensitivity sets and labels precomputed at compile time.
* the **reference tree walker** (``compile_cache=False``): the
  historical re-dispatching interpreter, kept as the semantic oracle —
  the equivalence suite runs both paths and compares traces.

When a ``cost_fn`` or ``probe`` is attached, compiled statements are
wrapped so every execution still charges time and fires the probe; the
closure cache then saves dispatch, not instrumentation.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.eval import (
    Env,
    ExprCompiler,
    Frame,
    _static_bool,
    evaluate,
    truthy,
)
from repro.sim.kernel import (
    Join,
    Kernel,
    KernelLimits,
    Process,
    WaitCondition,
    WaitDelay,
)
from repro.spec.behavior import Behavior, CompositeBehavior, LeafBehavior
from repro.spec.expr import BinOp, Const, Expr, Index, VarRef, free_variables
from repro.spec.specification import Specification
from repro.spec.stmt import (
    Assign,
    Body,
    CallStmt,
    For,
    If,
    Null,
    SignalAssign,
    Stmt,
    Wait,
    While,
)
from repro.spec.subprogram import Direction
from repro.spec.variable import Role, StorageClass

__all__ = [
    "DEFAULT_TIME_UNIT",
    "Probe",
    "TraceEvent",
    "SimulationResult",
    "Simulator",
]

#: Seconds represented by one ``wait for 1`` tick — the scale fault
#: scenarios expressed in protocol ticks must be multiplied by
#: (:meth:`repro.sim.faults.FaultScenario.scaled`).
DEFAULT_TIME_UNIT = 1e-9


class Probe:
    """Observer interface for profiling; all callbacks optional."""

    def on_statement(self, behavior: str, stmt: Stmt, cost: float) -> None:
        """A statement of ``behavior`` executed, costing ``cost`` seconds."""

    def on_read(self, behavior: str, variable: str) -> None:
        """``behavior`` read ``variable`` (resolved frame variable)."""

    def on_write(self, behavior: str, variable: str) -> None:
        """``behavior`` wrote ``variable``."""

    def on_behavior_start(self, behavior: str, time: float) -> None:
        """``behavior`` became active."""

    def on_behavior_end(self, behavior: str, time: float) -> None:
        """``behavior`` completed."""


class TraceEvent:
    """One observable write: (step index, variable, value)."""

    __slots__ = ("step", "variable", "value")

    def __init__(self, step: int, variable: str, value):
        self.step = step
        self.variable = variable
        self.value = value

    def __repr__(self) -> str:
        return f"TraceEvent({self.step}, {self.variable}={self.value!r})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TraceEvent)
            and self.variable == other.variable
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.variable, self.value))


class SimulationResult:
    """Outcome of one run: final state, output trace, completion status."""

    def __init__(
        self,
        spec: Specification,
        kernel: Kernel,
        frames: Dict[str, Frame],
        trace: List[TraceEvent],
        completed: bool,
    ):
        self.spec = spec
        self.kernel = kernel
        self._frames = frames
        self.trace = trace
        self.completed = completed

    @property
    def time(self) -> float:
        """Final simulation time (seconds of modelled time)."""
        return self.kernel.now

    @property
    def steps(self) -> int:
        return self.kernel.steps

    def value_of(self, name: str, behavior: Optional[str] = None):
        """Final value of a variable.

        With ``behavior`` given, looks at that behavior's local frame
        first; otherwise (or when absent there) falls back to the
        global frame, then to signals.
        """
        if behavior is not None:
            frame = self._frames.get(behavior)
            if frame is not None and frame.has(name):
                return frame.read(name)
        global_frame = self._frames.get("")
        if global_frame is not None and global_frame.has(name):
            return global_frame.read(name)
        if self.kernel.has_signal(name):
            return self.kernel.read_signal(name)
        raise SimulationError(f"no final value recorded for {name!r}")

    def output_values(self) -> Dict[str, object]:
        """Final values of all role-OUTPUT globals."""
        return {v.name: self.value_of(v.name) for v in self.spec.outputs()}

    def output_trace(self, variable: Optional[str] = None) -> List[TraceEvent]:
        """The observable write sequence (optionally for one variable)."""
        if variable is None:
            return list(self.trace)
        return [e for e in self.trace if e.variable == variable]

    def frame_snapshot(self, behavior: str) -> Dict[str, object]:
        """All locals of one behavior's frame."""
        frame = self._frames.get(behavior)
        if frame is None:
            raise SimulationError(f"behavior {behavior!r} has no frame")
        return frame.snapshot()

    def blocked(self) -> List[str]:
        """Names of processes still suspended at quiescence."""
        return [p.name for p in self.kernel.blocked_processes() if not p.finished]


class Simulator:
    """Executes a specification.

    Parameters
    ----------
    spec:
        The (validated) specification to run.
    cost_fn:
        Optional ``(behavior_name, stmt) -> seconds``; when given, every
        statement charges modelled time.
    probe:
        Optional :class:`Probe` receiving profiling callbacks.
    time_unit:
        Seconds represented by one ``wait for 1`` delay (refined
        protocol strobes use small integer delays); default 1e-9.
    compile_cache:
        Use the compiled fast path (statements/expressions closed into
        Python closures once, keyed by node identity).  ``False``
        selects the reference tree walker; results are identical —
        the flag exists for benchmarking and differential testing.
    """

    def __init__(
        self,
        spec: Specification,
        cost_fn: Optional[Callable[[str, Stmt], float]] = None,
        probe: Optional[Probe] = None,
        time_unit: float = DEFAULT_TIME_UNIT,
        compile_cache: bool = True,
    ):
        self.spec = spec
        self.cost_fn = cost_fn
        self.probe = probe
        self.time_unit = time_unit
        self.compile_cache = compile_cache
        self._kernel: Optional[Kernel] = None
        self._frames: Dict[str, Frame] = {}
        self._trace: List[TraceEvent] = []
        self._output_names = {v.name for v in spec.outputs()}
        self._signal_types: Dict[str, object] = {}
        self._trace_step = 0
        self._current_behavior = ""
        #: True when every statement must charge time / fire the probe
        self._instrumented = cost_fn is not None or probe is not None
        #: expression compiler (shared by both instrumentation modes)
        self._expr = ExprCompiler()
        #: id(stmt) -> (stmt, plain, fn) — compiled statement closures
        self._stmt_cache: Dict[int, Tuple[Stmt, bool, Callable]] = {}
        #: id(body) -> (body, plain, fn) — compiled statement sequences
        self._body_cache: Dict[int, Tuple[tuple, bool, Callable]] = {}
        #: callee names currently being compiled (recursion guard)
        self._compiling_calls: set = set()

    # -- public API -----------------------------------------------------------

    def run(
        self,
        inputs: Optional[Dict[str, object]] = None,
        max_steps: Optional[int] = None,
        limits: Optional[KernelLimits] = None,
        injector=None,
        require_completion: bool = False,
        metrics=None,
        tracer=None,
        observer=None,
    ) -> SimulationResult:
        """Execute the specification to quiescence.

        ``inputs`` overrides initial values of role-INPUT globals.
        The run *completes* when the root behavior's process finishes;
        daemon/server processes may remain blocked.

        ``limits`` bounds the run (see :class:`KernelLimits`;
        ``max_steps`` is a shorthand overriding ``limits.max_steps``);
        ``injector`` attaches a :class:`repro.sim.faults.FaultInjector`;
        ``metrics`` / ``tracer`` attach a
        :class:`repro.sim.metrics.SimMetrics` counter bag / a
        :class:`repro.sim.metrics.Tracer` event recorder to the run's
        kernel; ``observer`` attaches a signal-change observer such as
        :class:`repro.obs.vcd.VCDWriter` (waveform export); with
        ``require_completion=True`` a quiescent run whose
        root process never finished raises a structured
        :class:`repro.errors.DeadlockError` instead of returning an
        incomplete result.
        """
        kernel = Kernel(
            injector=injector, metrics=metrics, tracer=tracer,
            observer=observer,
        )
        root = self._begin_run(kernel, inputs)
        kernel.run(
            max_steps=max_steps,
            limits=limits,
            required=(root,) if require_completion else (),
        )
        return SimulationResult(
            self.spec, kernel, self._frames, self._trace, root.finished
        )

    def _begin_run(self, kernel: Kernel, inputs: Optional[Dict[str, object]]):
        """Point the simulator at ``kernel``, set up frames/signals and
        spawn the root process — everything :meth:`run` does before the
        kernel loop starts.

        Split out so the batched engine (:mod:`repro.sim.batch`) can
        prepare many lanes through the exact code path the single-lane
        API uses, then drive their kernels itself.  Returns the root
        :class:`Process`.
        """
        self._kernel = kernel
        self._frames = {}
        self._trace = []
        self._trace_step = 0
        self._signal_types = {}
        self._current_behavior = ""

        global_frame = Frame("")
        self._frames[""] = global_frame
        inputs = dict(inputs or {})
        for decl in self.spec.variables:
            if decl.kind is StorageClass.SIGNAL:
                kernel.register_signal(decl.name, decl.initial_value)
                self._signal_types[decl.name] = decl.dtype
            else:
                global_frame.declare(decl)
                if decl.name in inputs:
                    if decl.role is not Role.INPUT:
                        raise SimulationError(
                            f"{decl.name!r} is not an input variable"
                        )
                    global_frame.write(decl.name, inputs.pop(decl.name))
        if inputs:
            raise SimulationError(f"unknown inputs: {sorted(inputs)}")

        # behavior-declared signals are registered once here: a behavior
        # re-entered through a transition re-initialises its *variables*
        # but signals persist (they synchronise across processes)
        for behavior in self.spec.behaviors():
            for decl in behavior.decls:
                if decl.kind is StorageClass.SIGNAL:
                    kernel.register_signal(decl.name, decl.initial_value)
                    self._signal_types[decl.name] = decl.dtype

        on_read = self._on_env_read if self.probe is not None else None
        on_write = self._on_env_write if self.probe is not None else None
        root_env = Env(kernel, (global_frame,), on_read=on_read, on_write=on_write)
        return kernel.spawn(
            self.spec.top.name,
            self._run_behavior(self.spec.top, root_env),
        )

    # -- profiling hooks ---------------------------------------------------------

    def _on_env_read(self, name: str) -> None:
        self.probe.on_read(self._current_behavior, name)

    def _on_env_write(self, name: str) -> None:
        self.probe.on_write(self._current_behavior, name)

    # -- behaviors ---------------------------------------------------------------

    def _behavior_frame(self, behavior: Behavior) -> Frame:
        frame = Frame(behavior.name)
        for decl in behavior.decls:
            if decl.kind is not StorageClass.SIGNAL:
                frame.declare(decl)
        self._frames[behavior.name] = frame
        return frame

    def _run_behavior(self, behavior: Behavior, env: Env) -> Iterator:
        kernel = self._kernel
        frame = self._behavior_frame(behavior)
        inner = env.child(frame)
        if self.probe is not None:
            self.probe.on_behavior_start(behavior.name, kernel.now)
        if isinstance(behavior, LeafBehavior):
            if self.compile_cache:
                plain, fn = self._compiled_body(behavior.stmt_body)
                if plain:
                    fn(behavior.name, inner)
                else:
                    yield from fn(behavior.name, inner)
            else:
                yield from self._exec_body(
                    behavior.stmt_body, behavior.name, inner
                )
        elif isinstance(behavior, CompositeBehavior):
            if behavior.is_sequential:
                yield from self._run_sequential(behavior, inner)
            else:
                yield from self._run_concurrent(behavior, inner)
        else:
            raise SimulationError(f"unknown behavior type {behavior!r}")
        if self.probe is not None:
            self.probe.on_behavior_end(behavior.name, kernel.now)

    def _run_sequential(self, behavior: CompositeBehavior, env: Env) -> Iterator:
        current = behavior.initial
        while True:
            child = behavior.child(current)
            yield from self._run_behavior(child, env)
            arcs = behavior.transitions_from(current)
            if not arcs:
                return
            chosen = None
            # condition reads belong to the composite whose sequencer
            # evaluates them (matches the access graph's attribution)
            self._current_behavior = behavior.name
            for arc in arcs:
                if arc.condition is None or truthy(
                    self._eval(arc.condition, env)
                ):
                    chosen = arc
                    break
            if chosen is None or chosen.target is None:
                return
            current = chosen.target

    def _run_concurrent(self, behavior: CompositeBehavior, env: Env) -> Iterator:
        kernel = self._kernel
        waited: List[Process] = []
        for child in behavior.subs:
            process = kernel.spawn(child.name, self._run_behavior(child, env))
            if not child.daemon:
                waited.append(process)
        if waited:
            yield Join(waited)

    # -- statements -----------------------------------------------------------------

    def _eval(self, expr: Expr, env: Env):
        """Evaluate through the closure cache (or the reference walker)."""
        if self.compile_cache:
            return self._expr.compile(expr)(env)
        return evaluate(expr, env)

    def _exec_body(self, stmts: Body, behavior: str, env: Env) -> Iterator:
        for stmt in stmts:
            yield from self._exec_stmt(stmt, behavior, env)

    def _charge(self, stmt: Stmt, behavior: str) -> Iterator:
        cost = 0.0
        if self.cost_fn is not None:
            cost = self.cost_fn(behavior, stmt)
        if self.probe is not None:
            self.probe.on_statement(behavior, stmt, cost)
        if cost > 0:
            yield WaitDelay(cost)

    def _exec_stmt(self, stmt: Stmt, behavior: str, env: Env) -> Iterator:
        self._current_behavior = behavior
        yield from self._charge(stmt, behavior)

        if isinstance(stmt, Assign):
            self._do_assign(stmt.target, evaluate(stmt.value, env), behavior, env)
        elif isinstance(stmt, SignalAssign):
            self._do_signal_assign(stmt.target, evaluate(stmt.value, env), env)
        elif isinstance(stmt, If):
            if truthy(evaluate(stmt.cond, env)):
                yield from self._exec_body(stmt.then_body, behavior, env)
            else:
                for cond, arm in stmt.elifs:
                    if truthy(evaluate(cond, env)):
                        yield from self._exec_body(arm, behavior, env)
                        return
                yield from self._exec_body(stmt.else_body, behavior, env)
        elif isinstance(stmt, While):
            while truthy(evaluate(stmt.cond, env)):
                yield from self._exec_body(stmt.loop_body, behavior, env)
        elif isinstance(stmt, For):
            start = evaluate(stmt.start, env)
            stop = evaluate(stmt.stop, env)
            loop_frame = Frame(f"{behavior}.{stmt.variable}")
            loop_frame.declare_raw(stmt.variable, start)
            loop_env = env.child(loop_frame)
            for value in range(start, stop + 1):
                loop_frame.declare_raw(stmt.variable, value)
                yield from self._exec_body(stmt.loop_body, behavior, loop_env)
        elif isinstance(stmt, Wait):
            yield self._make_wait(stmt, env)
        elif isinstance(stmt, CallStmt):
            yield from self._exec_call(stmt, behavior, env)
        elif isinstance(stmt, Null):
            pass
        else:
            raise SimulationError(f"unknown statement {stmt!r}")

    def _do_assign(self, target: Expr, value, behavior: str, env: Env) -> None:
        if isinstance(target, VarRef):
            env.write(target.name, value)
            self._observe_write(target.name, env)
        elif isinstance(target, Index) and isinstance(target.base, VarRef):
            index = evaluate(target.index_expr, env)
            env.write_array_element(target.base.name, index, value)
            self._observe_write(target.base.name, env)
        else:
            raise SimulationError(f"invalid assignment target {target}")

    def _do_signal_assign(self, target: Expr, value, env: Env) -> None:
        if not isinstance(target, VarRef):
            raise SimulationError(
                f"signal assignment target must be a signal name, got {target}"
            )
        dtype = self._signal_types.get(target.name)
        env.write_signal(target.name, value, dtype)

    def _observe_write(self, name: str, env: Env) -> None:
        if name in self._output_names:
            self._trace_step += 1
            self._trace.append(
                TraceEvent(self._trace_step, name, env.peek(name))
            )

    def _make_wait(self, stmt: Wait, env: Env):
        kernel = self._kernel
        if stmt.delay is not None:
            return WaitDelay(stmt.delay * self.time_unit)
        if stmt.until is not None:
            cond = stmt.until
            sensitivity = {
                name for name in free_variables(cond) if env.is_signal(name)
            }
            return WaitCondition(
                lambda: truthy(evaluate(cond, env)),
                sensitivity,
                label=f"until {cond}",
            )
        # wait on s1, s2: edge-sensitive — wake on any change
        snapshot = {name: kernel.read_signal(name) for name in stmt.on}
        return WaitCondition(
            lambda: any(
                kernel.read_signal(name) != old for name, old in snapshot.items()
            ),
            set(stmt.on),
            label="on " + ", ".join(stmt.on),
        )

    # -- subprogram calls ----------------------------------------------------------------

    def _exec_call(self, stmt: CallStmt, behavior: str, env: Env) -> Iterator:
        callee = self.spec.subprograms.get(stmt.callee)
        if callee is None:
            raise SimulationError(f"call to unknown subprogram {stmt.callee!r}")
        if len(stmt.args) != callee.arity:
            raise SimulationError(
                f"{stmt.callee!r} expects {callee.arity} args, got {len(stmt.args)}"
            )
        frame = Frame(f"call:{callee.name}")
        # copy-in
        for param, arg in zip(callee.params, stmt.args):
            if param.direction is Direction.OUT:
                frame.slots[param.name] = [param.dtype, param.dtype.default_value()]
            else:
                value = evaluate(arg, env)
                frame.slots[param.name] = [param.dtype, param.dtype.coerce(value)]
        for decl in callee.decls:
            if decl.kind is StorageClass.SIGNAL:
                raise SimulationError(
                    f"subprogram {callee.name!r} declares a signal; unsupported"
                )
            frame.declare(decl)
        # subprogram bodies see globals + their own frame, not the caller's
        # locals (mirrors the validator's scope rule)
        global_frame = self._frames[""]
        call_env = Env(
            self._kernel,
            (frame, global_frame),
            on_read=env.on_read,
            on_write=env.on_write,
        )
        yield from self._exec_body(callee.stmt_body, behavior, call_env)
        # copy-out
        for param, arg in zip(callee.params, stmt.args):
            if param.direction in (Direction.OUT, Direction.INOUT):
                self._do_assign(arg, frame.read(param.name), behavior, env)

    # -- the compiled fast path --------------------------------------------------
    #
    # Each statement compiles once into either a *plain* closure
    # ``fn(behavior, env) -> None`` (statement subtree cannot suspend:
    # no Wait, no CallStmt, no instrumentation) or a *generator* closure
    # ``fn(behavior, env) -> Iterator`` yielding kernel requests.  Plain
    # spans execute without a generator frame per statement — the bulk
    # of the interpreter's historical dispatch cost.  Caches are keyed
    # by node identity and keep a strong reference to the node, so ids
    # cannot be recycled while the simulator lives.

    def _compiled_stmt(self, stmt: Stmt) -> Tuple[bool, Callable]:
        key = id(stmt)
        hit = self._stmt_cache.get(key)
        if hit is not None and hit[0] is stmt:
            return hit[1], hit[2]
        plain, fn = self._build_stmt(stmt)
        if self._instrumented:
            plain, fn = False, self._instrument(stmt, plain, fn)
        self._stmt_cache[key] = (stmt, plain, fn)
        return plain, fn

    def _instrument(self, stmt: Stmt, plain: bool, fn: Callable) -> Callable:
        """Wrap a compiled statement so each execution charges time and
        fires the probe (mirrors the reference path's ``_charge``)."""

        def run(behavior: str, env: Env) -> Iterator:
            self._current_behavior = behavior
            cost = 0.0
            if self.cost_fn is not None:
                cost = self.cost_fn(behavior, stmt)
            if self.probe is not None:
                self.probe.on_statement(behavior, stmt, cost)
            if cost > 0:
                yield WaitDelay(cost)
            if plain:
                fn(behavior, env)
            else:
                yield from fn(behavior, env)

        return run

    def _compiled_body(self, body: Body) -> Tuple[bool, Callable]:
        key = id(body)
        hit = self._body_cache.get(key)
        if hit is not None and hit[0] is body:
            return hit[1], hit[2]
        steps = tuple(self._compiled_stmt(stmt) for stmt in body)
        if len(steps) == 1:
            # single-statement body: reuse its closure directly (saves
            # one generator frame per execution on the non-plain path)
            plain, fn = steps[0]
            self._body_cache[key] = (body, plain, fn)
            return plain, fn
        if all(plain for plain, _ in steps):
            if len(steps) == 1:
                plain, fn = True, steps[0][1]
            else:
                fns = tuple(fn for _, fn in steps)

                def run_plain(behavior: str, env: Env) -> None:
                    for step in fns:
                        step(behavior, env)

                plain, fn = True, run_plain
        else:

            def run_gen(behavior: str, env: Env) -> Iterator:
                for step_plain, step in steps:
                    if step_plain:
                        step(behavior, env)
                    else:
                        yield from step(behavior, env)

            plain, fn = False, run_gen
        self._body_cache[key] = (body, plain, fn)
        return plain, fn

    @staticmethod
    def _raising(message: str) -> Callable:
        def fail(behavior: str, env: Env) -> None:
            raise SimulationError(message)

        return fail

    def _build_stmt(self, stmt: Stmt) -> Tuple[bool, Callable]:
        if isinstance(stmt, Assign):
            return self._build_assign(stmt)
        if isinstance(stmt, SignalAssign):
            return self._build_signal_assign(stmt)
        if isinstance(stmt, If):
            return self._build_if(stmt)
        if isinstance(stmt, While):
            return self._build_while(stmt)
        if isinstance(stmt, For):
            return self._build_for(stmt)
        if isinstance(stmt, Wait):
            return False, self._build_wait(stmt)
        if isinstance(stmt, CallStmt):
            return self._build_call(stmt)
        if isinstance(stmt, Null):
            return True, lambda behavior, env: None
        return True, self._raising(f"unknown statement {stmt!r}")

    def _build_assign(self, stmt: Assign) -> Tuple[bool, Callable]:
        target = stmt.target
        value_fn = self._expr.compile(stmt.value)
        if isinstance(target, VarRef):
            name = target.name
            if name in self._output_names:

                def run(behavior: str, env: Env) -> None:
                    env.write(name, value_fn(env))
                    self._observe_write(name, env)

            else:

                def run(behavior: str, env: Env) -> None:
                    env.write(name, value_fn(env))

            return True, run
        if isinstance(target, Index) and isinstance(target.base, VarRef):
            base = target.base.name
            index_fn = self._expr.compile(target.index_expr)
            if base in self._output_names:

                def run(behavior: str, env: Env) -> None:
                    value = value_fn(env)
                    env.write_array_element(base, index_fn(env), value)
                    self._observe_write(base, env)

            else:

                def run(behavior: str, env: Env) -> None:
                    value = value_fn(env)
                    env.write_array_element(base, index_fn(env), value)

            return True, run
        return True, self._raising(f"invalid assignment target {target}")

    def _build_signal_assign(self, stmt: SignalAssign) -> Tuple[bool, Callable]:
        target = stmt.target
        if not isinstance(target, VarRef):
            return True, self._raising(
                f"signal assignment target must be a signal name, got {target}"
            )
        name = target.name
        value_fn = self._expr.compile(stmt.value)

        def run(behavior: str, env: Env) -> None:
            value = value_fn(env)
            # self._signal_types is rebuilt per run(); resolve late
            dtype = self._signal_types.get(name)
            if dtype is not None:
                value = dtype.coerce(value)
            env.kernel.write_signal(name, value)

        return True, run

    def _build_if(self, stmt: If) -> Tuple[bool, Callable]:
        cond_fn = self._expr.compile(stmt.cond)
        then = self._compiled_body(stmt.then_body)
        elifs = tuple(
            (self._expr.compile(cond), self._compiled_body(arm))
            for cond, arm in stmt.elifs
        )
        orelse = self._compiled_body(stmt.else_body)
        if then[0] and orelse[0] and all(arm[0] for _, arm in elifs):
            then_fn = then[1]
            else_fn = orelse[1]
            arms = tuple((arm_cond, arm[1]) for arm_cond, arm in elifs)

            def run(behavior: str, env: Env) -> None:
                if truthy(cond_fn(env)):
                    then_fn(behavior, env)
                    return
                for arm_cond, arm_fn in arms:
                    if truthy(arm_cond(env)):
                        arm_fn(behavior, env)
                        return
                else_fn(behavior, env)

            return True, run

        def run_gen(behavior: str, env: Env) -> Iterator:
            branch = None
            if truthy(cond_fn(env)):
                branch = then
            else:
                for arm_cond, arm in elifs:
                    if truthy(arm_cond(env)):
                        branch = arm
                        break
                else:
                    branch = orelse
            plain, fn = branch
            if plain:
                fn(behavior, env)
            else:
                yield from fn(behavior, env)

        return False, run_gen

    def _build_while(self, stmt: While) -> Tuple[bool, Callable]:
        cond_fn = self._expr.compile(stmt.cond)
        plain, body_fn = self._compiled_body(stmt.loop_body)
        if isinstance(stmt.cond, Const) and isinstance(
            stmt.cond.value, (bool, int)
        ):
            # ``while 1`` server loops: drop the per-iteration test
            if not truthy(stmt.cond.value):
                return True, lambda behavior, env: None
            if plain:
                # a plain infinite loop can never yield: surface the
                # hang as the reference path would (by running it), so
                # fall through to the generic closure below
                pass
            else:

                def run_forever(behavior: str, env: Env) -> Iterator:
                    while True:
                        yield from body_fn(behavior, env)

                return False, run_forever
        if plain:

            def run(behavior: str, env: Env) -> None:
                while truthy(cond_fn(env)):
                    body_fn(behavior, env)

            return True, run

        def run_gen(behavior: str, env: Env) -> Iterator:
            while truthy(cond_fn(env)):
                yield from body_fn(behavior, env)

        return False, run_gen

    def _build_for(self, stmt: For) -> Tuple[bool, Callable]:
        start_fn = self._expr.compile(stmt.start)
        stop_fn = self._expr.compile(stmt.stop)
        variable = stmt.variable
        plain, body_fn = self._compiled_body(stmt.loop_body)
        if plain:

            def run(behavior: str, env: Env) -> None:
                start = start_fn(env)
                stop = stop_fn(env)
                loop_frame = Frame(f"{behavior}.{variable}")
                loop_frame.declare_raw(variable, start)
                loop_env = env.child(loop_frame)
                for value in range(start, stop + 1):
                    loop_frame.declare_raw(variable, value)
                    body_fn(behavior, loop_env)

            return True, run

        def run_gen(behavior: str, env: Env) -> Iterator:
            start = start_fn(env)
            stop = stop_fn(env)
            loop_frame = Frame(f"{behavior}.{variable}")
            loop_frame.declare_raw(variable, start)
            loop_env = env.child(loop_frame)
            for value in range(start, stop + 1):
                loop_frame.declare_raw(variable, value)
                yield from body_fn(behavior, loop_env)

        return False, run_gen

    def _build_wait(self, stmt: Wait) -> Callable:
        """Compile a wait: the request shape, the condition closure, the
        sensitivity name set and the diagnostic label are all fixed at
        compile time; only signal membership and snapshots are taken per
        execution."""
        if stmt.delay is not None:
            request = WaitDelay(stmt.delay * self.time_unit)

            def run_delay(behavior: str, env: Env) -> Iterator:
                yield request

            return run_delay
        if stmt.until is not None:
            cond = stmt.until
            cond_fn = self._expr.compile(cond)
            cond_bool = _static_bool(cond)
            names = tuple(free_variables(cond))
            label = f"until {cond}"
            # wake-probe shape (see WaitCondition.probe): attached per
            # request only when the probed name is the whole
            # sensitivity set, i.e. the condition reads exactly one
            # signal and nothing else the kernel could change
            probe_shape: Optional[tuple] = None
            if isinstance(cond, BinOp) and cond.op == "=":
                if isinstance(cond.left, VarRef) and isinstance(
                    cond.right, Const
                ):
                    probe_shape = ("eq", cond.left.name, cond.right.value)
                elif isinstance(cond.right, VarRef) and isinstance(
                    cond.left, Const
                ):
                    probe_shape = ("eq", cond.right.name, cond.left.value)
            elif isinstance(cond, VarRef):
                probe_shape = ("truthy", cond.name)
            probe_name = probe_shape[1] if probe_shape is not None else None
            # Which free names are signals depends only on the names
            # bound by each frame in the chain — static per frame
            # *owner* — so the sensitivity set is memoised by the
            # owner chain (stable across e.g. repeated subprogram
            # calls, whose envs are fresh objects each time).  The
            # whole WaitCondition (whose predicate closes over the
            # env) is reused via the env's own resolution map: a
            # long-lived behavior env hits forever, a churning call
            # env rebuilds one request per call and then dies with it.
            sens_cache: Dict[tuple, frozenset] = {}
            # "\x00" keeps the key out of the variable-name namespace
            wait_key = f"\x00wait:{id(stmt)}"

            def run_until(behavior: str, env: Env) -> Iterator:
                request = env._resolve.get(wait_key)
                if request is None:
                    chain = tuple(frame.owner for frame in env.frames)
                    sensitivity = sens_cache.get(chain)
                    if sensitivity is None:
                        sensitivity = frozenset(
                            name for name in names if env.is_signal(name)
                        )
                        sens_cache[chain] = sensitivity
                    if cond_bool:
                        predicate = lambda: cond_fn(env)  # noqa: E731
                    else:
                        predicate = lambda: truthy(  # noqa: E731
                            cond_fn(env)
                        )
                    probe = (
                        probe_shape
                        if probe_name is not None
                        and len(sensitivity) == 1
                        and probe_name in sensitivity
                        else None
                    )
                    request = WaitCondition(
                        predicate, sensitivity, label=label, probe=probe
                    )
                    env._resolve[wait_key] = request
                yield request

            return run_until
        # wait on s1, s2: edge-sensitive — wake on any change
        names = tuple(stmt.on)
        sensitivity = frozenset(names)
        label = "on " + ", ".join(names)

        def run_on(behavior: str, env: Env) -> Iterator:
            kernel = self._kernel
            snapshot = [(name, kernel.read_signal(name)) for name in names]
            # edge waits are satisfied by *any* change of a watched
            # signal: a waiter only becomes a wake candidate in the
            # delta cycle that changed one, and at that instant the
            # snapshot comparison is true by construction
            yield WaitCondition(
                lambda: any(
                    kernel.read_signal(name) != old for name, old in snapshot
                ),
                sensitivity,
                label=label,
                probe=("edge",),
            )

        return run_on

    def _build_call(self, stmt: CallStmt) -> Tuple[bool, Callable]:
        callee = self.spec.subprograms.get(stmt.callee)
        if callee is None:
            return False, self._raising_gen(
                f"call to unknown subprogram {stmt.callee!r}"
            )
        if len(stmt.args) != callee.arity:
            return False, self._raising_gen(
                f"{stmt.callee!r} expects {callee.arity} args, "
                f"got {len(stmt.args)}"
            )
        arg_fns = tuple(self._expr.compile(arg) for arg in stmt.args)
        params = callee.params
        frame_name = f"call:{callee.name}"
        # everything shape-dependent is fixed at compile time: the
        # copy-in plan (OUT params get the dtype default — values are
        # immutable, so the default is safe to share), the local decls,
        # and the copy-out pairs
        copy_in = tuple(
            (
                param.name,
                param.dtype,
                param.dtype.default_value()
                if param.direction is Direction.OUT
                else None,
                None if param.direction is Direction.OUT else arg_fn,
            )
            for param, arg_fn in zip(params, arg_fns)
        )
        signal_decl = any(
            decl.kind is StorageClass.SIGNAL for decl in callee.decls
        )
        decls = tuple(callee.decls)
        copy_out = tuple(
            (param.name, arg)
            for param, arg in zip(params, stmt.args)
            if param.direction in (Direction.OUT, Direction.INOUT)
        )

        # compile the callee body eagerly when not recursive, so a
        # wait-free subprogram collapses into a *plain* call (no
        # generator frame); recursive callees compile lazily at first
        # execution instead
        body_plain = False
        body_fn: Optional[Callable] = None
        if (
            callee.name not in self._compiling_calls
            and not signal_decl
        ):
            self._compiling_calls.add(callee.name)
            try:
                body_plain, body_fn = self._compiled_body(callee.stmt_body)
            finally:
                self._compiling_calls.discard(callee.name)

        def enter(env: Env) -> Tuple[Frame, Env]:
            frame = Frame(frame_name)
            slots = frame.slots
            for name, dtype, default, arg_fn in copy_in:
                if arg_fn is None:
                    slots[name] = [dtype, default]
                else:
                    slots[name] = [dtype, dtype.coerce(arg_fn(env))]
            for decl in decls:
                frame.declare(decl)
            # subprogram bodies see globals + their own frame, not the
            # caller's locals (mirrors the validator's scope rule)
            call_env = Env(
                self._kernel,
                (frame, self._frames[""]),
                on_read=env.on_read,
                on_write=env.on_write,
            )
            return frame, call_env

        if body_plain:

            def run_plain(behavior: str, env: Env) -> None:
                frame, call_env = enter(env)
                body_fn(behavior, call_env)
                for name, arg in copy_out:
                    self._do_assign(
                        arg, frame.slots[name][1], behavior, env
                    )

            return True, run_plain

        def run(behavior: str, env: Env) -> Iterator:
            if signal_decl:
                raise SimulationError(
                    f"subprogram {callee.name!r} declares a signal; "
                    f"unsupported"
                )
            frame, call_env = enter(env)
            plain, fn = (
                (body_plain, body_fn)
                if body_fn is not None
                else self._compiled_body(callee.stmt_body)
            )
            if plain:
                fn(behavior, call_env)
            else:
                yield from fn(behavior, call_env)
            # copy-out
            for name, arg in copy_out:
                self._do_assign(arg, frame.slots[name][1], behavior, env)

        return False, run

    @staticmethod
    def _raising_gen(message: str) -> Callable:
        def fail(behavior: str, env: Env) -> Iterator:
            raise SimulationError(message)
            yield  # pragma: no cover — generator shape only

        return fail
