"""IR interpreter: executes a :class:`Specification` on the DES kernel.

One :class:`Simulator` runs both shapes of specification:

* the *original* functional model — typically one sequential process,
  no signals, so the run is a plain depth-first execution; and
* a *refined* implementation model — a concurrent composition of
  component behaviors, memory slaves, arbiters and bus interfaces
  communicating through signals, where the kernel's delta cycles
  provide the VHDL signal semantics the protocols assume.

Behavior semantics (paper §2):

* a **leaf** executes its statement body;
* a **sequential composite** starts at its initial child; when the
  active child completes, the first transition (declaration order)
  leaving it whose condition holds is taken — to another child, or to
  completion when the arc's target is ``complete``; with no matching
  arc the composite completes;
* a **concurrent composite** spawns every child as a kernel process and
  completes when all non-daemon children complete (daemon children are
  refinement-inserted endless servers).

An optional ``cost_fn(behavior_name, stmt) -> seconds`` charges
execution time per statement (the estimation timing model); an optional
:class:`Probe` receives every variable access and statement execution
for profiling.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import SimulationError
from repro.sim.eval import Env, Frame, evaluate, truthy
from repro.sim.kernel import (
    Join,
    Kernel,
    KernelLimits,
    Process,
    WaitCondition,
    WaitDelay,
)
from repro.spec.behavior import Behavior, CompositeBehavior, LeafBehavior
from repro.spec.expr import Expr, Index, VarRef, free_variables
from repro.spec.specification import Specification
from repro.spec.stmt import (
    Assign,
    Body,
    CallStmt,
    For,
    If,
    Null,
    SignalAssign,
    Stmt,
    Wait,
    While,
)
from repro.spec.subprogram import Direction
from repro.spec.variable import Role, StorageClass

__all__ = [
    "DEFAULT_TIME_UNIT",
    "Probe",
    "TraceEvent",
    "SimulationResult",
    "Simulator",
]

#: Seconds represented by one ``wait for 1`` tick — the scale fault
#: scenarios expressed in protocol ticks must be multiplied by
#: (:meth:`repro.sim.faults.FaultScenario.scaled`).
DEFAULT_TIME_UNIT = 1e-9


class Probe:
    """Observer interface for profiling; all callbacks optional."""

    def on_statement(self, behavior: str, stmt: Stmt, cost: float) -> None:
        """A statement of ``behavior`` executed, costing ``cost`` seconds."""

    def on_read(self, behavior: str, variable: str) -> None:
        """``behavior`` read ``variable`` (resolved frame variable)."""

    def on_write(self, behavior: str, variable: str) -> None:
        """``behavior`` wrote ``variable``."""

    def on_behavior_start(self, behavior: str, time: float) -> None:
        """``behavior`` became active."""

    def on_behavior_end(self, behavior: str, time: float) -> None:
        """``behavior`` completed."""


class TraceEvent:
    """One observable write: (step index, variable, value)."""

    __slots__ = ("step", "variable", "value")

    def __init__(self, step: int, variable: str, value):
        self.step = step
        self.variable = variable
        self.value = value

    def __repr__(self) -> str:
        return f"TraceEvent({self.step}, {self.variable}={self.value!r})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TraceEvent)
            and self.variable == other.variable
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.variable, self.value))


class SimulationResult:
    """Outcome of one run: final state, output trace, completion status."""

    def __init__(
        self,
        spec: Specification,
        kernel: Kernel,
        frames: Dict[str, Frame],
        trace: List[TraceEvent],
        completed: bool,
    ):
        self.spec = spec
        self.kernel = kernel
        self._frames = frames
        self.trace = trace
        self.completed = completed

    @property
    def time(self) -> float:
        """Final simulation time (seconds of modelled time)."""
        return self.kernel.now

    @property
    def steps(self) -> int:
        return self.kernel.steps

    def value_of(self, name: str, behavior: Optional[str] = None):
        """Final value of a variable.

        With ``behavior`` given, looks at that behavior's local frame
        first; otherwise (or when absent there) falls back to the
        global frame, then to signals.
        """
        if behavior is not None:
            frame = self._frames.get(behavior)
            if frame is not None and frame.has(name):
                return frame.read(name)
        global_frame = self._frames.get("")
        if global_frame is not None and global_frame.has(name):
            return global_frame.read(name)
        if self.kernel.has_signal(name):
            return self.kernel.read_signal(name)
        raise SimulationError(f"no final value recorded for {name!r}")

    def output_values(self) -> Dict[str, object]:
        """Final values of all role-OUTPUT globals."""
        return {v.name: self.value_of(v.name) for v in self.spec.outputs()}

    def output_trace(self, variable: Optional[str] = None) -> List[TraceEvent]:
        """The observable write sequence (optionally for one variable)."""
        if variable is None:
            return list(self.trace)
        return [e for e in self.trace if e.variable == variable]

    def frame_snapshot(self, behavior: str) -> Dict[str, object]:
        """All locals of one behavior's frame."""
        frame = self._frames.get(behavior)
        if frame is None:
            raise SimulationError(f"behavior {behavior!r} has no frame")
        return frame.snapshot()

    def blocked(self) -> List[str]:
        """Names of processes still suspended at quiescence."""
        return [p.name for p in self.kernel.blocked_processes() if not p.finished]


class Simulator:
    """Executes a specification.

    Parameters
    ----------
    spec:
        The (validated) specification to run.
    cost_fn:
        Optional ``(behavior_name, stmt) -> seconds``; when given, every
        statement charges modelled time.
    probe:
        Optional :class:`Probe` receiving profiling callbacks.
    time_unit:
        Seconds represented by one ``wait for 1`` delay (refined
        protocol strobes use small integer delays); default 1e-9.
    """

    def __init__(
        self,
        spec: Specification,
        cost_fn: Optional[Callable[[str, Stmt], float]] = None,
        probe: Optional[Probe] = None,
        time_unit: float = DEFAULT_TIME_UNIT,
    ):
        self.spec = spec
        self.cost_fn = cost_fn
        self.probe = probe
        self.time_unit = time_unit
        self._kernel: Optional[Kernel] = None
        self._frames: Dict[str, Frame] = {}
        self._trace: List[TraceEvent] = []
        self._output_names: set = set()
        self._signal_types: Dict[str, object] = {}
        self._trace_step = 0
        self._current_behavior = ""

    # -- public API -----------------------------------------------------------

    def run(
        self,
        inputs: Optional[Dict[str, object]] = None,
        max_steps: Optional[int] = None,
        limits: Optional[KernelLimits] = None,
        injector=None,
        require_completion: bool = False,
    ) -> SimulationResult:
        """Execute the specification to quiescence.

        ``inputs`` overrides initial values of role-INPUT globals.
        The run *completes* when the root behavior's process finishes;
        daemon/server processes may remain blocked.

        ``limits`` bounds the run (see :class:`KernelLimits`;
        ``max_steps`` is a shorthand overriding ``limits.max_steps``);
        ``injector`` attaches a :class:`repro.sim.faults.FaultInjector`;
        with ``require_completion=True`` a quiescent run whose root
        process never finished raises a structured
        :class:`repro.errors.DeadlockError` instead of returning an
        incomplete result.
        """
        kernel = Kernel(injector=injector)
        self._kernel = kernel
        self._frames = {}
        self._trace = []
        self._trace_step = 0
        self._signal_types = {}
        self._output_names = {v.name for v in self.spec.outputs()}

        global_frame = Frame("")
        self._frames[""] = global_frame
        inputs = dict(inputs or {})
        for decl in self.spec.variables:
            if decl.kind is StorageClass.SIGNAL:
                kernel.register_signal(decl.name, decl.initial_value)
                self._signal_types[decl.name] = decl.dtype
            else:
                global_frame.declare(decl)
                if decl.name in inputs:
                    if decl.role is not Role.INPUT:
                        raise SimulationError(
                            f"{decl.name!r} is not an input variable"
                        )
                    global_frame.write(decl.name, inputs.pop(decl.name))
        if inputs:
            raise SimulationError(f"unknown inputs: {sorted(inputs)}")

        # behavior-declared signals are registered once here: a behavior
        # re-entered through a transition re-initialises its *variables*
        # but signals persist (they synchronise across processes)
        for behavior in self.spec.behaviors():
            for decl in behavior.decls:
                if decl.kind is StorageClass.SIGNAL:
                    kernel.register_signal(decl.name, decl.initial_value)
                    self._signal_types[decl.name] = decl.dtype

        on_read = self._on_env_read if self.probe is not None else None
        on_write = self._on_env_write if self.probe is not None else None
        root_env = Env(kernel, (global_frame,), on_read=on_read, on_write=on_write)
        root = kernel.spawn(
            self.spec.top.name,
            self._run_behavior(self.spec.top, root_env),
        )
        kernel.run(
            max_steps=max_steps,
            limits=limits,
            required=(root,) if require_completion else (),
        )
        return SimulationResult(
            self.spec, kernel, self._frames, self._trace, root.finished
        )

    # -- profiling hooks ---------------------------------------------------------

    def _on_env_read(self, name: str) -> None:
        self.probe.on_read(self._current_behavior, name)

    def _on_env_write(self, name: str) -> None:
        self.probe.on_write(self._current_behavior, name)

    # -- behaviors ---------------------------------------------------------------

    def _behavior_frame(self, behavior: Behavior) -> Frame:
        frame = Frame(behavior.name)
        for decl in behavior.decls:
            if decl.kind is not StorageClass.SIGNAL:
                frame.declare(decl)
        self._frames[behavior.name] = frame
        return frame

    def _run_behavior(self, behavior: Behavior, env: Env) -> Iterator:
        kernel = self._kernel
        frame = self._behavior_frame(behavior)
        inner = env.child(frame)
        if self.probe is not None:
            self.probe.on_behavior_start(behavior.name, kernel.now)
        if isinstance(behavior, LeafBehavior):
            yield from self._exec_body(behavior.stmt_body, behavior.name, inner)
        elif isinstance(behavior, CompositeBehavior):
            if behavior.is_sequential:
                yield from self._run_sequential(behavior, inner)
            else:
                yield from self._run_concurrent(behavior, inner)
        else:
            raise SimulationError(f"unknown behavior type {behavior!r}")
        if self.probe is not None:
            self.probe.on_behavior_end(behavior.name, kernel.now)

    def _run_sequential(self, behavior: CompositeBehavior, env: Env) -> Iterator:
        current = behavior.initial
        while True:
            child = behavior.child(current)
            yield from self._run_behavior(child, env)
            arcs = behavior.transitions_from(current)
            if not arcs:
                return
            chosen = None
            # condition reads belong to the composite whose sequencer
            # evaluates them (matches the access graph's attribution)
            self._current_behavior = behavior.name
            for arc in arcs:
                if arc.condition is None or truthy(evaluate(arc.condition, env)):
                    chosen = arc
                    break
            if chosen is None or chosen.target is None:
                return
            current = chosen.target

    def _run_concurrent(self, behavior: CompositeBehavior, env: Env) -> Iterator:
        kernel = self._kernel
        waited: List[Process] = []
        for child in behavior.subs:
            process = kernel.spawn(child.name, self._run_behavior(child, env))
            if not child.daemon:
                waited.append(process)
        if waited:
            yield Join(waited)

    # -- statements -----------------------------------------------------------------

    def _exec_body(self, stmts: Body, behavior: str, env: Env) -> Iterator:
        for stmt in stmts:
            yield from self._exec_stmt(stmt, behavior, env)

    def _charge(self, stmt: Stmt, behavior: str) -> Iterator:
        cost = 0.0
        if self.cost_fn is not None:
            cost = self.cost_fn(behavior, stmt)
        if self.probe is not None:
            self.probe.on_statement(behavior, stmt, cost)
        if cost > 0:
            yield WaitDelay(cost)

    def _exec_stmt(self, stmt: Stmt, behavior: str, env: Env) -> Iterator:
        self._current_behavior = behavior
        yield from self._charge(stmt, behavior)

        if isinstance(stmt, Assign):
            self._do_assign(stmt.target, evaluate(stmt.value, env), behavior, env)
        elif isinstance(stmt, SignalAssign):
            self._do_signal_assign(stmt.target, evaluate(stmt.value, env), env)
        elif isinstance(stmt, If):
            if truthy(evaluate(stmt.cond, env)):
                yield from self._exec_body(stmt.then_body, behavior, env)
            else:
                for cond, arm in stmt.elifs:
                    if truthy(evaluate(cond, env)):
                        yield from self._exec_body(arm, behavior, env)
                        return
                yield from self._exec_body(stmt.else_body, behavior, env)
        elif isinstance(stmt, While):
            while truthy(evaluate(stmt.cond, env)):
                yield from self._exec_body(stmt.loop_body, behavior, env)
        elif isinstance(stmt, For):
            start = evaluate(stmt.start, env)
            stop = evaluate(stmt.stop, env)
            loop_frame = Frame(f"{behavior}.{stmt.variable}")
            loop_frame.declare_raw(stmt.variable, start)
            loop_env = env.child(loop_frame)
            for value in range(start, stop + 1):
                loop_frame.declare_raw(stmt.variable, value)
                yield from self._exec_body(stmt.loop_body, behavior, loop_env)
        elif isinstance(stmt, Wait):
            yield self._make_wait(stmt, env)
        elif isinstance(stmt, CallStmt):
            yield from self._exec_call(stmt, behavior, env)
        elif isinstance(stmt, Null):
            pass
        else:
            raise SimulationError(f"unknown statement {stmt!r}")

    def _do_assign(self, target: Expr, value, behavior: str, env: Env) -> None:
        if isinstance(target, VarRef):
            env.write(target.name, value)
            self._observe_write(target.name, env)
        elif isinstance(target, Index) and isinstance(target.base, VarRef):
            index = evaluate(target.index_expr, env)
            env.write_array_element(target.base.name, index, value)
            self._observe_write(target.base.name, env)
        else:
            raise SimulationError(f"invalid assignment target {target}")

    def _do_signal_assign(self, target: Expr, value, env: Env) -> None:
        if not isinstance(target, VarRef):
            raise SimulationError(
                f"signal assignment target must be a signal name, got {target}"
            )
        dtype = self._signal_types.get(target.name)
        env.write_signal(target.name, value, dtype)

    def _observe_write(self, name: str, env: Env) -> None:
        if name in self._output_names:
            self._trace_step += 1
            self._trace.append(
                TraceEvent(self._trace_step, name, env.peek(name))
            )

    def _make_wait(self, stmt: Wait, env: Env):
        kernel = self._kernel
        if stmt.delay is not None:
            return WaitDelay(stmt.delay * self.time_unit)
        if stmt.until is not None:
            cond = stmt.until
            sensitivity = {
                name for name in free_variables(cond) if env.is_signal(name)
            }
            return WaitCondition(
                lambda: truthy(evaluate(cond, env)),
                sensitivity,
                label=f"until {cond}",
            )
        # wait on s1, s2: edge-sensitive — wake on any change
        snapshot = {name: kernel.read_signal(name) for name in stmt.on}
        return WaitCondition(
            lambda: any(
                kernel.read_signal(name) != old for name, old in snapshot.items()
            ),
            set(stmt.on),
            label="on " + ", ".join(stmt.on),
        )

    # -- subprogram calls ----------------------------------------------------------------

    def _exec_call(self, stmt: CallStmt, behavior: str, env: Env) -> Iterator:
        callee = self.spec.subprograms.get(stmt.callee)
        if callee is None:
            raise SimulationError(f"call to unknown subprogram {stmt.callee!r}")
        if len(stmt.args) != callee.arity:
            raise SimulationError(
                f"{stmt.callee!r} expects {callee.arity} args, got {len(stmt.args)}"
            )
        frame = Frame(f"call:{callee.name}")
        # copy-in
        for param, arg in zip(callee.params, stmt.args):
            if param.direction is Direction.OUT:
                frame.slots[param.name] = [param.dtype, param.dtype.default_value()]
            else:
                value = evaluate(arg, env)
                frame.slots[param.name] = [param.dtype, param.dtype.coerce(value)]
        for decl in callee.decls:
            if decl.kind is StorageClass.SIGNAL:
                raise SimulationError(
                    f"subprogram {callee.name!r} declares a signal; unsupported"
                )
            frame.declare(decl)
        # subprogram bodies see globals + their own frame, not the caller's
        # locals (mirrors the validator's scope rule)
        global_frame = self._frames[""]
        call_env = Env(
            self._kernel,
            (frame, global_frame),
            on_read=env.on_read,
            on_write=env.on_write,
        )
        yield from self._exec_body(callee.stmt_body, behavior, call_env)
        # copy-out
        for param, arg in zip(callee.params, stmt.args):
            if param.direction in (Direction.OUT, Direction.INOUT):
                self._do_assign(arg, frame.read(param.name), behavior, env)
