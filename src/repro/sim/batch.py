"""Batched multi-lane simulation: many stimulus vectors, one compiled spec.

The exec engine (PR 5) and the serve daemon (PR 6) schedule thousands
of (design, model, seed) cells, but each cell still pays the full
per-run cost: refine, compile every statement into closures, then
advance one stimulus vector at a time.  For a sweep grid the first two
costs are identical across every seed of a (design, model, protocol)
family — only the stimulus differs.  This module amortises them:

* **shared compilation** — one :class:`repro.sim.interpreter.Simulator`
  owns the expression/statement closure caches; every lane executes
  the same compiled closures (compiled once per cell-family, not once
  per seed);
* **structure-of-arrays lane state** — each lane is one slot in the
  batch's lane table: its own :class:`repro.sim.kernel.Kernel` (signal
  store, event/delta queues, sensitivity index), frames, and output
  trace, advanced in lockstep quanta by one driver loop;
* **per-lane early exit** — a lane that goes quiescent, trips a
  :class:`~repro.sim.kernel.KernelLimits` budget, or crashes retires
  immediately; the remaining lanes keep the batch busy;
* **wake probes** — the dominant scheduler cost of the single-lane
  kernel is re-evaluating wait predicates of wake candidates.  The
  compiler attaches :attr:`~repro.sim.kernel.WaitCondition.probe`
  descriptors to conditions whose shape it can prove (``until sig =
  K``, ``until sig``, edge waits); the batched loop checks those by
  direct signal-store lookup — no closure call, no ``Env`` walk.

Determinism and parity
----------------------

Lanes never share mutable state: each lane's kernel, frames and trace
are private, and the shared simulator's per-run attributes are swapped
to the active lane before it advances (compiled closures resolve
``self``'s run state at call time, which makes the swap sufficient).
Consequently every lane's outputs, output trace, VCD change stream,
metrics counters and error messages are **bit-identical** to a
single-lane :meth:`Simulator.run` of the same stimulus — regardless of
lane count, lane order or quantum size.  The parity suite
(``tests/test_sim_batch.py``, ``tests/test_batch_parity.py``) and the
benchmark gate (``benchmarks/bench_kernel_batch.py``) enforce this.

The batched fast loop does not maintain the single-lane kernel's
diagnostic ring buffer (one tuple append per scheduler event).  Error
parity is preserved by *deterministic replay*: a lane that fails with
a deterministic error (``SimulationError``, ``max_steps``,
``max_delta``, deadlock) is re-run once through the single-lane path,
which reproduces the identical exception — message, structured fields
and ring trace included.  Only ``wall_clock`` breaches (inherently
nondeterministic) are reported from the batch loop directly.

When batching is bypassed
-------------------------

Fault injection is per-run machinery and is not supported here — the
robustness campaign keeps the single-lane path.  Profiling probes
(:class:`~repro.sim.interpreter.Probe`) disable wake probes (their
read callbacks must observe every predicate evaluation) but batching
still works.  ``compile_cache=False`` runs the batch over the
reference tree walker — slow, but the parity suite uses it to check
the batched scheduler against the semantic oracle.
"""

from __future__ import annotations

import time as _time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    DeadlockError,
    ReproError,
    SimulationError,
    SimulationLimitExceeded,
)
from repro.obs.trace import NULL_TRACER
from repro.sim.interpreter import Probe, SimulationResult, Simulator
from repro.sim.kernel import (
    Kernel,
    KernelLimits,
    WaitCondition,
    _wait_seq_of,
)
from repro.sim.metrics import SimMetrics
from repro.spec.specification import Specification
from repro.spec.stmt import Stmt

__all__ = [
    "DEFAULT_QUANTUM",
    "BatchMetrics",
    "LaneOutcome",
    "BatchResult",
    "BatchSimulator",
]

#: Scheduler events one lane may consume before the driver rotates to
#: the next lane.  Large enough to amortise the context swap, small
#: enough that a storming lane cannot starve the batch.
DEFAULT_QUANTUM = 512

#: Effectively-unbounded budget used when only one lane remains live
#: (rotating a singleton buys nothing).
_UNBOUNDED = 1 << 62


class BatchMetrics:
    """Lane-aware accounting for one batched run.

    ``totals`` aggregates the per-lane :class:`SimMetrics` (attached
    only when the caller asked for metrics); the lane counters below
    are always maintained:

    ================= ==================================================
    counter            meaning
    ================= ==================================================
    lanes              stimulus vectors submitted
    lanes_completed    lanes that reached quiescence
    lanes_faulted      lanes retired by an error
    lanes_replayed     faulted lanes re-run single-lane for error parity
    lane_switches      driver visits (context swaps onto a lane)
    ================= ==================================================
    """

    __slots__ = (
        "lanes",
        "lanes_completed",
        "lanes_faulted",
        "lanes_replayed",
        "lane_switches",
        "totals",
    )

    FIELDS: Tuple[Tuple[str, str], ...] = (
        ("lanes", "lanes"),
        ("lanes_completed", "lanes completed"),
        ("lanes_faulted", "lanes faulted"),
        ("lanes_replayed", "lanes replayed"),
        ("lane_switches", "lane switches"),
    )

    def __init__(self):
        self.lanes = 0
        self.lanes_completed = 0
        self.lanes_faulted = 0
        self.lanes_replayed = 0
        self.lane_switches = 0
        #: aggregate of every lane's :class:`SimMetrics` (zeroed bag
        #: when lanes ran without metrics)
        self.totals = SimMetrics()

    def merge_lane(self, metrics: Optional[SimMetrics]) -> None:
        """Fold one retired lane's counter bag into ``totals``."""
        if metrics is None:
            return
        totals = self.totals
        for name, _ in SimMetrics.FIELDS:
            if name == "max_delta_streak":
                totals.note_streak(metrics.max_delta_streak)
            else:
                setattr(totals, name, getattr(totals, name) + getattr(metrics, name))

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            name: getattr(self, name) for name, _ in self.FIELDS
        }
        out["totals"] = self.totals.as_dict()
        return out

    def publish(self, registry, **labels) -> None:
        """Bridge lane counters (``repro_batch_<name>_total``) and the
        aggregated kernel ``totals`` (via
        :meth:`repro.sim.metrics.SimMetrics.publish`) into a telemetry
        registry.  No-op on a disabled registry."""
        names = tuple(sorted(labels))
        values = tuple(str(labels[name]) for name in names)
        for name, label in self.FIELDS:
            registry.counter(
                f"repro_batch_{name}_total",
                f"Batched simulation counter: {label}.",
                names,
            ).labels(*values).inc(getattr(self, name))
        self.totals.publish(registry, **labels)

    def describe(self) -> str:
        width = max(len(label) for _, label in self.FIELDS)
        return "\n".join(
            f"{label:<{width}}  {getattr(self, name)}"
            for name, label in self.FIELDS
        )


class LaneOutcome:
    """What one lane produced: a result or a structured error.

    Exactly one of ``result`` / ``error`` is set.  ``error_text``
    renders the error the way the fuzz oracles compare error outcomes
    (``"TypeName: message"``); ``replayed`` records whether the error
    came from the deterministic single-lane replay (exact parity) or
    straight from the batch loop (``wall_clock`` only).
    """

    __slots__ = ("lane", "inputs", "result", "error", "replayed", "metrics")

    def __init__(
        self,
        lane: int,
        inputs: Dict[str, object],
        result: Optional[SimulationResult] = None,
        error: Optional[BaseException] = None,
        replayed: bool = False,
        metrics: Optional[SimMetrics] = None,
    ):
        self.lane = lane
        self.inputs = inputs
        self.result = result
        self.error = error
        self.replayed = replayed
        self.metrics = metrics

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def error_text(self) -> Optional[str]:
        if self.error is None:
            return None
        return f"{type(self.error).__name__}: {self.error}"

    def __repr__(self) -> str:
        state = "ok" if self.ok else self.error_text
        return f"<LaneOutcome lane={self.lane} {state}>"


class BatchResult:
    """Outcome of one batched run: one :class:`LaneOutcome` per
    stimulus vector, in submission order, plus the batch's
    :class:`BatchMetrics`."""

    def __init__(
        self,
        spec: Specification,
        lanes: Tuple[LaneOutcome, ...],
        metrics: BatchMetrics,
    ):
        self.spec = spec
        self.lanes = lanes
        self.metrics = metrics

    def __len__(self) -> int:
        return len(self.lanes)

    def __iter__(self):
        return iter(self.lanes)

    def __getitem__(self, index: int) -> LaneOutcome:
        return self.lanes[index]

    def results(self) -> List[Optional[SimulationResult]]:
        """Per-lane :class:`SimulationResult` (``None`` for faulted
        lanes), in submission order."""
        return [lane.result for lane in self.lanes]

    def raise_first_error(self) -> None:
        """Re-raise the first faulted lane's error, if any."""
        for lane in self.lanes:
            if lane.error is not None:
                raise lane.error


class _Lane:
    """Driver-internal per-lane state (one SoA slot)."""

    __slots__ = (
        "index",
        "inputs",
        "kernel",
        "root",
        "frames",
        "trace",
        "trace_step",
        "signal_types",
        "current_behavior",
        "status",
        "error",
        "replayed",
        "metrics",
        "strobes",
        "wall_started",
    )

    def __init__(self, index: int, inputs: Dict[str, object], kernel: Kernel):
        self.index = index
        self.inputs = inputs
        self.kernel = kernel
        self.root = None
        self.frames: Dict[str, object] = {}
        self.trace: List = []
        self.trace_step = 0
        self.signal_types: Dict[str, object] = {}
        self.current_behavior = ""
        self.status = "active"  # active | done | fault
        self.error: Optional[BaseException] = None
        self.replayed = False
        self.metrics: Optional[SimMetrics] = None
        self.strobes = ()
        self.wall_started = 0.0


class BatchSimulator:
    """Advances many stimulus vectors of one specification in lockstep.

    Parameters mirror :class:`~repro.sim.interpreter.Simulator` (minus
    fault injection, which batching does not support): ``cost_fn`` and
    ``probe`` instrument every lane, ``time_unit`` scales ``wait for``
    delays, ``compile_cache=False`` selects the reference tree walker
    for every lane.  One instance may run many batches; compiled
    closures persist across them (that is the point).
    """

    #: kernel-variant tag reported by results produced here
    variant = "batched"

    def __init__(
        self,
        spec: Specification,
        cost_fn: Optional[Callable[[str, Stmt], float]] = None,
        probe: Optional[Probe] = None,
        time_unit: Optional[float] = None,
        compile_cache: bool = True,
    ):
        kwargs = {} if time_unit is None else {"time_unit": time_unit}
        self._sim = Simulator(
            spec,
            cost_fn=cost_fn,
            probe=probe,
            compile_cache=compile_cache,
            **kwargs,
        )
        self.spec = spec
        #: wake probes require pure predicates; a profiling probe's
        #: read callbacks must observe every predicate evaluation
        self._use_probes = probe is None

    # -- public API ---------------------------------------------------------

    def run_batch(
        self,
        stimuli: Sequence[Optional[Dict[str, object]]],
        max_steps: Optional[int] = None,
        limits: Optional[KernelLimits] = None,
        require_completion: bool = False,
        collect_metrics: bool = False,
        metrics: Optional[BatchMetrics] = None,
        observers: Optional[Sequence] = None,
        tracer=NULL_TRACER,
        quantum: int = DEFAULT_QUANTUM,
        registry=None,
    ) -> BatchResult:
        """Run every stimulus vector to quiescence, sharing compilation.

        ``stimuli`` is one inputs dict (or ``None``) per lane; lane
        *i*'s outcome lands at index *i* of the returned
        :class:`BatchResult`.  ``limits``/``max_steps`` bound each lane
        individually exactly as in :meth:`Simulator.run`, except
        ``wall_clock`` which budgets the whole batch.  With
        ``require_completion=True`` a quiescent lane whose root never
        finished gets a structured :class:`DeadlockError` (other lanes
        are unaffected — per-lane early exit).

        ``collect_metrics`` (or passing a :class:`BatchMetrics` as
        ``metrics``) attaches a private :class:`SimMetrics` to every
        lane — counter-for-counter identical to a single-lane run —
        and aggregates them; ``observers`` is an optional per-lane
        sequence of signal-change observers (e.g.
        :class:`repro.obs.vcd.VCDWriter`, one per lane); ``tracer``
        receives one completed span per retired lane plus one for the
        batch; ``quantum`` is the lockstep rotation budget in scheduler
        events; ``registry`` (a
        :class:`repro.obs.metrics.MetricsRegistry`, optional) receives
        the finished batch's lane and kernel totals via
        :meth:`BatchMetrics.publish`.
        """
        if metrics is None:
            metrics = BatchMetrics()
            want_sim_metrics = collect_metrics
        else:
            want_sim_metrics = True
        if limits is None:
            limits = KernelLimits()
        if max_steps is not None:
            limits = KernelLimits(
                max_steps=max_steps,
                max_delta=limits.max_delta,
                wall_clock=limits.wall_clock,
            )
        if observers is not None and len(observers) != len(stimuli):
            raise ValueError(
                f"observers ({len(observers)}) must match "
                f"stimuli ({len(stimuli)})"
            )
        if quantum < 1:
            raise ValueError(f"quantum must be >= 1, got {quantum}")

        batch_started = _time.perf_counter()
        sim = self._sim
        metrics.lanes += len(stimuli)

        # -- lane setup: one kernel + frames per lane, through the
        #    exact single-lane setup path (shared compile caches warm
        #    up as the first lane executes)
        lanes: List[_Lane] = []
        for index, stimulus in enumerate(stimuli):
            inputs = dict(stimulus or {})
            lane_metrics = SimMetrics() if want_sim_metrics else None
            observer = observers[index] if observers is not None else None
            kernel = Kernel(metrics=lane_metrics, observer=observer)
            lane = _Lane(index, inputs, kernel)
            lane.metrics = lane_metrics
            if lane_metrics is not None:
                lane.wall_started = _time.perf_counter()
            try:
                lane.root = sim._begin_run(kernel, inputs)
            except ReproError as exc:
                # setup errors come from the shared single-lane code
                # path, so they are exact already — no replay needed
                lane.status = "fault"
                lane.error = exc
                lane.replayed = True
            else:
                lane.frames = sim._frames
                lane.trace = sim._trace
                lane.trace_step = sim._trace_step
                lane.signal_types = sim._signal_types
                lane.current_behavior = sim._current_behavior
                if lane_metrics is not None:
                    lane.strobes = {
                        name
                        for name in kernel._signals
                        if lane_metrics.is_bus_strobe(name)
                    }
            if lane_metrics is not None:
                lane_metrics.wall_seconds += (
                    _time.perf_counter() - lane.wall_started
                )
            lanes.append(lane)

        # -- lockstep driver: round-robin over live lanes, one quantum
        #    per visit; a lone survivor gets an unbounded budget
        wall_clock = limits.wall_clock
        wall_started = _time.monotonic() if wall_clock is not None else 0.0
        active = deque(lane for lane in lanes if lane.status == "active")
        while active:
            lane = active.popleft()
            budget = quantum if active else _UNBOUNDED
            metrics.lane_switches += 1
            self._switch_to(lane)
            if lane.metrics is not None:
                lane.wall_started = _time.perf_counter()
            try:
                still_active = self._advance(
                    lane, budget, limits, wall_clock, wall_started
                )
            except ReproError as exc:
                lane.status = "fault"
                lane.error = exc
            else:
                if still_active:
                    active.append(lane)
                else:
                    lane.status = "done"
            lane.trace_step = sim._trace_step
            lane.current_behavior = sim._current_behavior
            if lane.metrics is not None:
                lane.metrics.wall_seconds += (
                    _time.perf_counter() - lane.wall_started
                )
            if lane.status != "active":
                if lane.metrics is not None:
                    lane.metrics.note_streak(lane.kernel._delta_streak)
                tracer.record_span(
                    f"lane{lane.index}",
                    _time.perf_counter() - batch_started
                    if lane.metrics is None
                    else lane.metrics.wall_seconds,
                    category="batch",
                    lane=lane.index,
                    status=lane.status,
                )

        # -- retirement: build results, detect deadlocks, replay
        #    deterministic faults for byte-exact error parity
        outcomes: List[LaneOutcome] = []
        for lane in lanes:
            if lane.status == "done":
                completed = lane.root.finished
                if require_completion and not completed:
                    lane.status = "fault"
                    lane.error = DeadlockError(required=(lane.root.name,))
                else:
                    metrics.lanes_completed += 1
                    metrics.merge_lane(lane.metrics)
                    outcomes.append(
                        LaneOutcome(
                            lane.index,
                            lane.inputs,
                            result=SimulationResult(
                                self.spec,
                                lane.kernel,
                                lane.frames,
                                lane.trace,
                                completed,
                            ),
                            metrics=lane.metrics,
                        )
                    )
                    continue
            # faulted lane
            metrics.lanes_faulted += 1
            error = lane.error
            deterministic = not (
                isinstance(error, SimulationLimitExceeded)
                and error.limit == "wall_clock"
            )
            if deterministic and not lane.replayed:
                replayed = self._replay(lane, limits, require_completion)
                if replayed is not None:
                    error = replayed
                    lane.replayed = True
                    metrics.lanes_replayed += 1
            metrics.merge_lane(lane.metrics)
            outcomes.append(
                LaneOutcome(
                    lane.index,
                    lane.inputs,
                    error=error,
                    replayed=lane.replayed,
                    metrics=lane.metrics,
                )
            )

        tracer.record_span(
            "batch",
            _time.perf_counter() - batch_started,
            category="batch",
            lanes=len(lanes),
            faulted=metrics.lanes_faulted,
        )
        if registry is not None:
            metrics.publish(registry)
        return BatchResult(self.spec, tuple(outcomes), metrics)

    # -- context swap -------------------------------------------------------

    def _switch_to(self, lane: _Lane) -> None:
        """Point the shared simulator's per-run state at ``lane``.

        Compiled closures resolve ``self._kernel`` / ``self._frames``
        / ``self._trace`` at call time, so swapping these attributes
        is all the isolation a lane needs.
        """
        sim = self._sim
        sim._kernel = lane.kernel
        sim._frames = lane.frames
        sim._trace = lane.trace
        sim._trace_step = lane.trace_step
        sim._signal_types = lane.signal_types
        sim._current_behavior = lane.current_behavior

    # -- error replay -------------------------------------------------------

    def _replay(
        self,
        lane: _Lane,
        limits: KernelLimits,
        require_completion: bool,
    ) -> Optional[BaseException]:
        """Re-run a faulted lane through the single-lane path.

        Lanes are deterministic, so the replay reproduces the same
        failure with the single-lane kernel's full diagnostics (ring
        trace, blocked-process report).  ``wall_clock`` is stripped:
        the replayed error must be the deterministic one, not a timing
        accident.  Returns the replayed exception, or ``None`` if the
        replay unexpectedly succeeded (the batch-loop error stands).
        """
        replay_limits = KernelLimits(
            max_steps=limits.max_steps,
            max_delta=limits.max_delta,
            wall_clock=None,
        )
        try:
            self._sim.run(
                inputs=dict(lane.inputs),
                limits=replay_limits,
                require_completion=require_completion,
            )
        except ReproError as exc:
            return exc
        return None

    # -- the batched scheduler loop -----------------------------------------

    def _advance(
        self,
        lane: _Lane,
        budget: int,
        limits: KernelLimits,
        wall_clock: Optional[float],
        wall_started: float,
    ) -> bool:
        """Advance one lane by up to ``budget`` scheduler events.

        Mirrors :meth:`Kernel._run_loop` exactly — activation order,
        level-sensitive suspension, delta-cycle application, candidate
        wake order, limit checks — minus the diagnostic ring buffer
        and with probe-accelerated predicate checks.  Returns ``True``
        while the lane still has work, ``False`` at quiescence.
        """
        kernel = lane.kernel
        max_steps = limits.max_steps
        max_delta = limits.max_delta
        metrics = kernel.metrics
        observer = kernel.observer
        use_probes = self._use_probes
        monotonic = _time.monotonic
        ready = kernel._ready
        pending = kernel._pending
        signals = kernel._signals
        sensitivity = kernel._sensitivity
        cond_waiters = kernel._cond_waiters
        suspend = kernel._suspend
        notify_joiners = kernel._notify_joiners
        seq = kernel._seq
        steps = kernel.steps
        delta_streak = kernel._delta_streak
        strobes = lane.strobes
        m_activations = 0
        m_delta_cycles = 0
        m_signal_updates = 0
        m_signal_changes = 0
        m_wakeups = 0
        m_bus = 0
        try:
            while True:
                while ready:
                    if budget <= 0:
                        return True
                    budget -= 1
                    process = ready.pop()
                    if process.finished:
                        continue  # killed while queued as ready
                    steps += 1
                    if max_steps is not None and steps > max_steps:
                        raise SimulationLimitExceeded(
                            f"simulation exceeded max_steps={max_steps} "
                            f"at t={kernel.now}",
                            limit="max_steps",
                        )
                    if (
                        wall_clock is not None
                        and steps % 1024 == 0
                        and monotonic() - wall_started > wall_clock
                    ):
                        raise SimulationLimitExceeded(
                            f"batch exceeded wall_clock={wall_clock}s "
                            f"in lane {lane.index} after {steps} steps "
                            f"at t={kernel.now}",
                            limit="wall_clock",
                        )
                    m_activations += 1
                    try:
                        request = process._step()
                    except StopIteration:
                        process.finished = True
                        notify_joiners(process)
                        continue
                    except ReproError:
                        raise
                    except Exception as exc:  # surface interpreter bugs
                        process.failed = exc
                        raise SimulationError(
                            f"process {process.name!r} failed "
                            f"at t={kernel.now}: {exc}"
                        ) from exc
                    if type(request) is WaitCondition:
                        # level-sensitive: continue if already true.
                        # Probe shapes resolve against the signal store
                        # directly; anything else falls back to the
                        # predicate closure (identical semantics).
                        probe = request.probe if use_probes else None
                        if probe is None:
                            satisfied = request.predicate()
                        else:
                            tag = probe[0]
                            if tag == "eq":
                                satisfied = signals[probe[1]] == probe[2]
                            elif tag == "edge":
                                # snapshot taken this activation; no
                                # delta ran since, so nothing changed
                                satisfied = False
                            else:  # truthy
                                value = signals[probe[1]]
                                satisfied = (
                                    value != 0
                                    if type(value) is int
                                    or type(value) is bool
                                    else request.predicate()
                                )
                        if satisfied:
                            ready.append(process)
                            continue
                        process._waiting_on = request
                        process._wait_seq = next(seq)
                        cond_waiters[process] = request
                        buckets = request._index_sets
                        if (
                            buckets is None
                            or request._index_kernel is not kernel
                        ):
                            resolved = []
                            for name in request.sensitivity:
                                waiters = sensitivity.get(name)
                                if waiters is None:
                                    waiters = sensitivity[name] = set()
                                resolved.append(waiters)
                            buckets = request._index_sets = tuple(resolved)
                            request._index_kernel = kernel
                        for waiters in buckets:
                            waiters.add(process)
                    else:
                        suspend(process, request)

                if budget <= 0:
                    return True

                # -- delta cycle: apply pending updates; re-check only
                # the waiters of signals that changed value, in
                # suspension order (matches Kernel._run_loop)
                changed = None
                candidates = ()
                if pending:
                    m_signal_updates += len(pending)
                    if len(pending) == 1:
                        name, value = pending.popitem()
                        if signals[name] != value:
                            signals[name] = value
                            changed = (name,)
                            candidates = sensitivity.get(name, ())
                    else:
                        changed_set = set()
                        for name, value in pending.items():
                            if signals[name] != value:
                                signals[name] = value
                                changed_set.add(name)
                        pending.clear()
                        if changed_set:
                            changed = changed_set
                            candidate_set = set()
                            for name in changed_set:
                                waiters = sensitivity.get(name)
                                if waiters:
                                    candidate_set.update(waiters)
                            candidates = candidate_set
                if changed is not None:
                    budget -= 1
                    if observer is not None:
                        for name in changed:
                            observer.on_change(kernel.now, name, signals[name])
                    if not candidates:
                        woken = ()
                    elif len(candidates) == 1:
                        # ordering is moot for a single waiter
                        (process,) = candidates
                        condition = cond_waiters[process]
                        probe = condition.probe if use_probes else None
                        if probe is None:
                            wake = condition.predicate()
                        else:
                            tag = probe[0]
                            if tag == "eq":
                                wake = signals[probe[1]] == probe[2]
                            elif tag == "edge":
                                # a watched signal just changed, so the
                                # snapshot comparison is true
                                wake = True
                            else:  # truthy
                                value = signals[probe[1]]
                                wake = (
                                    value != 0
                                    if type(value) is int
                                    or type(value) is bool
                                    else condition.predicate()
                                )
                        woken = (process,) if wake else ()
                    else:
                        woken = []
                        for process in sorted(candidates, key=_wait_seq_of):
                            condition = cond_waiters[process]
                            probe = condition.probe if use_probes else None
                            if probe is None:
                                wake = condition.predicate()
                            else:
                                tag = probe[0]
                                if tag == "eq":
                                    wake = signals[probe[1]] == probe[2]
                                elif tag == "edge":
                                    wake = True
                                else:  # truthy
                                    value = signals[probe[1]]
                                    wake = (
                                        value != 0
                                        if type(value) is int
                                        or type(value) is bool
                                        else condition.predicate()
                                    )
                            if wake:
                                woken.append(process)
                    for process in woken:
                        condition = cond_waiters.pop(process)
                        kernel._unindex(process, condition)
                        process._waiting_on = None
                        ready.append(process)
                    if metrics is not None:
                        m_delta_cycles += 1
                        m_signal_changes += len(changed)
                        m_wakeups += len(woken)
                        for name in changed:
                            if name in strobes and signals[name]:
                                m_bus += 1
                    delta_streak += 1
                    if max_delta is not None and delta_streak > max_delta:
                        raise SimulationLimitExceeded(
                            f"delta-cycle storm: more than "
                            f"max_delta={max_delta} delta cycles without "
                            f"time advancing at t={kernel.now}",
                            limit="max_delta",
                        )
                    continue
                if kernel._advance_time():
                    if metrics is not None:
                        metrics.note_streak(delta_streak)
                    delta_streak = 0
                    continue
                return False  # quiescent
        finally:
            kernel.steps = steps
            kernel._delta_streak = delta_streak
            if metrics is not None:
                metrics.activations += m_activations
                metrics.delta_cycles += m_delta_cycles
                metrics.signal_updates += m_signal_updates
                metrics.signal_changes += m_signal_changes
                metrics.wakeups += m_wakeups
                metrics.bus_transactions += m_bus
