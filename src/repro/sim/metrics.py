"""Simulation metrics and tracing — the observability layer.

Runtime-validation work (Jain & Manolios's refinement-based framework,
Kolano's real-time verification) treats an instrumented simulator as a
*measurement instrument*: the counts of process activations, delta
cycles and bus transactions are themselves evidence about a refined
design, not just progress indicators.  This module supplies that
instrumentation for the delta-cycle kernel:

* :class:`SimMetrics` — a bag of plain integer counters the kernel
  increments inline (process activations, delta cycles, timesteps,
  signal writes/updates/changes, wakeups, bus transactions, injected
  faults).  Attaching one costs a single ``is not None`` check per
  scheduler event; a kernel without metrics pays nothing.
* :class:`Tracer` — a structured event recorder fed from the kernel's
  existing event stream (``run``/``delta``/``advance``/``fault``/
  ``kill``), optionally bounded and kind-filtered, exportable as JSON.
* :class:`PhaseTimer` — wall-clock accounting for the
  refine → simulate → verify pipeline phases, used by ``repro profile``.

Attach via ``Kernel(metrics=..., tracer=...)`` or
``Simulator.run(metrics=..., tracer=...)``.  One :class:`SimMetrics`
may be shared across several runs — counters accumulate — or reset
between runs with :meth:`SimMetrics.reset`.
"""

from __future__ import annotations

from contextlib import contextmanager
from fnmatch import fnmatchcase
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from repro.obs.trace import SpanTracer

__all__ = [
    "DEFAULT_BUS_SIGNAL_PATTERNS",
    "ExecMetrics",
    "SimMetrics",
    "TraceRecord",
    "Tracer",
    "PhaseTimer",
]

#: Glob patterns identifying bus transfer strobes.  Refinement names
#: buses ``b1``, ``b2``, ... and each bus's strobe ``<bus>_start``
#: (see :func:`repro.arch.protocols.bus_signal_names`); a transaction
#: is counted whenever such a strobe *changes to* a truthy value.
DEFAULT_BUS_SIGNAL_PATTERNS: Tuple[str, ...] = ("b*_start",)


class SimMetrics:
    """Counters the kernel maintains while it schedules.

    All counters are plain ``int`` attributes (``wall_seconds`` is a
    float) incremented inline by :class:`repro.sim.kernel.Kernel`; read
    them directly, or use :meth:`as_dict` / :meth:`describe`.

    ================== =================================================
    counter             meaning
    ================== =================================================
    activations         process activations (generator resumes)
    delta_cycles        delta cycles that applied at least one change
    timesteps           times simulated time advanced
    max_delta_streak    most delta cycles between two time advances
    signal_writes       ``write_signal`` calls that scheduled an update
    signal_updates      pending updates applied (incl. unchanged values)
    signal_changes      applied updates that changed the signal's value
    wakeups             processes woken from condition waits
    bus_transactions    strobe signals (``bus_patterns``) going truthy
    faults              fault-injector interventions (all kinds)
    processes_spawned   processes created
    processes_killed    processes terminated by :meth:`Kernel.kill`
    wall_seconds        real time spent inside :meth:`Kernel.run`
    ================== =================================================
    """

    __slots__ = (
        "activations",
        "delta_cycles",
        "timesteps",
        "max_delta_streak",
        "signal_writes",
        "signal_updates",
        "signal_changes",
        "wakeups",
        "bus_transactions",
        "faults",
        "processes_spawned",
        "processes_killed",
        "wall_seconds",
        "bus_patterns",
        "_strobe_cache",
    )

    def __init__(
        self, bus_patterns: Sequence[str] = DEFAULT_BUS_SIGNAL_PATTERNS
    ):
        self.bus_patterns = tuple(bus_patterns)
        #: signal name -> bool, memoised glob matches (hot path)
        self._strobe_cache: Dict[str, bool] = {}
        self.reset()

    def reset(self) -> None:
        """Zero every counter (pattern match cache survives)."""
        self.activations = 0
        self.delta_cycles = 0
        self.timesteps = 0
        self.max_delta_streak = 0
        self.signal_writes = 0
        self.signal_updates = 0
        self.signal_changes = 0
        self.wakeups = 0
        self.bus_transactions = 0
        self.faults = 0
        self.processes_spawned = 0
        self.processes_killed = 0
        self.wall_seconds = 0.0

    # -- kernel-facing helpers ------------------------------------------------

    def is_bus_strobe(self, name: str) -> bool:
        """Whether ``name`` is a bus transfer strobe (memoised)."""
        cached = self._strobe_cache.get(name)
        if cached is None:
            cached = any(
                fnmatchcase(name, pattern) for pattern in self.bus_patterns
            )
            self._strobe_cache[name] = cached
        return cached

    def note_streak(self, streak: int) -> None:
        """Record a completed delta-cycle streak (kernel internal)."""
        if streak > self.max_delta_streak:
            self.max_delta_streak = streak

    # -- reporting ------------------------------------------------------------

    #: (attribute, human label) in display order.
    FIELDS: Tuple[Tuple[str, str], ...] = (
        ("activations", "process activations"),
        ("delta_cycles", "delta cycles"),
        ("timesteps", "timesteps"),
        ("max_delta_streak", "max delta cycles/timestep"),
        ("signal_writes", "signal writes scheduled"),
        ("signal_updates", "signal updates applied"),
        ("signal_changes", "signal value changes"),
        ("wakeups", "condition wakeups"),
        ("bus_transactions", "bus transactions"),
        ("faults", "faults injected"),
        ("processes_spawned", "processes spawned"),
        ("processes_killed", "processes killed"),
    )

    def as_dict(self) -> Dict[str, object]:
        """All counters as a JSON-serialisable mapping."""
        out: Dict[str, object] = {name: getattr(self, name) for name, _ in self.FIELDS}
        out["wall_seconds"] = self.wall_seconds
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimMetrics":
        """Rebuild a counter bag from :meth:`as_dict` output.

        The execution engine ships kernel counters between processes
        (and through the on-disk result cache) as plain mappings;
        unknown keys are ignored so old cache entries stay loadable.
        """
        metrics = cls()
        for name, _ in cls.FIELDS:
            if name in data:
                setattr(metrics, name, data[name])
        if "wall_seconds" in data:
            metrics.wall_seconds = float(data["wall_seconds"])
        return metrics

    def describe(self) -> str:
        """Counters as aligned ``label: value`` lines."""
        width = max(len(label) for _, label in self.FIELDS)
        lines = [
            f"{label:<{width}}  {getattr(self, name)}"
            for name, label in self.FIELDS
        ]
        lines.append(f"{'wall seconds':<{width}}  {self.wall_seconds:.6f}")
        return "\n".join(lines)

    def publish(self, registry, **labels) -> None:
        """Bridge the counters into a telemetry registry.

        Each counter becomes ``repro_sim_<name>_total`` (incremented
        by the current value — publish once per run, not per poll);
        ``labels`` distinguishes runs sharing a registry, e.g.
        ``run="refined"``.  A disabled registry makes this a no-op.
        """
        names = tuple(sorted(labels))
        values = tuple(str(labels[name]) for name in names)
        for name, label in self.FIELDS:
            registry.counter(
                f"repro_sim_{name}_total", f"Kernel counter: {label}.", names
            ).labels(*values).inc(getattr(self, name))

    def __repr__(self) -> str:
        return (
            f"<SimMetrics activations={self.activations} "
            f"delta_cycles={self.delta_cycles} "
            f"bus_transactions={self.bus_transactions}>"
        )


class ExecMetrics:
    """Counters of the campaign execution engine (:mod:`repro.exec`).

    Mirrors the :class:`SimMetrics` pattern one layer up: where
    :class:`SimMetrics` counts scheduler events inside one simulation,
    an :class:`ExecMetrics` counts *jobs* across a campaign grid — how
    many were served from the content-addressed result cache, how many
    were executed (and where), and how the executor degraded under
    faults.  Attach one via ``ExecutionEngine(metrics=...)``; counters
    accumulate across ``run()`` calls until :meth:`reset`.

    ================== =================================================
    counter             meaning
    ================== =================================================
    jobs                jobs submitted to the engine
    cache_hits          jobs served from the result cache
    cache_misses        cache lookups that found nothing usable
    cache_errors        corrupt/unreadable cache entries discarded
    cache_evictions     entries evicted to honour the cache capacity
    executed            jobs actually computed (serial or worker)
    failed              jobs that ended with a structured error
    timeouts            jobs abandoned after exceeding their timeout
    cancelled           jobs skipped because a cancel event was set
    retries             jobs re-run after a worker crash
    degraded            times an executor fell back to serial
    wall_seconds        real time spent inside ``ExecutionEngine.run``
    ================== =================================================
    """

    __slots__ = (
        "jobs",
        "cache_hits",
        "cache_misses",
        "cache_errors",
        "cache_evictions",
        "executed",
        "failed",
        "timeouts",
        "cancelled",
        "retries",
        "degraded",
        "wall_seconds",
    )

    #: (attribute, human label) in display order.
    FIELDS: Tuple[Tuple[str, str], ...] = (
        ("jobs", "jobs submitted"),
        ("cache_hits", "cache hits"),
        ("cache_misses", "cache misses"),
        ("cache_errors", "cache entries discarded"),
        ("cache_evictions", "cache evictions"),
        ("executed", "jobs executed"),
        ("failed", "jobs failed"),
        ("timeouts", "job timeouts"),
        ("cancelled", "jobs cancelled"),
        ("retries", "jobs retried"),
        ("degraded", "serial fallbacks"),
    )

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        """Zero every counter."""
        for name, _ in self.FIELDS:
            setattr(self, name, 0)
        self.wall_seconds = 0.0

    def as_dict(self) -> Dict[str, object]:
        """All counters as a JSON-serialisable mapping."""
        out: Dict[str, object] = {
            name: getattr(self, name) for name, _ in self.FIELDS
        }
        out["wall_seconds"] = self.wall_seconds
        return out

    def describe(self) -> str:
        """Counters as aligned ``label: value`` lines."""
        width = max(len(label) for _, label in self.FIELDS)
        lines = [
            f"{label:<{width}}  {getattr(self, name)}"
            for name, label in self.FIELDS
        ]
        lines.append(f"{'wall seconds':<{width}}  {self.wall_seconds:.6f}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<ExecMetrics jobs={self.jobs} hits={self.cache_hits} "
            f"executed={self.executed} failed={self.failed}>"
        )


class TraceRecord(NamedTuple):
    """One structured scheduler event."""

    time: float
    kind: str
    detail: str

    def __str__(self) -> str:
        return f"t={self.time:g} {self.kind}: {self.detail}"


class Tracer:
    """Records the kernel's event stream as structured records.

    The kernel already keeps a short diagnostic ring buffer for error
    reports; a :class:`Tracer` is the long-form counterpart for
    analysis: every ``run`` / ``delta`` / ``advance`` / ``fault`` /
    ``kill`` event (optionally filtered by ``kinds``) is appended as a
    :class:`TraceRecord`, up to ``limit`` records (``None`` keeps
    everything).  Zero-cost when not attached.
    """

    __slots__ = ("events", "limit", "kinds", "dropped")

    def __init__(
        self,
        limit: Optional[int] = None,
        kinds: Optional[Iterable[str]] = None,
    ):
        self.events: List[TraceRecord] = []
        self.limit = limit
        self.kinds = frozenset(kinds) if kinds is not None else None
        #: events suppressed after ``limit`` filled up
        self.dropped = 0

    def record(self, kind: str, detail, time: float) -> None:
        """Append one event (called by the kernel)."""
        if self.kinds is not None and kind not in self.kinds:
            return
        if self.limit is not None and len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(TraceRecord(time, kind, str(detail)))

    def __len__(self) -> int:
        return len(self.events)

    def as_dicts(self) -> List[Dict[str, object]]:
        """Events as JSON-serialisable mappings."""
        return [
            {"time": e.time, "kind": e.kind, "detail": e.detail}
            for e in self.events
        ]

    def describe(self, last: Optional[int] = None) -> str:
        """The (optionally last ``last``) events, one per line."""
        events = self.events if last is None else self.events[-last:]
        return "\n".join(str(e) for e in events)


class PhaseTimer:
    """Wall-clock accounting for named pipeline phases.

    Used by ``repro profile`` to time the refine → simulate → verify
    flow::

        timer = PhaseTimer()
        with timer.phase("refine"):
            design = Refiner(...).run()

    Re-entering a phase name accumulates into the same bucket; phase
    order of first entry is preserved.

    A PhaseTimer is an adapter over :class:`repro.obs.trace.SpanTracer`
    — each phase is a span of category ``"phase"``, so anything traced
    *inside* a phase (e.g. the Refiner's per-procedure spans when it is
    handed the same ``tracer``) nests under it and the whole run can be
    exported as Chrome trace-event JSON.  The phase accounting itself
    only aggregates root phase spans, keeping the historical contract.
    """

    __slots__ = ("tracer",)

    def __init__(self, tracer: Optional[SpanTracer] = None):
        self.tracer = tracer if tracer is not None else SpanTracer()

    @contextmanager
    def phase(self, name: str):
        with self.tracer.span(name, category="phase"):
            yield self

    def seconds(self, name: str) -> float:
        return self.as_dict().get(name, 0.0)

    @property
    def total(self) -> float:
        return sum(self.as_dict().values())

    def as_dict(self) -> Dict[str, float]:
        """Phase -> seconds, in first-entry order."""
        return self.tracer.aggregate(category="phase")

    def describe(self) -> str:
        phases = self.as_dict()
        if not phases:
            return "no phases recorded"
        width = max(len(name) for name in phases)
        lines = [
            f"{name:<{width}}  {seconds * 1e3:10.3f} ms"
            for name, seconds in phases.items()
        ]
        lines.append(f"{'total':<{width}}  {self.total * 1e3:10.3f} ms")
        return "\n".join(lines)
