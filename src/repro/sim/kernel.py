"""Discrete-event simulation kernel with VHDL-style delta cycles.

The kernel knows nothing about the IR; it schedules *processes*
(Python generators) that yield :class:`WaitCondition`,
:class:`WaitDelay` or :class:`Join` requests, and it owns the *signal*
store: signal assignments are deferred and take effect between process
activations (a delta cycle), so concurrently executing behaviors see a
consistent snapshot — the property the refined handshake protocols rely
on.

Scheduling loop:

1. run every ready process until it suspends or finishes;
2. apply pending signal updates; signals that changed wake processes
   whose sensitivity lists them (a *delta cycle* — time does not
   advance);
3. when no delta activity remains, advance time to the earliest timed
   wait;
4. when neither delta nor timed work remains, the simulation is
   *quiescent* and :meth:`Kernel.run` returns.  Refined designs contain
   endless server behaviors (memories, arbiters, bus interfaces), so
   quiescence with the application processes finished is the normal
   termination; the caller decides which processes were required to
   finish.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import SimulationError, SimulationLimitExceeded

__all__ = [
    "WaitCondition",
    "WaitDelay",
    "Join",
    "Process",
    "Kernel",
]


class WaitCondition:
    """Suspend until ``predicate()`` is true; re-evaluated whenever one
    of the named signals changes.  The predicate is checked immediately
    on suspension (level-sensitive), so a condition that already holds
    does not deadlock the process."""

    __slots__ = ("predicate", "sensitivity")

    def __init__(self, predicate: Callable[[], bool], sensitivity: Iterable[str]):
        self.predicate = predicate
        self.sensitivity = frozenset(sensitivity)


class WaitDelay:
    """Suspend for ``delay`` time units (>= 0; zero yields one delta)."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.delay = delay


class Join:
    """Suspend until every process in ``processes`` has finished."""

    __slots__ = ("processes",)

    def __init__(self, processes: Iterable["Process"]):
        self.processes = tuple(processes)


class Process:
    """One schedulable coroutine."""

    __slots__ = ("name", "generator", "finished", "failed", "_waiting_on")

    def __init__(self, name: str, generator: Iterator):
        self.name = name
        self.generator = generator
        self.finished = False
        self.failed: Optional[BaseException] = None
        self._waiting_on: Optional[object] = None

    def __repr__(self) -> str:
        state = "finished" if self.finished else (
            "blocked" if self._waiting_on is not None else "ready"
        )
        return f"<Process {self.name} {state}>"


class Kernel:
    """The event-driven scheduler and signal store."""

    def __init__(self):
        self.now: float = 0.0
        self._signals: Dict[str, object] = {}
        self._pending: Dict[str, object] = {}
        self._processes: List[Process] = []
        self._ready: List[Process] = []
        #: processes blocked on a WaitCondition, by process
        self._cond_waiters: Dict[Process, WaitCondition] = {}
        #: processes blocked on a Join
        self._join_waiters: Dict[Process, Join] = {}
        #: timed queue of (wake_time, seq, process)
        self._timed: List[Tuple[float, int, Process]] = []
        self._seq = itertools.count()
        self.steps: int = 0

    # -- signals ------------------------------------------------------------

    def register_signal(self, name: str, initial) -> None:
        """Declare a signal; duplicate names are an error (refinement
        generates globally unique signal names)."""
        if name in self._signals:
            raise SimulationError(f"signal {name!r} registered twice")
        self._signals[name] = initial

    def has_signal(self, name: str) -> bool:
        return name in self._signals

    def read_signal(self, name: str):
        try:
            return self._signals[name]
        except KeyError:
            raise SimulationError(f"unknown signal {name!r}") from None

    def write_signal(self, name: str, value) -> None:
        """Schedule a signal update for the next delta cycle."""
        if name not in self._signals:
            raise SimulationError(f"unknown signal {name!r}")
        self._pending[name] = value

    def signal_names(self) -> Set[str]:
        return set(self._signals)

    # -- processes -------------------------------------------------------------

    def spawn(self, name: str, generator: Iterator) -> Process:
        """Create a process and mark it ready."""
        process = Process(name, generator)
        self._processes.append(process)
        self._ready.append(process)
        return process

    @property
    def processes(self) -> List[Process]:
        return list(self._processes)

    def blocked_processes(self) -> List[Process]:
        """Processes still suspended when the simulation went quiescent."""
        return [
            p
            for p in self._processes
            if not p.finished and p.failed is None
        ]

    # -- the event loop -----------------------------------------------------------

    def run(self, max_steps: int = 2_000_000) -> None:
        """Run to quiescence.

        ``max_steps`` bounds the total number of process activations;
        exceeding it raises :class:`SimulationLimitExceeded` (a livelock
        in a refined protocol, e.g. a master with no matching slave).
        """
        while True:
            while self._ready:
                process = self._ready.pop()
                self.steps += 1
                if self.steps > max_steps:
                    raise SimulationLimitExceeded(
                        f"simulation exceeded {max_steps} steps at t={self.now}"
                    )
                self._activate(process)
            if self._apply_delta():
                continue
            if self._advance_time():
                continue
            return  # quiescent

    def _activate(self, process: Process) -> None:
        try:
            request = next(process.generator)
        except StopIteration:
            process.finished = True
            self._notify_joiners(process)
            return
        except SimulationError:
            raise
        except Exception as exc:  # surface interpreter bugs with context
            process.failed = exc
            raise SimulationError(
                f"process {process.name!r} failed at t={self.now}: {exc}"
            ) from exc
        self._suspend(process, request)

    def _suspend(self, process: Process, request) -> None:
        if isinstance(request, WaitCondition):
            # level-sensitive: continue immediately if already true
            if request.predicate():
                self._ready.append(process)
                return
            process._waiting_on = request
            self._cond_waiters[process] = request
        elif isinstance(request, WaitDelay):
            process._waiting_on = request
            heapq.heappush(
                self._timed, (self.now + request.delay, next(self._seq), process)
            )
        elif isinstance(request, Join):
            if all(p.finished for p in request.processes):
                self._ready.append(process)
                return
            process._waiting_on = request
            self._join_waiters[process] = request
        else:
            raise SimulationError(
                f"process {process.name!r} yielded unknown request {request!r}"
            )

    def _notify_joiners(self, finished: Process) -> None:
        woken = [
            waiter
            for waiter, join in self._join_waiters.items()
            if finished in join.processes
            and all(p.finished for p in join.processes)
        ]
        for waiter in woken:
            del self._join_waiters[waiter]
            waiter._waiting_on = None
            self._ready.append(waiter)

    def _apply_delta(self) -> bool:
        """Apply pending signal updates; wake sensitive waiters.
        Returns True when anything happened."""
        if not self._pending:
            return False
        changed: Set[str] = set()
        for name, value in self._pending.items():
            if self._signals[name] != value:
                self._signals[name] = value
                changed.add(name)
        self._pending.clear()
        if not changed:
            return False
        woken = [
            process
            for process, cond in self._cond_waiters.items()
            if cond.sensitivity & changed and cond.predicate()
        ]
        for process in woken:
            del self._cond_waiters[process]
            process._waiting_on = None
            self._ready.append(process)
        return True

    def _advance_time(self) -> bool:
        """Jump to the earliest timed wake-up.  Returns True when a
        process was woken."""
        if not self._timed:
            return False
        wake_time, _, process = heapq.heappop(self._timed)
        self.now = max(self.now, wake_time)
        process._waiting_on = None
        self._ready.append(process)
        # release everything scheduled for the same instant
        while self._timed and self._timed[0][0] <= self.now:
            _, _, other = heapq.heappop(self._timed)
            other._waiting_on = None
            self._ready.append(other)
        return True
